# Convenience targets for the reproduction workflow.

PYTHON ?= python
SCALE ?= quick

.PHONY: install test lint bench bench-smoke report examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-fast:
	REPRO_HYPOTHESIS_PROFILE=dev $(PYTHON) -m pytest tests/ -x -q

lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src

bench:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_SCALE=smoke $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli report

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
