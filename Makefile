# Convenience targets for the reproduction workflow.

PYTHON ?= python
SCALE ?= quick

.PHONY: install test lint tsan bench bench-smoke report examples clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

test-fast:
	REPRO_HYPOTHESIS_PROFILE=dev $(PYTHON) -m pytest tests/ -x -q

lint:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint src

# Tier-1 suite under the runtime lock-order sanitizer (docs/lint.md):
# an inversion or join-under-lock raises instead of deadlocking.
tsan:
	REPRO_TSAN=1 PYTHONPATH=src $(PYTHON) -m pytest tests/ -x -q

bench:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	REPRO_SCALE=smoke $(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli report

examples:
	for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f || exit 1; done

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
