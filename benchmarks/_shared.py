"""Shared, memoized experiment runners for the benchmark suite.

Several benches view the same underlying study (a table and its bar-chart
figure, the speedup tables and the runtime-curve figures), so each study is
computed once per pytest session and re-rendered by every bench that needs
it.  Reports are accumulated here and flushed both to ``results/*.txt`` and
to the pytest terminal summary (see ``conftest.py``).

The modeled device of the timing benches comes from the profile registry:
``pytest benchmarks/ --device-profile ampere`` (or the
``REPRO_DEVICE_PROFILE`` environment variable) sweeps the whole timing
suite to another GPU generation; quality benches are unaffected.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.bestknown.store import BestKnownStore
from repro.experiments.ablation import (
    BlockSizeAblation,
    CoolingAblation,
    SyncAsyncAblation,
    run_blocksize_ablation,
    run_cooling_ablation,
    run_sync_vs_async,
)
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.deviation import DeviationStudy, run_deviation_study
from repro.experiments.runtime import RuntimeSurface, run_runtime_surface
from repro.experiments.speedup import SpeedupStudy, run_speedup_study
from repro.gpusim.profiles import DEFAULT_PROFILE, get_profile

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_REPORTS: dict[str, str] = {}

_DEVICE_PROFILE = os.environ.get("REPRO_DEVICE_PROFILE", DEFAULT_PROFILE)


def set_device_profile(name: str) -> None:
    """Select the registry profile the timing benches model (validated)."""
    global _DEVICE_PROFILE
    get_profile(name)
    _DEVICE_PROFILE = name


def device_profile() -> str:
    """The active device-profile key (flag > env > registry default)."""
    return _DEVICE_PROFILE


def scale() -> ExperimentScale:
    """The active experiment scale (``REPRO_SCALE``, default quick)."""
    return get_scale()


@lru_cache(maxsize=None)
def deviation_study(problem: str) -> DeviationStudy:
    """Memoized deviation study (Tables II/IV, Figures 12/15)."""
    return run_deviation_study(problem, scale(), BestKnownStore())


@lru_cache(maxsize=None)
def speedup_study(problem: str) -> SpeedupStudy:
    """Memoized speedup study (Tables III/V, Figures 13/14/16/17)."""
    return run_speedup_study(problem, scale(),
                             device_profile=device_profile())


@lru_cache(maxsize=None)
def runtime_surface() -> RuntimeSurface:
    """Memoized Figure 11 surface."""
    return run_runtime_surface(scale())


@lru_cache(maxsize=None)
def blocksize_ablation() -> BlockSizeAblation:
    """Memoized block-size ablation."""
    return run_blocksize_ablation(scale(), device_profile=device_profile())


@lru_cache(maxsize=None)
def sync_ablation() -> SyncAsyncAblation:
    """Memoized async-vs-sync ablation."""
    return run_sync_vs_async(scale())


@lru_cache(maxsize=None)
def cooling_ablation() -> CoolingAblation:
    """Memoized cooling-rate ablation."""
    return run_cooling_ablation(scale())


def publish(name: str, report: str) -> None:
    """Record a rendered report: save to results/ and queue for the summary."""
    _REPORTS[name] = report
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(report + "\n")


def collected_reports() -> dict[str, str]:
    """All reports published so far this session."""
    return dict(_REPORTS)


@lru_cache(maxsize=None)
def texture_ablation():
    """Memoized texture-memory ablation (paper future work)."""
    from repro.experiments.ablation import run_texture_ablation

    return run_texture_ablation(scale(), device_profile=device_profile())


@lru_cache(maxsize=None)
def coupling_ablation():
    """Memoized DPSO-coupling ablation."""
    from repro.experiments.ablation import run_coupling_ablation

    return run_coupling_ablation(scale())


@lru_cache(maxsize=None)
def refresh_ablation():
    """Memoized perturbation-refresh ablation."""
    from repro.experiments.ablation import run_refresh_ablation

    return run_refresh_ablation(scale())


@lru_cache(maxsize=None)
def strategy_ablation():
    """Memoized parallelization-strategy ablation (Section V)."""
    from repro.experiments.ablation import run_strategy_ablation

    return run_strategy_ablation(scale())
