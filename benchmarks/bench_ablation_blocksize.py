"""Ablation: block size at a fixed total thread count (Section VIII prose).

The paper fixes 768 threads and reports 192 threads/block as the sweet spot
on the GT 560M.  The bench sweeps the block size, reporting the modeled
fitness-kernel time and occupancy.
"""

import numpy as np

import _shared


def test_blocksize_ablation(benchmark):
    res = benchmark.pedantic(
        _shared.blocksize_ablation, rounds=1, iterations=1
    )
    _shared.publish("ablation_blocksize", res.render())

    assert 192 in res.block_sizes
    if _shared.device_profile() == "gt560m":
        # The 192-thread sweet spot is a GT 560M observation (4 SMs); on
        # generations with many more SMs smaller blocks can win, so the
        # closeness bound is pinned to the paper's device.
        i192 = res.block_sizes.index(192)
        assert res.kernel_time_s[i192] <= res.kernel_time_s.min() * 1.25
    # Occupancy is reported for every candidate.
    assert np.all(res.occupancy_pct > 0)
