"""Ablation: exponential cooling rate (Section VI prose).

The paper adopts mu = 0.88 "inferred from our experiments over a range of
cooling rates"; the bench sweeps the range and reports the mean objective
per rate.
"""

import _shared


def test_cooling_ablation(benchmark):
    res = benchmark.pedantic(_shared.cooling_ablation, rounds=1, iterations=1)
    _shared.publish("ablation_cooling", res.render())

    assert 0.88 in res.rates
    # 0.88 must be competitive: within 10% of the best swept rate.
    i = res.rates.index(0.88)
    assert res.objective[i] <= res.objective.min() * 1.10
