"""Ablation: asynchronous (paper) vs coupled-swarm parallel DPSO.

The paper parallelizes DPSO "in the asynchronous manner, as explained for
the SA" -- isolating every particle -- and observes DPSO collapsing at
large n (Table II: 32% deviation at n=1000).  This bench quantifies how
much of that collapse is the isolation: the coupled-swarm extension shares
the reduced swarm best every generation.
"""

import _shared


def test_coupling_ablation(benchmark):
    res = benchmark.pedantic(_shared.coupling_ablation, rounds=1, iterations=1)
    _shared.publish("ablation_dpso_coupling", res.render())

    # At the largest size swept, information flow pays: the isolated
    # (paper) variant trails the ring and full couplings.
    assert res.async_objective[-1] >= res.coupled_objective[-1]
    assert res.async_objective[-1] >= res.ring_objective[-1] * 0.98
