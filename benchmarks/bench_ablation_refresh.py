"""Ablation: perturbation-position refresh cadence (Section VI ambiguity).

Section VI says positions are re-selected "after every 10 SA iterations";
Section VI-B describes a freshly selected sub-sequence per neighbor.  The
bench sweeps the cadence: infrequent refreshes confine each 10-iteration
window to the 4! arrangements of fixed positions and should hurt quality.
"""

import _shared


def test_refresh_ablation(benchmark):
    res = benchmark.pedantic(_shared.refresh_ablation, rounds=1, iterations=1)
    _shared.publish("ablation_position_refresh", res.render())

    # Per-iteration refresh (interval 1) beats the slowest cadence swept.
    assert res.objective[0] <= res.objective[-1] * 1.02
