"""Ablation: the three SA parallelization strategies of Section V.

Ferreiro et al. offer (i) application-dependent decomposition (inapplicable
here: the objective's operands are sequential), (ii) domain decomposition,
and (iii) multiple Markov chains (async/sync).  The paper dismisses domain
decomposition as "ineffective for a job size of 50 or more" -- pinning the
first position leaves a (n-1)! subdomain per processor.  The bench runs all
three implementable strategies at equal budgets.
"""

import _shared


def test_strategy_ablation(benchmark):
    res = benchmark.pedantic(_shared.strategy_ablation, rounds=1, iterations=1)
    _shared.publish("ablation_strategy", res.render())

    # "Ineffective" means the decomposition buys nothing: at every size the
    # domain variant is statistically indistinguishable from plain async
    # chains (pinning one of n positions is a near-no-op constraint) -- it
    # never provides the material improvement that would justify the
    # strategy.
    import numpy as np

    rel = np.abs(
        res.domain_objective - res.async_objective
    ) / res.async_objective
    assert np.all(rel < 0.10)
