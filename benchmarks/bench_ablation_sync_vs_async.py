"""Ablation: asynchronous vs synchronous parallel SA (Section VI prose).

The paper selects the asynchronous variant "due to the premature
convergence" of the synchronous one.  The bench runs both at equal budgets
and reports the quality gap per size.
"""

import _shared


def test_sync_vs_async_ablation(benchmark):
    res = benchmark.pedantic(_shared.sync_ablation, rounds=1, iterations=1)
    _shared.publish("ablation_sync_vs_async", res.render())

    # Both variants produce finite positive objectives at every size; the
    # rendered report records which one wins where (scale-dependent).
    assert (res.async_objective > 0).all()
    assert (res.sync_objective > 0).all()
    assert res.sync_premature_pct.shape == res.async_objective.shape
