"""Ablation: texture-memory gathers (the paper's future-work item).

"Future works in this area should also examine the utilization of the
texture memory of the GPU to make use of its spatial cache."  The bench
compares the modeled fitness-kernel time with the read-only gathers routed
through the texture cache.
"""

import _shared


def test_texture_ablation(benchmark):
    res = benchmark.pedantic(_shared.texture_ablation, rounds=1, iterations=1)
    _shared.publish("ablation_texture", res.render())

    # The texture path must help, but not implausibly much.
    assert 0.0 < res.saving_pct < 40.0
    assert res.texture_s < res.plain_s
