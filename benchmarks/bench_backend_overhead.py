"""Backend overhead: vectorized host execution vs the modeled device.

The gpusim backend pays for its cycle model on every launch (occupancy,
roofline, stream and profiler bookkeeping) and for transfer charging on
every copy; the vectorized backend runs the identical kernel bodies on host
arrays with none of that.  This bench measures the real wall-time speedup
of ``backend="vectorized"`` over ``backend="gpusim"`` for the parallel SA
across job counts -- the cost of modeled timings when an experiment does
not need them.  Identical trajectories are asserted, not assumed.
"""

import time

import numpy as np

import _shared
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.instances.biskup import biskup_instance

SIZES = (10, 100, 1000)
ITERATIONS = 60
REPEATS = 3


def _best_wall(inst, config, backend):
    best = np.inf
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = parallel_sa(inst, config, backend=backend)
        best = min(best, time.perf_counter() - start)
    return best, result


def _run_overhead_study():
    rows = []
    for n in SIZES:
        inst = biskup_instance(n, 0.4, 1)
        # t0 is pinned: the 5000-sample estimate costs the same on both
        # backends and would dilute the per-launch overhead being measured.
        config = ParallelSAConfig(
            iterations=ITERATIONS, grid_size=2, block_size=64, seed=11,
            t0=150.0,
        )
        t_gpusim, r_gpusim = _best_wall(inst, config, "gpusim")
        t_vec, r_vec = _best_wall(inst, config, "vectorized")
        assert r_vec.objective == r_gpusim.objective
        assert np.array_equal(r_vec.best_sequence, r_gpusim.best_sequence)
        rows.append((n, t_gpusim, t_vec, t_gpusim / t_vec))
    return rows


def _render(rows) -> str:
    lines = [
        "Backend overhead -- parallel SA wall time, gpusim vs vectorized",
        f"(iterations={ITERATIONS}, 128 chains, best of {REPEATS} runs; "
        "identical best sequence/objective asserted per size)",
        "",
        f"{'n':>6} {'gpusim [s]':>12} {'vectorized [s]':>15} {'speedup':>9}",
    ]
    for n, t_gpusim, t_vec, speedup in rows:
        lines.append(
            f"{n:>6} {t_gpusim:>12.4f} {t_vec:>15.4f} {speedup:>8.2f}x"
        )
    lines.append("")
    lines.append(
        "The vectorized backend skips the per-launch cost model (occupancy,"
    )
    lines.append(
        "roofline, stream/profiler bookkeeping) and transfer charging; the"
    )
    lines.append(
        "ensemble math itself is identical, so the advantage is largest at"
    )
    lines.append(
        "small n where modeling overhead dominates the batched evaluation."
    )
    return "\n".join(lines)


def test_backend_overhead(benchmark):
    rows = benchmark.pedantic(_run_overhead_study, rounds=1, iterations=1)
    _shared.publish("backend_overhead", _render(rows))

    # At small n the simulated device's per-launch overhead (occupancy,
    # roofline, stream, profiler) is a measurable fraction of the loop;
    # at large n the shared batched math dominates and the gap closes, so
    # only the small-n speedup is asserted (the rest is reported).
    assert rows[0][3] > 1.05
