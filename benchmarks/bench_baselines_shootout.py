"""Equal-budget shootout: parallel ensemble vs the sequential baselines.

Not a table in the paper, but the comparison underlying its deviation
columns: the sequential references ([7]/[18]-style SA/TA/ES) versus the
parallel ensemble at the same number of sequence evaluations.  The report
quantifies the reproduction finding discussed in EXPERIMENTS.md -- with the
paper's Fisher-Yates neighborhood, chain length beats chain count at equal
work, which is why the reference strength calibration matters.
"""

import zlib

import _shared
from repro.core.evolution import EvolutionStrategyConfig, evolution_strategy
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.core.sa import SerialSAConfig, sa_serial
from repro.core.threshold import ThresholdAcceptingConfig, threshold_accepting
from repro.experiments.tables import render_table
from repro.instances.biskup import biskup_instance


def test_baselines_shootout(benchmark):
    scale = _shared.scale()
    pop = scale.population
    budget = pop * scale.iterations_low

    def run():
        rows = []
        for n in scale.sizes[: min(4, len(scale.sizes))]:
            inst = biskup_instance(n, 0.4, 1)
            seed = zlib.crc32(f"shootout:{n}".encode()) & 0x7FFFFFFF
            par = parallel_sa(
                inst,
                ParallelSAConfig(iterations=scale.iterations_low,
                                 grid_size=scale.grid_size,
                                 block_size=scale.block_size, seed=seed),
            )
            ser = sa_serial(
                inst, SerialSAConfig(iterations=budget, seed=seed)
            )
            ta = threshold_accepting(
                inst, ThresholdAcceptingConfig(iterations=budget, seed=seed)
            )
            es = evolution_strategy(
                inst,
                EvolutionStrategyConfig(generations=budget // 40, mu=10,
                                        lam=40, seed=seed),
            )
            rows.append([n, par.objective, ser.objective, ta.objective,
                         es.objective])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report = render_table(
        ["Jobs", f"parallel SA ({pop}x{scale.iterations_low})",
         "serial SA", "serial TA", "serial ES"],
        rows,
        title=(
            f"Equal-budget shootout (~{budget} evaluations each, "
            f"scale={scale.name})"
        ),
    )
    _shared.publish("baselines_shootout", report)

    # All methods produce valid positive objectives; the sequential SA and
    # TA (same neighborhood, same budget, one long chain) land close to
    # each other.
    for row in rows:
        assert all(v > 0 for v in row[1:])
        sa_v, ta_v = row[2], row[3]
        assert abs(sa_v - ta_v) / sa_v < 0.35
