"""Figure 11: fitness-evaluation runtime vs threads x generations (UCDDCP).

Expected shape (paper): runtime grows linearly in the generation count and
stepwise in the thread count -- once the launched blocks exceed what the
SMs co-execute, additional block waves serialize ("loading several threads
within a block results in serial processing of the blocks through the SM").
"""

import numpy as np

import _shared


def test_fig11_runtime_surface(benchmark):
    surf = benchmark.pedantic(
        _shared.runtime_surface, rounds=1, iterations=1
    )
    _shared.publish("fig11_runtime_surface", surf.render())

    # Linear in generations.
    gens = np.asarray(surf.generations, dtype=float)
    np.testing.assert_allclose(
        surf.seconds / surf.per_launch_s[:, None],
        np.broadcast_to(gens, surf.seconds.shape),
    )
    # Monotone non-decreasing in thread count, with a genuine increase from
    # the smallest to the largest configuration.
    assert np.all(np.diff(surf.per_launch_s) >= -1e-15)
    assert surf.per_launch_s[-1] > surf.per_launch_s[0]
