"""Figure 12: bar chart of the CDD percentage deviations (Table II data).

Shares the memoized Table II study; this bench renders and checks the
figure series.
"""

import _shared


def test_fig12_cdd_deviation_chart(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.deviation_study("cdd"), rounds=1, iterations=1
    )
    from repro.experiments.ascii_plot import grouped_bar_chart

    chart = grouped_bar_chart(
        [str(n) for n in study.sizes],
        {
            lab: study.mean_deviation[:, j].tolist()
            for j, lab in enumerate(study.labels)
        },
        title="Fig 12: CDD average %deviation per size and algorithm",
    )
    _shared.publish("fig12_cdd_deviation_chart", chart)
    # Every size group and every series appear in the figure.
    for n in study.sizes:
        assert f"{n}:" in chart
    for lab in study.labels:
        assert lab in chart
