"""Figure 13: bar chart of the CDD speedups (Table III data)."""

import _shared


def test_fig13_cdd_speedup_chart(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.speedup_study("cdd"), rounds=1, iterations=1
    )
    from repro.experiments.ascii_plot import grouped_bar_chart

    modeled = study.matrix("speedup_modeled")
    chart = grouped_bar_chart(
        [str(n) for n in study.sizes],
        {lab: modeled[:, j].tolist() for j, lab in enumerate(study.labels)},
        title="Fig 13: CDD speedups per size and algorithm (modeled device)",
    )
    _shared.publish("fig13_cdd_speedup_chart", chart)
    assert str(study.sizes[-1]) in chart
