"""Figure 14: runtime curves of the four parallel variants + CPU (CDD).

Expected shape (paper): the CPU curve dominates everything at larger sizes;
SA is faster than DPSO at equal generation counts; the 5000-generation
variants cost ~5x their 1000-generation counterparts.
"""

import numpy as np

import _shared


def test_fig14_cdd_runtimes(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.speedup_study("cdd"), rounds=1, iterations=1
    )
    _shared.publish("fig14_cdd_runtimes", study.render_runtime_curves())

    gpu = study.matrix("modeled_gpu_s")
    labels = study.labels
    # SA faster than DPSO per variant at the largest size.
    assert gpu[-1, 0] < gpu[-1, 2]
    assert gpu[-1, 1] < gpu[-1, 3]
    # 5x iterations => ~5x modeled runtime.
    ratio = gpu[:, 1] / gpu[:, 0]
    assert np.all(ratio > 3.0) and np.all(ratio < 7.0)
    # CPU reference slower than the parallel SA at the largest size.
    cpu_last = study.cells[(study.sizes[-1], labels[0])].serial_cpu_s
    assert cpu_last > gpu[-1, 0]
