"""Figure 15: bar chart of the UCDDCP percentage deviations (Table IV data).

Negative bars mean the parallel algorithm improved on the best known
sequential value, as in the paper's Figure 15.
"""

import _shared


def test_fig15_ucddcp_deviation_chart(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.deviation_study("ucddcp"), rounds=1, iterations=1
    )
    from repro.experiments.ascii_plot import grouped_bar_chart

    chart = grouped_bar_chart(
        [str(n) for n in study.sizes],
        {
            lab: study.mean_deviation[:, j].tolist()
            for j, lab in enumerate(study.labels)
        },
        title="Fig 15: UCDDCP average %deviation per size and algorithm",
    )
    _shared.publish("fig15_ucddcp_deviation_chart", chart)
    for lab in study.labels:
        assert lab in chart
