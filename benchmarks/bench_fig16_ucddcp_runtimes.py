"""Figure 16: runtime curves of the four parallel variants + CPU (UCDDCP)."""

import numpy as np

import _shared


def test_fig16_ucddcp_runtimes(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.speedup_study("ucddcp"), rounds=1, iterations=1
    )
    _shared.publish("fig16_ucddcp_runtimes", study.render_runtime_curves())

    gpu = study.matrix("modeled_gpu_s")
    # Runtime grows with the job size for every variant.
    assert np.all(gpu[-1] > gpu[0])
    # SA faster than DPSO at the largest size, per variant.
    assert gpu[-1, 0] < gpu[-1, 2]
    assert gpu[-1, 1] < gpu[-1, 3]
