"""Figure 17: bar chart of the UCDDCP speedups (Table V data)."""

import _shared


def test_fig17_ucddcp_speedup_chart(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.speedup_study("ucddcp"), rounds=1, iterations=1
    )
    from repro.experiments.ascii_plot import grouped_bar_chart

    modeled = study.matrix("speedup_modeled")
    chart = grouped_bar_chart(
        [str(n) for n in study.sizes],
        {lab: modeled[:, j].tolist() for j, lab in enumerate(study.labels)},
        title="Fig 17: UCDDCP speedups per size and algorithm (modeled device)",
    )
    _shared.publish("fig17_ucddcp_speedup_chart", chart)
    assert str(study.sizes[0]) in chart
