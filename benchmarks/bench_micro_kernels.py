"""Micro-benchmarks of the computational primitives (real wall time).

Unlike the table/figure benches (which time one full experiment pass),
these use pytest-benchmark conventionally: repeated rounds of the hot
primitives -- the batched O(n) evaluators that implement the fitness
kernel, the perturbation operator, and the scalar/pure-Python evaluators
that define the serial CPU baseline.  The modeled-launch bench runs on
the device selected by ``--device-profile`` (registry key; default the
paper's GT 560M).
"""

import numpy as np
import pytest

import _shared
from repro.gpusim.device import Device
from repro.gpusim.profiles import get_profile
from repro.gpusim.rng import DeviceRNG
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import make_cdd_fitness_kernel
from repro.permutation import (
    batched_partial_fisher_yates,
    batched_sample_distinct,
)
from repro.seqopt.batched import batched_cdd_objective, batched_ucddcp_objective
from repro.seqopt.cdd_linear import cdd_objective_for_sequence
from repro.seqopt.pure_python import cdd_objective_py

POP = 192


def _sequences(n, pop=POP, seed=0):
    rng = np.random.default_rng(seed)
    return np.argsort(rng.random((pop, n)), axis=1)


@pytest.mark.parametrize("n", [50, 200, 1000])
def test_batched_cdd_fitness(benchmark, n):
    inst = biskup_instance(n, 0.4, 1)
    seqs = _sequences(n)
    result = benchmark(batched_cdd_objective, inst, seqs)
    assert result.shape == (POP,)


@pytest.mark.parametrize("n", [50, 200, 1000])
def test_batched_ucddcp_fitness(benchmark, n):
    inst = ucddcp_instance(n, 1)
    seqs = _sequences(n)
    result = benchmark(batched_ucddcp_objective, inst, seqs)
    assert result.shape == (POP,)


@pytest.mark.parametrize("n", [50, 500])
def test_scalar_cdd_fitness(benchmark, n):
    inst = biskup_instance(n, 0.4, 1)
    seq = np.random.default_rng(0).permutation(n)
    benchmark(cdd_objective_for_sequence, inst, seq)


@pytest.mark.parametrize("n", [50, 500])
def test_pure_python_cdd_fitness(benchmark, n):
    inst = biskup_instance(n, 0.4, 1)
    seq = list(np.random.default_rng(0).permutation(n))
    p, a, b = (inst.processing.tolist(), inst.alpha.tolist(),
               inst.beta.tolist())
    benchmark(cdd_objective_py, p, a, b, inst.due_date, seq)


def test_perturbation_operator(benchmark):
    n = 200
    seqs = _sequences(n)
    rng = DeviceRNG(0)
    tids = np.arange(POP)

    def run():
        pos = batched_sample_distinct(rng, tids, n, 4)
        return batched_partial_fisher_yates(rng, tids, seqs, pos)

    out = benchmark(run)
    assert out.shape == seqs.shape


@pytest.mark.parametrize("n", [50, 500])
def test_modeled_fitness_launch(benchmark, n):
    """Simulator overhead of one cost-modeled launch on the active profile.

    Times the *simulation* (occupancy + roofline accounting + vectorized
    body), not the modeled duration itself; the assertion pins the modeled
    time to the profile's spec so a registry mix-up fails loudly.
    """
    profile = get_profile(_shared.device_profile())
    inst = biskup_instance(n, 0.4, 1)
    device = Device(spec=profile.spec, seed=0,
                    timing=profile.create_timing_model())
    data = DeviceProblemData(device, inst)
    total = 4 * POP
    seqs = device.malloc((total, n), np.int32, "sequences")
    out = device.malloc(total, np.float64, "fitness")
    device.memcpy_htod(seqs, _sequences(n, pop=total).astype(np.int32))
    kernel = make_cdd_fitness_kernel()
    from repro.gpusim.launch import linear_config

    cfg = linear_config(total, POP)

    def run():
        device.reset_clocks()
        device.launch(kernel, cfg, seqs, data.p, data.a, data.b, out)
        return device.synchronize()

    modeled = benchmark(run)
    assert modeled > profile.spec.kernel_launch_overhead_s
