"""Host-side pool throughput: batched ``solve_many`` vs the serial loop.

The pool exists to spread independent instance solves across CPU cores.
This bench measures the wall-clock effect directly: one benchmark-set
sweep (>= 10 instances) solved serially, then through
``solve_many(workers=4)``, with identical per-instance results asserted.
On a multi-core host the pool wins roughly linearly up to the core count;
on a single-core container the process overhead makes it a wash -- the
table reports ``os.cpu_count()`` so the number can be read in context.
"""

import os
import time
import warnings

import numpy as np

import _shared
from repro.core.solver import solve_many, solver_for
from repro.instances.biskup import biskup_instance

WORKERS = 4
SOLVE_KW = dict(
    backend="vectorized", iterations=120, grid_size=2, block_size=32, seed=13
)


def _instances():
    # 12 instances: 10..45 jobs across the restrictive h factors.
    return [
        biskup_instance(n, h, 1)
        for n in (10, 25, 45)
        for h in (0.2, 0.4, 0.6, 0.8)
    ]


def _run_pool_study():
    instances = _instances()

    start = time.perf_counter()
    serial = [
        solver_for(inst).solve("parallel_sa", **SOLVE_KW)
        for inst in instances
    ]
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # cpu oversubscribe
        items = solve_many(
            instances, "parallel_sa", workers=WORKERS, **SOLVE_KW
        )
    t_pool = time.perf_counter() - start

    assert all(item.ok for item in items)
    for ref, item in zip(serial, items):
        assert item.result.objective == ref.objective
        assert np.array_equal(item.result.best_sequence, ref.best_sequence)
    return len(instances), t_serial, t_pool


def _render(n_instances, t_serial, t_pool) -> str:
    ncpu = os.cpu_count() or 1
    speedup = t_serial / t_pool
    lines = [
        f"Pool throughput -- solve_many({WORKERS} workers) vs serial loop",
        f"({n_instances} CDD instances, parallel SA, "
        f"iterations={SOLVE_KW['iterations']}, 64 chains; identical "
        "per-instance results asserted)",
        "",
        f"{'mode':>22} {'wall [s]':>10}",
        f"{'serial loop':>22} {t_serial:>10.3f}",
        f"{f'solve_many x{WORKERS}':>22} {t_pool:>10.3f}",
        "",
        f"speedup {speedup:.2f}x on {ncpu} CPU core(s)",
        "",
        "Each instance solves in its own process with bounded in-flight",
        "work; the win tracks the host's core count (a single-core runner",
        "only measures the process/pickle overhead).",
    ]
    return "\n".join(lines)


def test_solve_many_throughput(benchmark):
    n_instances, t_serial, t_pool = benchmark.pedantic(
        _run_pool_study, rounds=1, iterations=1
    )
    _shared.publish("pool_throughput", _render(n_instances, t_serial, t_pool))

    # The result contract is asserted inside the study; the wall-clock win
    # is asserted only where it can exist (the CI benchmark job runs on
    # multi-core runners; single-core containers just publish the table).
    if (os.cpu_count() or 1) >= 4:
        assert t_pool < t_serial
