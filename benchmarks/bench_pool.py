"""Host-side pool throughput: batched ``solve_many`` vs the serial loop.

The pool exists to spread independent instance solves across CPU cores.
This bench measures the wall-clock effect directly: one benchmark-set
sweep (>= 10 instances) solved serially, then through
``solve_many(workers=4)``, with identical per-instance results asserted.
On a multi-core host the pool wins roughly linearly up to the core count;
on a single-core container the process overhead makes it a wash -- the
table reports ``os.cpu_count()`` so the number can be read in context.
"""

import os
import time
import warnings

import numpy as np

import _shared
from repro.core.solver import solve_many, solver_for
from repro.instances.biskup import biskup_instance

WORKERS = 4
SOLVE_KW = dict(
    backend="vectorized", iterations=120, grid_size=2, block_size=32, seed=13
)


def _instances():
    # 12 instances: 10..45 jobs across the restrictive h factors.
    return [
        biskup_instance(n, h, 1)
        for n in (10, 25, 45)
        for h in (0.2, 0.4, 0.6, 0.8)
    ]


def _run_pool_study():
    instances = _instances()

    start = time.perf_counter()
    serial = [
        solver_for(inst).solve("parallel_sa", **SOLVE_KW)
        for inst in instances
    ]
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # cpu oversubscribe
        items = solve_many(
            instances, "parallel_sa", workers=WORKERS, **SOLVE_KW
        )
    t_pool = time.perf_counter() - start

    assert all(item.ok for item in items)
    for ref, item in zip(serial, items):
        assert item.result.objective == ref.objective
        assert np.array_equal(item.result.best_sequence, ref.best_sequence)
    return len(instances), t_serial, t_pool


def _render(n_instances, t_serial, t_pool) -> str:
    ncpu = os.cpu_count() or 1
    speedup = t_serial / t_pool
    lines = [
        f"Pool throughput -- solve_many({WORKERS} workers) vs serial loop",
        f"({n_instances} CDD instances, parallel SA, "
        f"iterations={SOLVE_KW['iterations']}, 64 chains; identical "
        "per-instance results asserted)",
        "",
        f"{'mode':>22} {'wall [s]':>10}",
        f"{'serial loop':>22} {t_serial:>10.3f}",
        f"{f'solve_many x{WORKERS}':>22} {t_pool:>10.3f}",
        "",
        f"speedup {speedup:.2f}x on {ncpu} CPU core(s)",
        "",
        "Each instance solves in its own process with bounded in-flight",
        "work; the win tracks the host's core count (a single-core runner",
        "only measures the process/pickle overhead).",
    ]
    return "\n".join(lines)


def test_solve_many_throughput(benchmark):
    n_instances, t_serial, t_pool = benchmark.pedantic(
        _run_pool_study, rounds=1, iterations=1
    )
    _shared.publish("pool_throughput", _render(n_instances, t_serial, t_pool))

    # The result contract is asserted inside the study; the wall-clock win
    # is asserted only where it can exist (the CI benchmark job runs on
    # multi-core runners; single-core containers just publish the table).
    if (os.cpu_count() or 1) >= 4:
        assert t_pool < t_serial


# -- chunked dispatch on small instances -----------------------------------

CHUNK_SOLVE_KW = dict(
    backend="vectorized", iterations=60, grid_size=2, block_size=32, seed=13
)


def _small_instances():
    # 24 small instances (n <= 20): the regime where fork/pickle overhead
    # rivals the solve itself and chunk_size="auto" pays off.
    return [
        biskup_instance(n, h, k)
        for n in (10, 20)
        for h in (0.2, 0.4, 0.6, 0.8)
        for k in (1, 2, 3)
    ]


def _run_chunk_study():
    instances = _small_instances()
    timings = {}
    reference = None
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)  # cpu oversubscribe
        for mode, chunk_size in (
            ("per-instance", None), ("chunk auto", "auto")
        ):
            start = time.perf_counter()
            items = solve_many(
                instances, "parallel_sa", workers=WORKERS,
                chunk_size=chunk_size, **CHUNK_SOLVE_KW,
            )
            timings[mode] = time.perf_counter() - start
            assert all(item.ok for item in items)
            outcome = [
                (item.result.objective, tuple(item.result.best_sequence))
                for item in items
            ]
            if reference is None:
                reference = outcome
            else:
                # Chunking amortizes dispatch overhead only; the results
                # must be bit-identical to process-per-instance dispatch.
                assert outcome == reference
    return len(instances), timings


def _render_chunks(n_instances, timings) -> str:
    ncpu = os.cpu_count() or 1
    base = timings["per-instance"]
    lines = [
        "Chunked dispatch -- solve_many(chunk_size='auto') on small "
        "instances",
        f"({n_instances} CDD instances with n <= 20, parallel SA, "
        f"iterations={CHUNK_SOLVE_KW['iterations']}; identical results "
        "asserted across modes)",
        "",
        f"{'dispatch':>22} {'wall [s]':>10} {'vs per-instance':>16}",
    ]
    for mode, wall in timings.items():
        lines.append(
            f"{mode:>22} {wall:>10.3f} {base / wall:>15.2f}x"
        )
    lines += [
        "",
        f"on {ncpu} CPU core(s)",
        "",
        "chunk_size='auto' packs 8 consecutive small instances per worker",
        "task, trading one process fork + one instance pickle per solve",
        "for one per chunk; per-instance error isolation inside a chunk",
        "is preserved (see docs/parallel.md).",
    ]
    return "\n".join(lines)


def test_solve_many_chunked_dispatch(benchmark):
    n_instances, timings = benchmark.pedantic(
        _run_chunk_study, rounds=1, iterations=1
    )
    _shared.publish(
        "pool_chunked_dispatch", _render_chunks(n_instances, timings)
    )
    # Bit-identity across dispatch modes is asserted inside the study;
    # the wall-clock comparison is published, not asserted -- the win
    # depends on how fast the host forks relative to a 60-iteration solve.
