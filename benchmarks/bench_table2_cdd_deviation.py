"""Table II: average %deviation of the four parallel algorithms (CDD).

Regenerates the paper's Table II at the active scale: for every job size,
the Biskup-Feldmann instance grid is solved by SA and DPSO at the low and
high generation budgets (1:5 ratio), and the mean percentage deviation from
the best-known (sequential-reference) value is reported.

Expected shape (paper): SA deviations stay small at every size; DPSO
deviations grow dramatically with n; DPSO is competitive up to ~50 jobs.
"""

import _shared


def test_table2_cdd_deviation(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.deviation_study("cdd"), rounds=1, iterations=1
    )
    _shared.publish("table2_cdd_deviation", study.render())
    from repro.experiments.export import write_study_csvs

    write_study_csvs(study, _shared.RESULTS_DIR)

    labels = study.labels
    sa_hi = study.column(labels[1])
    dpso_lo = study.column(labels[2])
    sizes = list(study.sizes)

    # Shape assertions (the qualitative claims of Section VIII-A).
    # 1) DPSO degrades with size: its deviation at the largest size exceeds
    #    its deviation at the smallest sizes.
    assert dpso_lo[-1] > dpso_lo[0] - 1e-9
    # 2) At the largest size, SA (high budget) beats low-budget DPSO.
    assert sa_hi[-1] < dpso_lo[-1]
    # 3) The high SA budget is at least as good as the low one on average.
    sa_lo = study.column(labels[0])
    assert sa_hi.mean() <= sa_lo.mean() + 0.5
