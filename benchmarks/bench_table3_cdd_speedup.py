"""Table III: speedups of the parallel algorithms for the CDD.

Speedup = serial CPU reference time / parallel runtime including all
host<->device transfers.  Two variants are reported: against the modeled
GT 560M device time and against the measured vectorized-ensemble wall time
(see DESIGN.md on the CPU-reference substitution).

Expected shape (paper): speedups grow with the job size and saturate; the
high-iteration variants have ~1/5 of the low-iteration speedups; the DPSO
columns trail the SA columns against the common reference.
"""

import numpy as np

import _shared


def test_table3_cdd_speedup(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.speedup_study("cdd"), rounds=1, iterations=1
    )
    _shared.publish("table3_cdd_speedup", study.render())
    from repro.experiments.export import write_study_csvs

    write_study_csvs(study, _shared.RESULTS_DIR)

    modeled = study.matrix("speedup_modeled")
    # 1) Parallelization pays off at every size against the matched-work
    #    serial reference.  (The paper's strong *growth* with n stems from
    #    its reference implementations' super-linear runtime scaling, which
    #    a matched-work reference deliberately removes -- see
    #    EXPERIMENTS.md.)
    assert np.all(modeled[:, 0] > 1.0)
    # 2) SA speedups exceed DPSO speedups (common CPU reference).
    assert np.all(modeled[:, 0] >= modeled[:, 2])
    # 3) The high-iteration variant's speedup is ~1/5 of the low variant's
    #    (fixed CPU reference per size, 5x the device work), as in Table III.
    ratio = modeled[:, 0] / modeled[:, 1]
    assert np.all(ratio > 3.0) and np.all(ratio < 8.0)
