"""Table IV: average %deviation of the four parallel algorithms (UCDDCP).

As Table II but on the unrestricted controllable-processing-time problem.
Expected shape (paper): DPSO again blows up with n; the high-budget SA
tracks (and sometimes beats -- negative deviations) the sequential
reference; DPSO is the better algorithm only at small sizes.
"""

import _shared


def test_table4_ucddcp_deviation(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.deviation_study("ucddcp"), rounds=1, iterations=1
    )
    _shared.publish("table4_ucddcp_deviation", study.render())
    from repro.experiments.export import write_study_csvs

    write_study_csvs(study, _shared.RESULTS_DIR)

    labels = study.labels
    sa_hi = study.column(labels[1])
    dpso_lo = study.column(labels[2])

    # DPSO (low budget) deteriorates with size and loses to SA (high
    # budget) at the largest size.
    assert dpso_lo[-1] > dpso_lo[0] - 1e-9
    assert sa_hi[-1] < dpso_lo[-1]
