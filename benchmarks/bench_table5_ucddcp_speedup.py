"""Table V: speedups of the parallel algorithms for the UCDDCP.

Expected shape (paper): speedups grow with n and saturate near the largest
sizes; high-budget columns are ~1/5 of the low-budget ones; the smallest
sizes may not pay off at all (sub-unity speedups in the paper's Table V).
"""

import numpy as np

import _shared


def test_table5_ucddcp_speedup(benchmark):
    study = benchmark.pedantic(
        lambda: _shared.speedup_study("ucddcp"), rounds=1, iterations=1
    )
    _shared.publish("table5_ucddcp_speedup", study.render())
    from repro.experiments.export import write_study_csvs

    write_study_csvs(study, _shared.RESULTS_DIR)

    modeled = study.matrix("speedup_modeled")
    # Parallelization pays off at every size for the low-budget SA against
    # the matched-work reference (see EXPERIMENTS.md on why the paper's
    # monotone growth with n does not transfer to a matched-work baseline).
    assert np.all(modeled[:, 0] > 1.0)
    # SA >= DPSO against the common reference.
    assert np.all(modeled[:, 0] >= modeled[:, 2])
    # High-budget columns are ~1/5 of the low-budget ones.
    ratio = modeled[:, 0] / modeled[:, 1]
    assert np.all(ratio > 3.0) and np.all(ratio < 8.0)
