"""Benchmark-suite plumbing: report flushing into the terminal summary."""

from __future__ import annotations

import sys
from pathlib import Path

# Make the sibling ``_shared`` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).resolve().parent))

import _shared  # noqa: E402


def pytest_addoption(parser):
    """Benchmark-suite flags."""
    parser.addoption(
        "--device-profile", default=None,
        help="modeled GPU generation for the timing benches "
             "(a repro.gpusim.profiles key, e.g. gt560m, pascal, ampere; "
             "default: REPRO_DEVICE_PROFILE or gt560m)",
    )


def pytest_configure(config):
    """Route the chosen profile into the shared study runners."""
    chosen = config.getoption("--device-profile")
    if chosen is not None:
        _shared.set_device_profile(chosen)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every regenerated table/figure after the benchmark run."""
    reports = _shared.collected_reports()
    if not reports:
        return
    tr = terminalreporter
    tr.section("reproduced tables and figures")
    for name in sorted(reports):
        tr.write_line("")
        tr.write_line(f"===== {name} =====")
        for line in reports[name].splitlines():
            tr.write_line(line)
    tr.write_line("")
    tr.write_line(f"(also written to {_shared.RESULTS_DIR}/)")
