"""Every solver in the library on one instance, equal evaluation budgets.

Run:  python examples/baseline_shootout.py [-n 50]

Compares, at (approximately) the same number of sequence evaluations:

* the paper's parallel asynchronous SA and parallel DPSO,
* the serial baselines: SA, Threshold Accepting and the (mu+lambda)
  Evolutionary Strategy -- the algorithm family of the paper's CPU
  references [7]/[18],
* plus a batched local-search polish of the winner (hybrid extension).

The point is the reproduction's central comparison in miniature: how the
parallel ensemble trades chain length for chain count, and where the
sequential baselines sit at equal work.
"""

import argparse
import numpy as np

from repro import CDDSolver, biskup_instance
from repro.experiments.tables import render_table
from repro.seqopt.local_search import local_search


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("-n", "--jobs", type=int, default=50)
    parser.add_argument("--budget", type=int, default=48_000,
                        help="approximate sequence evaluations per method")
    args = parser.parse_args()

    inst = biskup_instance(args.jobs, 0.4, 1)
    solver = CDDSolver(inst)
    budget = args.budget
    pop = 192

    runs = {
        "parallel SA (192 chains)": solver.solve(
            "parallel_sa", iterations=budget // pop, grid_size=4,
            block_size=48, seed=11,
        ),
        "parallel DPSO (192 particles)": solver.solve(
            "parallel_dpso", iterations=budget // pop, grid_size=4,
            block_size=48, seed=11,
        ),
        "serial SA (one chain)": solver.solve(
            "serial_sa", iterations=budget, seed=11,
        ),
        "serial Threshold Accepting": solver.solve(
            "serial_ta", iterations=budget, seed=11,
        ),
        "serial (10+40)-ES": solver.solve(
            "serial_es", generations=budget // 40, mu=10, lam=40, seed=11,
        ),
    }

    rows = []
    for name, result in sorted(runs.items(), key=lambda kv: kv[1].objective):
        rows.append([
            name,
            result.objective,
            result.evaluations,
            f"{result.wall_time_s:.2f}",
        ])
    print(f"instance: {inst.name} (d = {inst.due_date:g})\n")
    print(render_table(
        ["method", "objective", "evaluations", "wall (s)"],
        rows,
        title=f"Shootout at ~{budget} evaluations each",
    ))

    best_name, best = min(runs.items(), key=lambda kv: kv[1].objective)
    polished = local_search(inst, best.best_sequence, "adjacent")
    print(f"\nwinner: {best_name} at {best.objective:g}")
    print(
        f"local-search polish: {polished.objective:g} "
        f"({polished.steps} descent steps, "
        f"{polished.evaluations} extra evaluations)"
    )
    gain = best.objective - polished.objective
    print(f"polish gain: {gain:g} "
          f"({100 * gain / best.objective:.2f}% of the winner)")


if __name__ == "__main__":
    main()
