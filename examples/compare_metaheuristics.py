"""SA vs DPSO across job sizes: reproducing the paper's central finding.

Run:  python examples/compare_metaheuristics.py [--sizes 20 50 100]

The paper's headline result (Tables II/IV): the asynchronous parallel SA
keeps its deviation small at every job count, while the asynchronous DPSO
-- whose particles, like the SA chains, evolve independently -- degrades
dramatically as n grows; DPSO is competitive only for small instances.
This example runs both at equal budgets on a few sizes and prints the
comparison, including the coupled-swarm DPSO extension, which shows how
much the paper's asynchronous design choice costs DPSO.
"""

import argparse

from repro import biskup_instance
from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.experiments.tables import render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+",
                        default=[20, 50, 100, 200])
    parser.add_argument("--iterations", type=int, default=1000)
    parser.add_argument("--grid", type=int, default=4)
    parser.add_argument("--block", type=int, default=48)
    args = parser.parse_args()

    rows = []
    for n in args.sizes:
        inst = biskup_instance(n, 0.4, 1)
        base = dict(iterations=args.iterations, grid_size=args.grid,
                    block_size=args.block, seed=7)
        sa = parallel_sa(inst, ParallelSAConfig(**base))
        dpso = parallel_dpso(inst, ParallelDPSOConfig(**base))
        coupled = parallel_dpso(
            inst, ParallelDPSOConfig(coupling="coupled", **base)
        )
        best = min(sa.objective, dpso.objective, coupled.objective)
        rows.append([
            n,
            sa.objective,
            dpso.objective,
            coupled.objective,
            100.0 * (dpso.objective - sa.objective) / sa.objective,
            f"{sa.modeled_device_time_s:.3f}/"
            f"{dpso.modeled_device_time_s:.3f}",
        ])
        winner = ("SA" if best == sa.objective else
                  "DPSO(async)" if best == dpso.objective else
                  "DPSO(coupled)")
        print(f"n={n}: best = {best:.0f} ({winner})")

    print()
    print(render_table(
        ["Jobs", "SA", "DPSO async", "DPSO coupled",
         "DPSO vs SA (%)", "GPU time SA/DPSO (s)"],
        rows,
        title=(
            f"Parallel SA vs DPSO, {args.iterations} generations, "
            f"{args.grid * args.block} threads"
        ),
    ))
    print(
        "\nExpected shape: the 'DPSO vs SA (%)' gap widens with n (the\n"
        "paper's Tables II/IV), while the coupled-swarm extension stays\n"
        "competitive -- isolating the swarm, as the paper's asynchronous\n"
        "parallelization does, is what breaks DPSO at scale."
    )


if __name__ == "__main__":
    main()
