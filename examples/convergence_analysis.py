"""Why asynchronous? Convergence and diversity of the two SA variants.

Run:  python examples/convergence_analysis.py

Section VI of the paper: "The reason for choosing the asynchronous version
over the synchronous SA is due to the premature convergence of the latter
approach, examined from our experimental analysis."  This example performs
that experimental analysis with the instrumented driver:

* per-generation best and mean energies of both variants,
* the ensemble diversity (positional entropy) over time -- the synchronous
  broadcast visibly collapses the population,
* acceptance rates along the cooling schedule.
"""

import numpy as np

from repro.analysis.convergence import trace_parallel_sa
from repro.core.parallel_sa import ParallelSAConfig
from repro.experiments.ascii_plot import line_plot
from repro.instances.biskup import biskup_instance


def main() -> None:
    instance = biskup_instance(n=50, h=0.4, k=1)
    base = dict(iterations=400, grid_size=2, block_size=64, seed=3)
    print(f"instance: {instance.name}, 128 chains, 400 generations\n")

    t_async = trace_parallel_sa(instance, ParallelSAConfig(**base))
    t_sync = trace_parallel_sa(
        instance, ParallelSAConfig(variant="sync", **base)
    )
    print(t_async.summary())
    print(t_sync.summary())

    gens = np.arange(t_async.generations)
    sample = slice(None, None, 10)
    print()
    print(line_plot(
        gens[sample].tolist(),
        {
            "async best": t_async.best[sample].tolist(),
            "sync best": t_sync.best[sample].tolist(),
            "async mean": t_async.mean_energy[sample].tolist(),
            "sync mean": t_sync.mean_energy[sample].tolist(),
        },
        title="Convergence (energy vs generation)",
    ))

    print()
    print(line_plot(
        t_async.diversity_generations.tolist(),
        {
            "async": t_async.diversity.tolist(),
            "sync": t_sync.diversity.tolist(),
        },
        title="Ensemble diversity (positional entropy vs generation)",
    ))

    print()
    print("acceptance rate (mean over 50-generation windows):")
    for lo in range(0, t_async.generations, 50):
        w = slice(lo, lo + 50)
        print(f"  gens {lo:>3}-{lo + 49:>3}: "
              f"async {t_async.acceptance_rate[w].mean():6.2%}   "
              f"sync {t_sync.acceptance_rate[w].mean():6.2%}   "
              f"T = {t_async.temperature[w].mean():.3g}")

    collapse = t_sync.final_diversity() / max(t_async.final_diversity(), 1e-9)
    print(f"\nfinal diversity ratio (sync/async): {collapse:.2f}")
    print("The synchronous broadcast repeatedly resets every chain to one")
    print("state - the ensemble collapses, which is the premature")
    print("convergence the paper reports.")


if __name__ == "__main__":
    main()
