"""Profiling the simulated device: kernels, occupancy, transfer costs.

Run:  python examples/device_profiling.py

Shows the gpusim substrate as a user would employ the CUDA profiler
(Section VI: "the presented algorithms are optimized both in their
performance and memory usage by using the Nvidia CUDA profiler"):

1. run the four-kernel SA generation pipeline on a GT 560M model and print
   the nvprof-style time breakdown plus the timing-model component
   attribution (overhead vs compute vs memory vs atomics);
2. compare occupancy across block sizes for the fitness kernel;
3. contrast the modeled runtime across registered GPU generations
   (the device-profile registry; see docs/device_profiles.md).
"""

import numpy as np

from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.gpusim import (
    GEFORCE_GT_560M,
    Device,
    get_profile,
    linear_config,
    occupancy,
    profile_names,
)
from repro.instances.biskup import biskup_instance
from repro.kernels.acceptance import make_acceptance_kernel
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import make_cdd_fitness_kernel
from repro.kernels.perturbation import make_perturbation_kernel
from repro.kernels.reduction_kernel import make_reduction_kernel


def profile_generation_pipeline(n: int = 200, pop: int = 768,
                                generations: int = 25) -> None:
    """Run the four-kernel pipeline and print the profiler summary."""
    print(f"--- SA generation pipeline: n={n}, {pop} threads, "
          f"{generations} generations on {GEFORCE_GT_560M.name} ---")
    device = Device(spec=GEFORCE_GT_560M, seed=0)
    inst = biskup_instance(n, 0.4, 1)
    data = DeviceProblemData(device, inst)

    seqs = device.malloc((pop, n), np.int32, "sequences")
    cand = device.malloc((pop, n), np.int32, "candidates")
    energy = device.malloc(pop, np.float64, "energy")
    cand_energy = device.malloc(pop, np.float64, "cand_energy")
    positions = device.malloc((pop, 4), np.int64, "positions")
    result = device.malloc(2, np.float64, "reduction_result")

    rng = np.random.default_rng(0)
    device.memcpy_htod(
        seqs, np.argsort(rng.random((pop, n)), axis=1).astype(np.int32)
    )
    cfg = linear_config(pop, 192)
    fitness = make_cdd_fitness_kernel()
    perturb = make_perturbation_kernel()
    accept = make_acceptance_kernel()
    reduce_k = make_reduction_kernel()

    device.launch(fitness, cfg, seqs, data.p, data.a, data.b, energy)
    for it in range(generations):
        device.launch(perturb, cfg, seqs, cand, positions, True)
        device.launch(fitness, cfg, cand, data.p, data.a, data.b, cand_energy)
        device.launch(accept, cfg, seqs, cand, energy, cand_energy, 10.0)
        device.launch(reduce_k, cfg, energy, result)
        device.synchronize()

    print(device.profiler.summary())
    print()
    print(device.profiler.component_summary())
    print(f"\nmodeled wall time: {device.host_time * 1e3:.3f} ms "
          f"(kernels {device.profiler.kernel_time() * 1e3:.3f} ms, "
          f"transfers {device.profiler.memcpy_time() * 1e3:.3f} ms)")


def occupancy_table(n: int = 200) -> None:
    """Occupancy of the fitness kernel across block sizes."""
    print("\n--- fitness-kernel occupancy on the GT 560M ---")
    kernel = make_cdd_fitness_kernel()
    shared = 2 * n * 8
    print(f"{'block':>6} {'blocks/SM':>10} {'warps/SM':>9} "
          f"{'occupancy':>10}  limiter")
    for block in (32, 64, 96, 128, 192, 256, 384, 512, 768):
        occ = occupancy(GEFORCE_GT_560M, block, kernel.registers_per_thread,
                        shared)
        print(f"{block:>6} {occ.blocks_per_sm:>10} "
              f"{occ.active_warps_per_sm:>9} {occ.occupancy:>9.0%}  "
              f"{occ.limiter}")


def device_comparison(n: int = 500) -> None:
    """The same SA run on every registered GPU generation."""
    print("\n--- device comparison: modeled parallel SA runtime ---")
    inst = biskup_instance(n, 0.4, 1)
    for key in profile_names():
        profile = get_profile(key)
        r = parallel_sa(
            inst,
            ParallelSAConfig(iterations=200, grid_size=4, block_size=192,
                             seed=3, device_profile=key),
        )
        print(f"{key:>8} ({profile.spec.name}, {profile.generation}): "
              f"modeled {r.modeled_device_time_s:.3f} s, "
              f"objective {r.objective:g}")
    print("(identical objectives by design: the timing model never "
          "steers the search)")


if __name__ == "__main__":
    profile_generation_pipeline()
    occupancy_table()
    device_comparison()
