"""Working with OR-library ``sch`` files end to end.

Run:  python examples/orlib_workflow.py

The paper evaluates on the OR-library CDD benchmark of Biskup & Feldmann.
This example shows the file workflow a user with the genuine files would
follow -- and, absent those files, how this repository regenerates an
equivalent set:

1. generate a 10-instance benchmark file in the original ``sch`` layout,
2. parse it back at two restriction factors (the due date is derived from
   ``h``, it is not part of the file),
3. solve every parsed instance and tabulate the results,
4. verify the round trip is lossless.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import CDDSolver, biskup_instance
from repro.experiments.tables import render_table
from repro.instances.orlib import parse_sch, write_sch


def main() -> None:
    n, k_count = 20, 10
    # 1. Generate the benchmark file (job data shared across h factors).
    instances = [biskup_instance(n, 0.4, k) for k in range(1, k_count + 1)]
    content = write_sch(instances)
    path = Path(tempfile.mkdtemp()) / f"sch{n}.txt"
    path.write_text(content)
    print(f"wrote {path} ({len(content.splitlines())} lines, "
          f"{k_count} instances of {n} jobs)")

    # 2. Parse at two restriction factors.
    rows = []
    for h in (0.2, 0.8):
        parsed = parse_sch(path.read_text(), h=h, name_prefix="demo")
        # 3. Solve each instance briefly.
        for inst in parsed[:3]:  # keep the demo quick
            result = CDDSolver(inst).solve(
                "parallel_sa", iterations=300, grid_size=2, block_size=48,
                seed=1,
            )
            rows.append([inst.name, h, inst.due_date, result.objective])
    print()
    print(render_table(
        ["instance", "h", "due date", "objective"],
        rows,
        title="Solved instances parsed from the sch file",
    ))

    # 4. Round-trip check.
    back = parse_sch(path.read_text(), h=0.4)
    for orig, re_read in zip(instances, back):
        assert np.array_equal(orig.processing, re_read.processing)
        assert np.array_equal(orig.alpha, re_read.alpha)
        assert np.array_equal(orig.beta, re_read.beta)
        assert orig.due_date == re_read.due_date
    print("\nround trip lossless: yes")
    print("(drop the genuine OR-library sch files in and parse_sch reads "
          "them unchanged)")


if __name__ == "__main__":
    main()
