"""The paper's worked example (Table I, Figures 1-6), step by step.

Run:  python examples/paper_walkthrough.py

Traces both O(n) sequence optimizers on the 5-job instance of Table I and
prints every intermediate schedule of the illustration:

* CDD (d = 16): initialization at t = 0, the right shifts anchoring jobs 3
  then 2 at the due date, final objective 81 (Figures 1-3);
* UCDDCP (d = 22): the CDD stage, then the compression decisions for jobs
  5 and 4, final objective 77 (Figures 4-6).
"""

import numpy as np

from repro import (
    CDDInstance,
    UCDDCPInstance,
    optimize_cdd_sequence,
    optimize_ucddcp_sequence,
)

P = [6, 5, 2, 4, 4]
M = [5, 5, 2, 3, 3]
ALPHA = [7, 9, 6, 9, 3]
BETA = [9, 5, 4, 3, 2]
GAMMA = [5, 4, 3, 2, 1]


def timeline(completion: np.ndarray, p_eff: np.ndarray, d: float) -> str:
    """A small ASCII Gantt row with the due-date marker."""
    scale = 2
    end = int(max(completion.max(), d)) + 1
    row = [" "] * (end * scale + 1)
    for k, (c, w) in enumerate(zip(completion, p_eff)):
        start = int(round((c - w) * scale))
        stop = int(round(c * scale))
        for x in range(start, stop):
            row[x] = str((k + 1) % 10)
    row[int(round(d * scale))] = "|"
    return "".join(row)


def cdd_walkthrough() -> None:
    d = 16.0
    inst = CDDInstance(P, ALPHA, BETA, d, name="table1_cdd")
    seq = np.arange(5)
    p = inst.processing

    print("=" * 70)
    print(f"CDD illustration (d = {d:g}), sequence J = (1, 2, 3, 4, 5)")
    print("=" * 70)

    c = np.cumsum(p)
    print("\nFig 1 - initialization at t = 0, no idle time:")
    print("  C =", c.tolist(), " DT = C - d =", (c - d).tolist())
    print(" ", timeline(c, p, d))

    # First shift: job 3 (the last job finishing at or before d) to d.
    tau = int(np.searchsorted(c, d, side="right"))
    shift1 = d - c[tau - 1]
    c1 = c + shift1
    print(f"\nFig 2 - right shift by {shift1:g}: job {tau} completes at d:")
    print("  C =", c1.tolist())
    print(" ", timeline(c1, p, d))

    # Second shift: push job 3 past d, anchoring job 2.
    c2 = c1 + p[tau - 1]
    print(f"\nFig 3 - further right shift by P_{tau} = {p[tau - 1]:g}: "
          "job 2 completes at d:")
    print("  C =", c2.tolist())
    print(" ", timeline(c2, p, d))

    sched = optimize_cdd_sequence(inst, seq)
    print("\nO(n) algorithm result:")
    print(f"  completion times: {sched.completion.tolist()}")
    print(f"  due-date position r = {sched.meta['due_date_position']}")
    print(f"  objective = {sched.objective:g}   (paper: 81)")
    assert sched.objective == 81.0


def ucddcp_walkthrough() -> None:
    d = 22.0
    inst = UCDDCPInstance(P, M, ALPHA, BETA, GAMMA, d, name="table1_ucddcp")
    seq = np.arange(5)

    print()
    print("=" * 70)
    print(f"UCDDCP illustration (d = {d:g}), same sequence")
    print("=" * 70)

    cdd_stage = optimize_cdd_sequence(inst.relax_to_cdd(), seq)
    print("\nFig 4 - optimal CDD schedule (job 2 at the due date):")
    print(f"  C = {cdd_stage.completion.tolist()}, "
          f"objective = {cdd_stage.objective:g}")
    print(" ", timeline(cdd_stage.completion, inst.processing, d))

    print("\nCompression decisions (last job first):")
    print("  job 5 (tardy): beta_5 = 2 > gamma_5 = 1  "
          "-> compress by 1 (gain 1)")
    print("  job 4 (tardy): beta_4 + beta_5 - gamma_4 = 3 > 0 "
          "-> compress by 1 (gain 3)")
    print("  job 3: compressible by 0 - nothing to do")
    print("  job 2 (at d): alpha_1 = 7 > gamma_2 = 4, but P_2 = M_2")
    print("  job 1 (early): no predecessors -> never beneficial")

    sched = optimize_ucddcp_sequence(inst, seq)
    p_eff = inst.processing - sched.reduction
    print("\nFigs 5/6 - final compressed schedule:")
    print(f"  reductions X = {sched.reduction.tolist()}")
    print(f"  completion times: {sched.completion.tolist()}")
    print(" ", timeline(sched.completion, p_eff, d))
    print(f"  objective = {sched.objective:g}   (paper: 77)")
    assert sched.objective == 77.0
    assert sched.meta["cdd_objective"] == 81.0


if __name__ == "__main__":
    cdd_walkthrough()
    ucddcp_walkthrough()
    print("\nAll values match the paper.")
