"""Quickstart: solve one benchmark CDD instance with the parallel SA.

Run:  python examples/quickstart.py

Walks the shortest path through the public API:

1. generate a Biskup--Feldmann benchmark instance,
2. solve it with the paper's GPU-parallel asynchronous SA (on the simulated
   GeForce GT 560M),
3. compare against the serial CPU baseline and a random schedule,
4. inspect the resulting schedule.
"""

import numpy as np

from repro import CDDSolver, biskup_instance
from repro.seqopt.batched import batched_cdd_objective


def main() -> None:
    # A 50-job instance with a restrictive due date (h = 0.4): the due date
    # sits well inside the schedule, so earliness/tardiness must be traded.
    instance = biskup_instance(n=50, h=0.4, k=1)
    print(f"instance: {instance.name}")
    print(f"  jobs: {instance.n}, due date: {instance.due_date:g}, "
          f"sum(P): {instance.total_processing:g}")

    solver = CDDSolver(instance)

    # The paper's algorithm: one SA chain per simulated CUDA thread.
    parallel = solver.solve(
        "parallel_sa", iterations=1000, grid_size=4, block_size=48, seed=42
    )
    print("\nparallel SA (4 blocks x 48 threads, 1000 generations):")
    print(f"  {parallel.summary()}")

    # Serial single-chain SA with the same generation count.
    serial = solver.solve("serial_sa", iterations=1000, seed=42)
    print("serial SA (one chain, 1000 iterations):")
    print(f"  {serial.summary()}")

    # How much structure did the optimizer find?  Compare with the average
    # random sequence.
    rng = np.random.default_rng(0)
    random_mean = batched_cdd_objective(
        instance, np.argsort(rng.random((500, instance.n)), axis=1)
    ).mean()
    print(f"\naverage random-sequence objective: {random_mean:.0f}")
    print(f"parallel SA improvement over random: "
          f"{(1 - parallel.objective / random_mean):.1%}")

    # The best schedule, reconstructed by the O(n) completion-time
    # algorithm: no idle time, one job anchored at the due date.
    sched = parallel.schedule
    print(f"\nbest schedule ({sched.n} jobs):")
    d = instance.due_date
    on_time = np.isclose(sched.completion, d)
    print(f"  completion of anchored job: "
          f"{sched.completion[on_time][0] if on_time.any() else 'none':}")
    early = (sched.completion < d).sum()
    tardy = (sched.completion > d).sum()
    print(f"  early jobs: {early}, tardy jobs: {tardy}")
    print(f"  objective: {sched.objective:g}")


if __name__ == "__main__":
    main()
