"""Controllable processing times: when is it worth running the machine hot?

Run:  python examples/ucddcp_compression.py

A domain walkthrough of the UCDDCP: jobs can be accelerated (compressed)
at a per-unit cost -- fuel, wear, overtime.  This example solves one
benchmark instance, then dissects the compression decisions of the optimal
schedule for the best sequence found:

* tardy jobs compress when the tardiness saved downstream outweighs the
  compression cost;
* early jobs compress when sliding their *predecessors* toward the due
  date saves more earliness than the compression costs;
* everything else runs at nominal speed.

It also sweeps a global scaling of the compression penalties to show the
regime change from "compress aggressively" to "never compress".
"""

import numpy as np

from repro import UCDDCPInstance, UCDDCPSolver, ucddcp_instance
from repro.experiments.tables import render_table
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence


def dissect(instance: UCDDCPInstance, sequence: np.ndarray) -> None:
    """Print the per-job compression rationale for one sequence."""
    sched = optimize_ucddcp_sequence(instance, sequence)
    r = sched.meta["due_date_position"]
    d = instance.due_date
    a = instance.alpha[sequence]
    b = instance.beta[sequence]
    g = instance.gamma[sequence]
    max_x = instance.max_reduction[sequence]

    rows = []
    for k in range(instance.n):
        tardy = (k + 1) > r
        if tardy:
            rate = b[k:].sum() - g[k]
            rule = f"sum(beta[{k + 1}:]) - gamma = {rate:g}"
        else:
            rate = a[:k].sum() - g[k]
            rule = f"sum(alpha[:{k}]) - gamma = {rate:g}"
        rows.append([
            k + 1,
            "tardy" if tardy else ("at d" if k + 1 == r else "early"),
            max_x[k],
            rule,
            sched.reduction[k],
        ])
    print(render_table(
        ["pos", "status", "max X", "marginal gain per unit", "chosen X"],
        rows,
        title=f"Compression decisions (d = {d:g}, anchored position r = {r})",
    ))
    print(f"objective: {sched.objective:g} "
          f"(CDD stage before compression: {sched.meta['cdd_objective']:g})")


def penalty_sweep(base: UCDDCPInstance, sequence: np.ndarray) -> None:
    """Scale all compression penalties and watch compression vanish."""
    rows = []
    for factor in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        inst = UCDDCPInstance(
            base.processing, base.min_processing, base.alpha, base.beta,
            base.gamma * factor, base.due_date,
            name=f"{base.name}_gx{factor:g}",
        )
        sched = optimize_ucddcp_sequence(inst, sequence)
        rows.append([
            factor,
            float(sched.reduction.sum()),
            int((sched.reduction > 0).sum()),
            sched.objective,
        ])
    print(render_table(
        ["gamma scale", "total compression", "jobs compressed", "objective"],
        rows,
        title="Compression-penalty sweep (same sequence)",
    ))
    totals = [r[1] for r in rows]
    assert all(x >= y for x, y in zip(totals, totals[1:])), (
        "compression must be monotone non-increasing in its price"
    )


def main() -> None:
    instance = ucddcp_instance(n=20, k=1)
    print(f"instance: {instance.name} "
          f"(d = {instance.due_date:g} >= sum P = {instance.total_processing:g})")

    result = UCDDCPSolver(instance).solve(
        "parallel_sa", iterations=800, grid_size=2, block_size=64, seed=11
    )
    print(f"\nbest sequence found: {result.summary()}\n")

    dissect(instance, result.best_sequence)
    print()
    penalty_sweep(instance, result.best_sequence)


if __name__ == "__main__":
    main()
