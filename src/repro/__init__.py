"""repro: GPGPU-parallel metaheuristics for scheduling against a common due date.

A full reproduction of Awasthi, Lässig, Leuschner & Weise, *GPGPU-based
Parallel Algorithms for Scheduling Against Due Date* (IPDPSW/PCO 2016,
DOI 10.1109/IPDPSW.2016.66), built as a standalone Python library:

* **Problems** -- the Common Due-Date problem (CDD) and the Unrestricted
  CDD with Controllable Processing Times (UCDDCP):
  :class:`~repro.problems.CDDInstance`, :class:`~repro.problems.UCDDCPInstance`.
* **Two-layered approach** -- O(n) optimal-completion-time algorithms for a
  fixed sequence (:mod:`repro.seqopt`) under metaheuristic sequence search
  (:mod:`repro.core`).
* **GPGPU substrate** -- a simulated CUDA device with blocks/threads,
  memory spaces, occupancy, a roofline timing model and an nvprof-style
  profiler (:mod:`repro.gpusim`); the four paper kernels live in
  :mod:`repro.kernels`.
* **Benchmarks** -- Biskup--Feldmann / Awasthi instance generators and
  OR-library I/O (:mod:`repro.instances`), best-known reference management
  (:mod:`repro.bestknown`), and the experiment harness regenerating every
  table and figure of the paper (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import CDDSolver, biskup_instance
>>> instance = biskup_instance(n=50, h=0.4, k=1)
>>> result = CDDSolver(instance).solve("parallel_sa", iterations=500)
>>> print(result.summary())            # doctest: +SKIP
"""

from repro.core.results import SolveResult
from repro.core.solver import CDDSolver, UCDDCPSolver, solve_many, solver_for
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.problems.cdd import CDDInstance
from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence

__version__ = "1.0.0"

__all__ = [
    "CDDInstance",
    "UCDDCPInstance",
    "Schedule",
    "CDDSolver",
    "UCDDCPSolver",
    "SolveResult",
    "solve_many",
    "solver_for",
    "biskup_instance",
    "ucddcp_instance",
    "optimize_cdd_sequence",
    "optimize_ucddcp_sequence",
    "__version__",
]
