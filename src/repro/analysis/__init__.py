"""Analysis tools: convergence, diversity and acceptance statistics.

The paper justifies two design choices qualitatively -- asynchronous over
synchronous SA ("premature convergence of the latter") and SA over DPSO
("intensification oriented ... where as the DPSO is a diversification
oriented metaheuristic").  This subpackage provides the instruments to make
those statements quantitative:

* :mod:`~repro.analysis.convergence` -- instrumented parallel-SA runs that
  record per-generation best/mean energy, acceptance rate and ensemble
  diversity; convergence-curve utilities.
* :mod:`~repro.analysis.diversity` -- permutation-population diversity
  metrics (mean pairwise Kendall-tau distance, positional entropy, distinct
  count).
* :mod:`~repro.analysis.stats` -- paired Wilcoxon comparisons and
  win/tie/loss reports across benchmark instances.
"""

from repro.analysis.convergence import ConvergenceTrace, trace_parallel_sa
from repro.analysis.stats import (
    PairedComparison,
    compare_paired,
    pairwise_report,
)
from repro.analysis.diversity import (
    distinct_fraction,
    kendall_tau_distance,
    mean_pairwise_kendall,
    positional_entropy,
)

__all__ = [
    "ConvergenceTrace",
    "trace_parallel_sa",
    "kendall_tau_distance",
    "mean_pairwise_kendall",
    "positional_entropy",
    "distinct_fraction",
    "PairedComparison",
    "compare_paired",
    "pairwise_report",
]
