"""Instrumented parallel-SA runs: convergence, acceptance and diversity.

``trace_parallel_sa`` executes the same four-kernel pipeline as
:func:`repro.core.parallel_sa.parallel_sa` (both variants) but snapshots the
ensemble every generation: best/mean energy, per-generation acceptance
rate, temperature, and (periodically) the positional-entropy diversity of
the chain population.  The snapshots are host-side instrumentation -- they
are *not* charged to the modeled device time, which is why this module
exists separately from the production driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.diversity import positional_entropy
from repro.core.cooling import estimate_initial_temperature
from repro.core.parallel_sa import ParallelSAConfig, _make_broadcast_kernel
from repro.gpusim.device import Device
from repro.gpusim.launch import Dim3, LaunchConfig
from repro.kernels.acceptance import make_acceptance_kernel
from repro.core.engine.adapters import adapter_for
from repro.kernels.data import DeviceProblemData
from repro.kernels.perturbation import make_perturbation_kernel
from repro.kernels.reduction_kernel import make_elitist_reduction_kernel
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["ConvergenceTrace", "trace_parallel_sa"]


@dataclass
class ConvergenceTrace:
    """Per-generation statistics of one instrumented run."""

    variant: str
    best: np.ndarray  # best-ever energy after each generation
    mean_energy: np.ndarray  # ensemble mean energy
    acceptance_rate: np.ndarray  # fraction of chains accepting
    temperature: np.ndarray
    diversity_generations: np.ndarray  # where diversity was sampled
    diversity: np.ndarray  # positional entropy at those generations
    meta: dict = field(default_factory=dict)

    @property
    def generations(self) -> int:
        """Number of traced generations."""
        return int(self.best.size)

    def final_diversity(self) -> float:
        """Ensemble diversity at the last sample point."""
        return float(self.diversity[-1]) if self.diversity.size else 0.0

    def summary(self) -> str:
        """One-line digest."""
        return (
            f"{self.variant}: best {self.best[-1]:g}, "
            f"final diversity {self.final_diversity():.3f}, "
            f"mean acceptance {self.acceptance_rate.mean():.2%}"
        )


def trace_parallel_sa(
    instance: CDDInstance | UCDDCPInstance,
    config: ParallelSAConfig = ParallelSAConfig(),
    diversity_every: int = 10,
) -> ConvergenceTrace:
    """Run the parallel SA with full per-generation instrumentation."""
    n = instance.n
    adapter = adapter_for(instance)
    min_position = 1 if config.variant == "domain" else 0
    pert = min(config.pert_size, n - min_position)
    pop = config.population
    host_rng = np.random.default_rng(config.seed)

    t0 = (
        config.t0
        if config.t0 is not None
        else estimate_initial_temperature(instance, config.t0_samples, host_rng)
    )

    device = Device(
        spec=config.resolve_device_spec(), seed=config.seed,
        timing=config.resolve_timing_model(),
    )
    data = DeviceProblemData(device, instance)
    seqs = device.malloc((pop, n), np.int32, "sequences")
    cand = device.malloc((pop, n), np.int32, "candidates")
    energy = device.malloc(pop, np.float64, "energy")
    cand_energy = device.malloc(pop, np.float64, "cand_energy")
    positions = device.malloc((pop, pert), np.int64, "pert_positions")
    best_energy = device.malloc(1, np.float64, "best_energy")
    best_seq = device.malloc(n, np.int32, "best_sequence")
    result = device.malloc(2, np.float64, "reduction_result")

    init = np.argsort(host_rng.random((pop, n)), axis=1).astype(np.int32)
    if config.variant == "domain":
        first = (np.arange(pop) % n).astype(np.int32)
        for t in range(pop):
            row = init[t]
            swap_idx = int(np.nonzero(row == first[t])[0][0])
            row[0], row[swap_idx] = row[swap_idx], row[0]
    device.memcpy_htod(seqs, init)

    cfg = LaunchConfig(grid=Dim3(x=config.grid_size),
                       block=Dim3(x=config.block_size))
    fitness_kernel = adapter.make_fitness_kernel()
    perturbation_kernel = make_perturbation_kernel()
    acceptance_kernel = make_acceptance_kernel()
    reduction_kernel = make_elitist_reduction_kernel()
    broadcast_kernel = (
        _make_broadcast_kernel() if config.variant == "sync" else None
    )

    def launch_fitness(seq_buf, out_buf) -> None:
        device.launch(fitness_kernel, cfg, seq_buf,
                      *data.fitness_buffers(), out_buf)

    best_energy.array[0] = np.inf
    launch_fitness(seqs, energy)
    device.launch(reduction_kernel, cfg, energy, seqs, best_energy,
                  best_seq, result)

    iters = config.iterations
    best = np.empty(iters)
    mean_energy = np.empty(iters)
    acceptance = np.empty(iters)
    temperature_track = np.empty(iters)
    div_gens: list[int] = []
    div_vals: list[float] = []

    temperature = t0
    sync_countdown = config.sync_segment_length
    for it in range(iters):
        refresh = it % config.position_refresh == 0
        device.launch(perturbation_kernel, cfg, seqs, cand, positions,
                      refresh, min_position)
        launch_fitness(cand, cand_energy)
        pre = energy.array[:pop].copy()  # instrumentation snapshot
        device.launch(acceptance_kernel, cfg, seqs, cand, energy,
                      cand_energy, temperature)
        acceptance[it] = float(np.mean(energy.array[:pop] != pre))
        device.launch(reduction_kernel, cfg, energy, seqs, best_energy,
                      best_seq, result)
        temperature_track[it] = temperature
        if config.variant != "sync":
            temperature *= config.cooling_rate
        else:
            sync_countdown -= 1
            if sync_countdown == 0:
                assert broadcast_kernel is not None
                device.launch(broadcast_kernel, cfg, seqs, energy, result)
                temperature *= config.cooling_rate
                sync_countdown = config.sync_segment_length
        device.synchronize()

        best[it] = best_energy.array[0]
        mean_energy[it] = float(energy.array[:pop].mean())
        if it % diversity_every == 0 or it == iters - 1:
            div_gens.append(it)
            div_vals.append(positional_entropy(seqs.array[:pop]))

    return ConvergenceTrace(
        variant=config.variant,
        best=best,
        mean_energy=mean_energy,
        acceptance_rate=acceptance,
        temperature=temperature_track,
        diversity_generations=np.asarray(div_gens),
        diversity=np.asarray(div_vals),
        meta={"t0": t0, "population": pop,
              "modeled_device_time_s": device.host_time},
    )
