"""Diversity metrics for populations of job sequences (permutations).

Used to quantify the paper's premature-convergence observation: the
synchronous SA variant broadcasts one state to every chain at each segment
boundary, collapsing the ensemble, while asynchronous chains stay spread
out.  Three complementary metrics:

* **Kendall tau distance** between two permutations (number of discordant
  pairs, normalized) -- the natural metric on sequencing decisions;
* **positional entropy** -- per-position Shannon entropy of the job
  distribution across the population, averaged (1 = uniformly mixed,
  0 = identical sequences);
* **distinct fraction** -- the share of unique sequences in the population.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "kendall_tau_distance",
    "mean_pairwise_kendall",
    "positional_entropy",
    "distinct_fraction",
]


def kendall_tau_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized Kendall tau distance between two permutations.

    0 means identical order, 1 means exactly reversed.  Computed in
    O(n log n) via merge-sort inversion counting on the composed
    permutation.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.ndim != 1:
        raise ValueError("permutations must be 1-D of equal length")
    n = a.size
    if n < 2:
        return 0.0
    # Position of each job in b, read off in a's order: counting inversions
    # of this sequence counts pairs ordered differently by a and b.
    pos_b = np.empty(n, dtype=np.int64)
    pos_b[b] = np.arange(n)
    seq = pos_b[a]
    inversions = _count_inversions(seq)
    return 2.0 * inversions / (n * (n - 1))


def _count_inversions(seq: np.ndarray) -> int:
    """Inversion count by iterative merge sort (O(n log n))."""
    arr = np.asarray(seq, dtype=np.int64).copy()
    n = arr.size
    tmp = np.empty_like(arr)
    inversions = 0
    width = 1
    while width < n:
        for lo in range(0, n, 2 * width):
            mid = min(lo + width, n)
            hi = min(lo + 2 * width, n)
            i, j, k = lo, mid, lo
            while i < mid and j < hi:
                if arr[i] <= arr[j]:
                    tmp[k] = arr[i]
                    i += 1
                else:
                    tmp[k] = arr[j]
                    j += 1
                    inversions += mid - i
                k += 1
            while i < mid:
                tmp[k] = arr[i]
                i += 1
                k += 1
            while j < hi:
                tmp[k] = arr[j]
                j += 1
                k += 1
        arr, tmp = tmp, arr
        width *= 2
    return int(inversions)


def mean_pairwise_kendall(
    population: np.ndarray, max_pairs: int = 200, seed: int = 0
) -> float:
    """Mean Kendall tau distance over (sampled) pairs of the population.

    For populations with more than ``~20`` members the pair set is sampled
    (``max_pairs`` pairs) -- diversity tracking needs a stable estimate, not
    an exact O(S^2 n log n) computation.
    """
    pop = np.asarray(population)
    if pop.ndim != 2:
        raise ValueError("population must be (S, n)")
    s = pop.shape[0]
    if s < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    total_pairs = s * (s - 1) // 2
    if total_pairs <= max_pairs:
        pairs = [(i, j) for i in range(s) for j in range(i + 1, s)]
    else:
        ii = rng.integers(0, s, max_pairs)
        jj = rng.integers(0, s - 1, max_pairs)
        jj = jj + (jj >= ii)
        pairs = list(zip(ii.tolist(), jj.tolist()))
    dists = [kendall_tau_distance(pop[i], pop[j]) for i, j in pairs]
    return float(np.mean(dists))


def positional_entropy(population: np.ndarray) -> float:
    """Average per-position entropy of job occupancy, normalized to [0, 1].

    1 means every job is equally likely at every position across the
    population; 0 means all members are the same sequence.
    """
    pop = np.asarray(population)
    if pop.ndim != 2:
        raise ValueError("population must be (S, n)")
    s, n = pop.shape
    if s < 2 or n < 2:
        return 0.0
    entropies = np.empty(n)
    max_h = np.log(min(s, n))
    for col in range(n):
        counts = np.bincount(pop[:, col], minlength=n)
        p = counts[counts > 0] / s
        entropies[col] = -(p * np.log(p)).sum()
    return float(entropies.mean() / max_h) if max_h > 0 else 0.0


def distinct_fraction(population: np.ndarray) -> float:
    """Fraction of unique sequences in the population."""
    pop = np.asarray(population)
    if pop.ndim != 2:
        raise ValueError("population must be (S, n)")
    unique = np.unique(pop, axis=0).shape[0]
    return unique / pop.shape[0]
