"""Statistical comparison of algorithms across benchmark instances.

The paper compares algorithms by mean percentage deviation only; this
module adds the significance layer a careful reproduction should report:

* **paired Wilcoxon signed-rank test** over per-instance objectives (the
  standard nonparametric choice for paired metaheuristic comparisons);
* **win/tie/loss counts**;
* a compact pairwise comparison report for a set of algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["PairedComparison", "compare_paired", "pairwise_report"]


@dataclass(frozen=True)
class PairedComparison:
    """Result of one paired algorithm comparison."""

    name_a: str
    name_b: str
    wins_a: int
    wins_b: int
    ties: int
    median_diff: float  # median of (a - b); negative favors a
    p_value: float

    @property
    def significant(self) -> bool:
        """Whether the difference is significant at the 5% level."""
        return self.p_value < 0.05

    def describe(self) -> str:
        """One-line verdict."""
        if self.ties == self.wins_a + self.wins_b == 0:
            return f"{self.name_a} vs {self.name_b}: no data"
        verdict = (
            f"{self.name_a} better" if self.median_diff < 0
            else f"{self.name_b} better" if self.median_diff > 0
            else "tied"
        )
        sig = "significant" if self.significant else "not significant"
        return (
            f"{self.name_a} vs {self.name_b}: "
            f"{self.wins_a}W/{self.ties}T/{self.wins_b}L, "
            f"median diff {self.median_diff:+g} ({verdict}; p={self.p_value:.3g}, "
            f"{sig} at 5%)"
        )


def compare_paired(
    name_a: str,
    values_a: np.ndarray,
    name_b: str,
    values_b: np.ndarray,
) -> PairedComparison:
    """Wilcoxon signed-rank comparison of two per-instance value vectors.

    Lower is better (objectives or deviations).  All-tied inputs return
    ``p = 1.0``.
    """
    a = np.asarray(values_a, dtype=float)
    b = np.asarray(values_b, dtype=float)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError("need equal-length non-empty 1-D paired samples")
    diff = a - b
    wins_a = int((diff < 0).sum())
    wins_b = int((diff > 0).sum())
    ties = int((diff == 0).sum())
    if np.all(diff == 0):
        p = 1.0
    else:
        # zero_method="zsplit" keeps ties informative for small samples.
        _, p = stats.wilcoxon(a, b, zero_method="zsplit")
    return PairedComparison(
        name_a=name_a,
        name_b=name_b,
        wins_a=wins_a,
        wins_b=wins_b,
        ties=ties,
        median_diff=float(np.median(diff)),
        p_value=float(p),
    )


def pairwise_report(samples: dict[str, np.ndarray]) -> str:
    """All-pairs comparison report for named per-instance value vectors."""
    names = list(samples)
    lines = []
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            lines.append(compare_paired(a, samples[a], b, samples[b]).describe())
    return "\n".join(lines)
