"""Best-known reference solutions (the ``Z_best`` of the paper's tables).

The paper measures solution quality as the percentage deviation from the
best values known from the sequential CPU implementations [7], [8], [18].
Those exact values are not distributed, so this subpackage computes
reference values with our own strong CPU-side optimizers (exact algorithms
where tractable, multi-restart serial SA otherwise) and caches them on disk
keyed by instance name -- see DESIGN.md's substitution table.
"""

from repro.bestknown.compute import compute_best_known
from repro.bestknown.store import BestKnownStore

__all__ = ["BestKnownStore", "compute_best_known"]
