"""Computation of best-known reference values.

Policy (strongest available CPU-side method per instance class):

* **exact** -- ``n <= 9``: brute force over all sequences; unrestricted CDD
  with ``n <= 18``: the V-shaped partition DP.  These entries are flagged
  ``optimal``.
* **heuristic reference** -- otherwise: the best of ``restarts``
  multi-restart serial SA chains (NumPy backend) with an enlarged iteration
  budget, which plays the role of the sequential implementations [7]/[8]
  whose results the paper's deviations are measured against.

All randomness is derived from the instance name, so reference values are
reproducible bit-for-bit across machines.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict
from typing import Sequence

from repro.bestknown.store import BestKnownEntry, BestKnownStore
from repro.core.sa import SerialSAConfig, sa_serial
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.exact import (
    brute_force_cdd,
    brute_force_ucddcp,
    vshape_optimal_cdd,
)

__all__ = ["compute_best_known", "recompute_best_known"]

_EXACT_BRUTE_LIMIT = 9
_EXACT_DP_LIMIT = 18


def _name_seed(instance: CDDInstance | UCDDCPInstance, salt: int = 0) -> int:
    if not instance.name:
        raise ValueError("best-known computation requires a named instance")
    return zlib.crc32(f"{instance.name}:{salt}".encode()) & 0x7FFFFFFF


def compute_best_known(
    instance: CDDInstance | UCDDCPInstance,
    store: BestKnownStore | None = None,
    *,
    restarts: int = 4,
    iterations: int = 8000,
    save: bool = True,
) -> float:
    """Best-known objective for ``instance`` (computed and cached).

    If a store is supplied (or the default store exists) and already holds
    the instance, the cached value is returned; otherwise the reference is
    computed per the module policy, recorded, and persisted.
    """
    store = store if store is not None else BestKnownStore()
    cached = store.get(instance.name)
    if cached is not None:
        return cached.objective

    entry = _compute(instance, restarts=restarts, iterations=iterations)
    store.update(instance.name, entry)
    if save:
        store.save()
    return entry.objective


def _compute(
    instance: CDDInstance | UCDDCPInstance, *, restarts: int, iterations: int
) -> BestKnownEntry:
    is_ucddcp = isinstance(instance, UCDDCPInstance)
    n = instance.n

    if n <= _EXACT_BRUTE_LIMIT:
        sched = (
            brute_force_ucddcp(instance) if is_ucddcp else brute_force_cdd(instance)
        )
        return BestKnownEntry(
            objective=sched.objective, method="brute_force", optimal=True
        )
    if not is_ucddcp and not instance.is_restrictive and n <= _EXACT_DP_LIMIT:
        sched = vshape_optimal_cdd(instance)
        return BestKnownEntry(
            objective=sched.objective, method="vshape_dp", optimal=True
        )

    best = float("inf")
    for r in range(restarts):
        result = sa_serial(
            instance,
            SerialSAConfig(
                iterations=iterations,
                seed=_name_seed(instance, r),
                backend="numpy",
            ),
        )
        best = min(best, result.objective)
    return BestKnownEntry(
        objective=best,
        method=f"serial_sa_x{restarts}@{iterations}",
        optimal=False,
        meta={"restarts": restarts, "iterations": iterations},
    )


def _recompute_unit_fn(
    instance: CDDInstance | UCDDCPInstance, *, restarts: int, iterations: int
):
    """Work-unit body: one instance's reference value as a plain dict."""

    def run() -> dict:
        entry = _compute(instance, restarts=restarts, iterations=iterations)
        return {"name": instance.name, **asdict(entry)}

    return run


def recompute_best_known(
    instances: Sequence[CDDInstance | UCDDCPInstance],
    store: BestKnownStore | None = None,
    *,
    restarts: int = 4,
    iterations: int = 8000,
    runner=None,
    save: bool = True,
):
    """Recompute reference values for a whole benchmark set resiliently.

    Each instance is one work unit of a
    :class:`repro.resilience.ResilientRunner`: completed values are
    checkpointed as they finish (an interrupted precompute resumes where
    it stopped, and a hard kill loses at most the in-flight instance),
    then folded into the store, which is saved atomically.  Returns the
    :class:`RunReport`.

    A runner configured with ``workers=N`` (CLI: ``bestknown --workers N``)
    recomputes instances concurrently; unit bodies are pure computations
    returning plain dicts, and the store fold/save happens here in the
    parent, so concurrency cannot race the store file.
    """
    from repro.resilience import ResilientRunner, WorkUnit

    store = store if store is not None else BestKnownStore()
    runner = runner or ResilientRunner()

    units = [
        WorkUnit(
            key=inst.name,
            run=_recompute_unit_fn(
                inst, restarts=restarts, iterations=iterations
            ),
        )
        for inst in instances
    ]
    checkpoint = runner.checkpoint_for("bestknown")
    report = runner.run_units(units, checkpoint)
    for outcome in report.completed:
        payload = dict(outcome.payload)
        name = payload.pop("name")
        store.update(name, BestKnownEntry(**payload))
    if save and report.completed:
        store.save()
    return report
