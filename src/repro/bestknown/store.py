"""Disk-backed store of best-known objective values.

A small JSON database keyed by instance name.  Entries record the objective,
the method that produced it, and whether it is provably optimal.  The store
is monotone: an update only ever lowers a stored objective (a new "best
known" must actually be better), mirroring how best-known tables evolve in
the literature.

Durability: saves go through an atomic temp-file + rename, so a crash
mid-save never leaves a half-written database.  A corrupted store file
(truncated write from an older version, stray editor damage) is moved
aside to ``<name>.corrupt`` and the store starts empty instead of raising
-- best-knowns are recomputable, the experiment run is the thing worth
protecting.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.resilience.atomic import atomic_write_text

__all__ = ["BestKnownEntry", "BestKnownStore", "default_store_path"]


@dataclass(frozen=True)
class BestKnownEntry:
    """One best-known record."""

    objective: float
    method: str
    optimal: bool = False
    meta: dict[str, Any] | None = None


def default_store_path() -> Path:
    """Resolve the store location.

    ``REPRO_DATA_DIR`` overrides; the default lives next to the repository
    (``data/bestknown.json`` under the current working tree) falling back to
    a per-user cache when the tree is read-only.
    """
    env = os.environ.get("REPRO_DATA_DIR")
    if env:
        return Path(env) / "bestknown.json"
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "data" / "bestknown.json"
    return Path.home() / ".cache" / "repro-duedate" / "bestknown.json"


class BestKnownStore:
    """JSON-backed map from instance name to :class:`BestKnownEntry`."""

    def __init__(self, path: Path | str | None = None) -> None:
        self.path = Path(path) if path is not None else default_store_path()
        self._entries: dict[str, BestKnownEntry] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            raw = json.loads(self.path.read_text())
            if not isinstance(raw, dict):
                raise ValueError("store root must be a JSON object")
            self._entries = {
                name: BestKnownEntry(**rec) for name, rec in raw.items()
            }
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            backup = self._quarantine()
            warnings.warn(
                f"best-known store {self.path} is corrupted ({exc}); "
                f"moved it to {backup} and starting empty",
                RuntimeWarning,
                stacklevel=2,
            )
            self._entries = {}

    def _quarantine(self) -> Path:
        """Move the unreadable store file aside; returns the backup path."""
        backup = self.path.with_suffix(self.path.suffix + ".corrupt")
        i = 1
        while backup.exists():
            backup = self.path.with_suffix(f"{self.path.suffix}.corrupt{i}")
            i += 1
        os.replace(self.path, backup)
        return backup

    def save(self) -> None:
        """Persist the store atomically (creating parent directories)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {name: asdict(e) for name, e in sorted(self._entries.items())}
        atomic_write_text(
            self.path, json.dumps(payload, indent=1, sort_keys=True)
        )

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str) -> BestKnownEntry | None:
        """The stored entry, or ``None``."""
        return self._entries.get(name)

    def update(self, name: str, entry: BestKnownEntry) -> bool:
        """Record ``entry`` if it improves (or first defines) the best known.

        Returns whether the store changed.  An existing *optimal* entry is
        never displaced by a merely heuristic one.
        """
        current = self._entries.get(name)
        if current is None:
            self._entries[name] = entry
            return True
        if current.optimal and not entry.optimal:
            return False
        if entry.objective < current.objective - 1e-9 or (
            entry.optimal and not current.optimal
        ):
            self._entries[name] = entry
            return True
        return False
