"""Disk-backed store of best-known objective values.

A small JSON database keyed by instance name.  Entries record the objective,
the method that produced it, and whether it is provably optimal.  The store
is monotone: an update only ever lowers a stored objective (a new "best
known" must actually be better), mirroring how best-known tables evolve in
the literature.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

__all__ = ["BestKnownEntry", "BestKnownStore", "default_store_path"]


@dataclass(frozen=True)
class BestKnownEntry:
    """One best-known record."""

    objective: float
    method: str
    optimal: bool = False
    meta: dict[str, Any] | None = None


def default_store_path() -> Path:
    """Resolve the store location.

    ``REPRO_DATA_DIR`` overrides; the default lives next to the repository
    (``data/bestknown.json`` under the current working tree) falling back to
    a per-user cache when the tree is read-only.
    """
    env = os.environ.get("REPRO_DATA_DIR")
    if env:
        return Path(env) / "bestknown.json"
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / "data" / "bestknown.json"
    return Path.home() / ".cache" / "repro-duedate" / "bestknown.json"


class BestKnownStore:
    """JSON-backed map from instance name to :class:`BestKnownEntry`."""

    def __init__(self, path: Path | str | None = None) -> None:
        self.path = Path(path) if path is not None else default_store_path()
        self._entries: dict[str, BestKnownEntry] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        raw = json.loads(self.path.read_text())
        self._entries = {
            name: BestKnownEntry(**rec) for name, rec in raw.items()
        }

    def save(self) -> None:
        """Persist the store (creating parent directories)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = {name: asdict(e) for name, e in sorted(self._entries.items())}
        self.path.write_text(json.dumps(payload, indent=1, sort_keys=True))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, name: str) -> BestKnownEntry | None:
        """The stored entry, or ``None``."""
        return self._entries.get(name)

    def update(self, name: str, entry: BestKnownEntry) -> bool:
        """Record ``entry`` if it improves (or first defines) the best known.

        Returns whether the store changed.  An existing *optimal* entry is
        never displaced by a merely heuristic one.
        """
        current = self._entries.get(name)
        if current is None:
            self._entries[name] = entry
            return True
        if current.optimal and not entry.optimal:
            return False
        if entry.objective < current.objective - 1e-9 or (
            entry.optimal and not current.optimal
        ):
            self._entries[name] = entry
            return True
        return False
