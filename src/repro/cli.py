"""Command-line interface: ``repro <command>`` (or ``python -m repro.cli``).

Commands
--------
``solve``       solve one benchmark instance with a chosen method
``serve``       run the HTTP scheduling service (docs/service.md)
``agent``       serve pool tasks to remote solves (``--backend distributed``)
``experiment``  regenerate a paper table/figure (``repro experiment table2``)
``list``        list experiments, benchmark sets and device presets
``profile``     run one parallel SA and print the nvprof-style summary
``bestknown``   precompute reference values for a benchmark set
``trace``       convergence/diversity trace of the parallel SA
``report``      assemble EXPERIMENTS.md from results/
``lint``        run the determinism/concurrency static analyzer (docs/lint.md)

``experiment`` and ``bestknown`` run through the resilience layer
(:mod:`repro.resilience`): ``--resume`` replays checkpointed work units,
``--max-retries``/``--unit-timeout`` bound transient-failure retries, and
``--inject-fault`` arms deterministic fault injection for testing.  Exit
codes: 0 clean, 1 with permanently failed cells, 130 when interrupted.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.engine.backends import BACKENDS, DEFAULT_BACKEND
from repro.core.solver import CDDSolver, UCDDCPSolver, solver_methods
from repro.experiments.config import SCALES, get_scale
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.gpusim.profiles import DEFAULT_PROFILE, profile_names
from repro.instances.biskup import biskup_instance
from repro.instances.registry import registry_names
from repro.instances.ucddcp_gen import ucddcp_instance

__all__ = ["main", "build_parser"]


def _add_device_profile_arg(parser: argparse.ArgumentParser) -> None:
    """The shared ``--device-profile`` flag (see docs/device_profiles.md)."""
    parser.add_argument(
        "--device-profile", choices=profile_names(), default=DEFAULT_PROFILE,
        help="modeled GPU generation for gpusim timings (default: "
             "%(default)s, the paper's GT 560M); results are "
             "profile-independent, only modeled runtimes change",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'GPGPU-based Parallel Algorithms for Scheduling "
            "Against Due Date' (IPDPSW 2016)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve one benchmark instance")
    p_solve.add_argument("problem", choices=("cdd", "ucddcp"))
    p_solve.add_argument("-n", "--jobs", type=int, default=50)
    p_solve.add_argument("-k", "--replicate", type=int, default=1)
    p_solve.add_argument("--h-factor", type=float, default=0.4,
                         help="restriction factor (CDD only)")
    p_solve.add_argument(
        "-m", "--method", default="parallel_sa", choices=solver_methods(),
    )
    p_solve.add_argument("-i", "--iterations", type=int, default=1000)
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--grid", type=int, default=None,
                         help="grid size (parallel methods)")
    p_solve.add_argument("--block", type=int, default=None,
                         help="block size (parallel methods)")
    p_solve.add_argument(
        "--backend", choices=tuple(BACKENDS), default=DEFAULT_BACKEND,
        help="execution backend (parallel methods): cycle-modeled gpusim, "
             "fast vectorized host execution, or multiprocess sharding "
             "across worker processes",
    )
    p_solve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes for --backend multiprocess "
             "(default: one per CPU, capped at the grid size)",
    )
    p_solve.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-shard wall-clock deadline for --backend multiprocess; "
             "a hung shard is killed and (with --task-retries) re-run "
             "bit-identically",
    )
    p_solve.add_argument(
        "--task-retries", type=int, default=0, metavar="K",
        help="in-pool retries of crashed/hung shards before the solve "
             "fails (--backend multiprocess)",
    )
    p_solve.add_argument(
        "--inject-pool-fault", default=None, metavar="KIND:TASK[:repeat]",
        help="deterministic pool-transport fault injection for testing, "
             "e.g. 'kill:1' or 'hang:0' or 'corrupt-payload:0:repeat' "
             "(--backend multiprocess)",
    )
    p_solve.add_argument(
        "--hosts", default=None, metavar="HOST[:PORT]:WORKERS,...",
        help="host topology for --backend distributed, e.g. "
             "'host1:4,host2:8' or 'localhost:7471:2,localhost:7472:2'; "
             "worker counts fix the shard plan, so results are "
             "bit-identical to --backend multiprocess with the same total",
    )
    p_solve.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help="ping cadence to each host agent (--backend distributed; "
             "default 2s)",
    )
    p_solve.add_argument(
        "--heartbeat-timeout", type=float, default=None, metavar="SECONDS",
        help="silence deadline before a host is declared dead and its "
             "shards fail over (--backend distributed; default 10s)",
    )
    p_solve.add_argument(
        "--inject-net-fault", default=None, metavar="KIND:TASK[:repeat]",
        help="deterministic network fault injection for testing, e.g. "
             "'disconnect:1' or 'blackhole:0' or 'corrupt-frame:0:repeat' "
             "(kinds: disconnect, delay, partial-frame, corrupt-frame, "
             "blackhole; --backend distributed)",
    )
    _add_device_profile_arg(p_solve)

    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP scheduling service: async job queue, admission "
             "control and a content-addressed result cache "
             "(see docs/service.md)",
    )
    from repro.service.cli import add_serve_arguments

    add_serve_arguments(p_serve)

    p_agent = sub.add_parser(
        "agent",
        help="serve pool tasks to remote solves (the host side of "
             "--backend distributed; see docs/distributed.md)",
    )
    p_agent.add_argument(
        "--bind", default="127.0.0.1", metavar="HOST[:PORT]",
        help="listen address (default: %(default)s on the default agent "
             "port; ':0' picks an ephemeral port — pair with --ready-file)",
    )
    p_agent.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="maximum concurrent worker processes; also this host's task "
             "credit advertised to clients (default: %(default)s)",
    )
    p_agent.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock deadline enforced agent-side; a hung "
             "task is killed and reported, never retried here (the "
             "client owns retries)",
    )
    p_agent.add_argument(
        "--ready-file", default=None, metavar="PATH",
        help="write the bound HOST:PORT to PATH once listening (lets "
             "scripts and CI drills use --bind ':0')",
    )

    p_exp = sub.add_parser("experiment", help="regenerate a table/figure")
    p_exp.add_argument("name", choices=sorted(EXPERIMENTS))
    p_exp.add_argument("--scale", choices=sorted(SCALES), default=None)
    p_exp.add_argument(
        "--checkpoint-dir", default="results/checkpoints",
        help="directory for per-study work-unit checkpoints "
             "(default: %(default)s; 'none' disables checkpointing)",
    )
    p_exp.add_argument(
        "--resume", action="store_true",
        help="replay completed work units from the checkpoint instead of "
             "recomputing them (bit-identical continuation of an "
             "interrupted run)",
    )
    p_exp.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per work unit on transient device errors",
    )
    p_exp.add_argument(
        "--unit-timeout", type=float, default=None, metavar="SECONDS",
        help="per-work-unit wall-clock deadline (checked between retry "
             "attempts)",
    )
    p_exp.add_argument(
        "--backend", choices=tuple(BACKENDS), default=None,
        help="execution backend for the study's solver runs (default: "
             "each study's preference — vectorized for quality tables, "
             "gpusim where modeled timings are the measurement)",
    )
    p_exp.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run the study's work units on N worker processes "
             "(default: serial)",
    )
    p_exp.add_argument(
        "--inject-fault", default=None, metavar="OP:AT:KIND[:repeat]",
        help="deterministic fault injection for testing, e.g. "
             "'launch:100:transient' or 'malloc:1:oom:repeat' "
             "(kinds: transient, timeout, oom, fatal, interrupt)",
    )
    p_exp.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="with --workers: per-unit wall-clock watchdog; a hung "
             "worker is killed and the unit retried without stalling "
             "siblings",
    )
    p_exp.add_argument(
        "--inject-pool-fault", default=None, metavar="KIND:TASK[:repeat]",
        help="with --workers: deterministic pool-transport fault "
             "injection, e.g. 'kill:1' (retried) or 'kill:1:repeat' "
             "(quarantined); kinds: kill, hang, corrupt-payload",
    )
    _add_device_profile_arg(p_exp)

    sub.add_parser("list", help="list experiments and benchmark sets")

    p_prof = sub.add_parser("profile",
                            help="profile one parallel SA run (nvprof style)")
    p_prof.add_argument("-n", "--jobs", type=int, default=100)
    p_prof.add_argument("-i", "--iterations", type=int, default=200)
    p_prof.add_argument("--seed", type=int, default=0,
                        help="RNG seed for the profiled run")
    _add_device_profile_arg(p_prof)

    p_best = sub.add_parser(
        "bestknown",
        help="precompute best-known reference values for a benchmark set",
    )
    p_best.add_argument("set_name", help="registry name, e.g. cdd_quick")
    p_best.add_argument("--restarts", type=int, default=4)
    p_best.add_argument("--iterations", type=int, default=8000)
    p_best.add_argument(
        "--checkpoint-dir", default="results/checkpoints",
        help="directory for the precompute checkpoint "
             "(default: %(default)s; 'none' disables checkpointing)",
    )
    p_best.add_argument(
        "--resume", action="store_true",
        help="skip reference values already checkpointed by an "
             "interrupted precompute",
    )
    p_best.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per instance on transient device errors",
    )
    p_best.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="recompute reference values on N worker processes "
             "(default: serial)",
    )
    p_best.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="with --workers: per-instance wall-clock watchdog "
             "(hung worker killed and retried)",
    )
    p_best.add_argument(
        "--inject-pool-fault", default=None, metavar="KIND:TASK[:repeat]",
        help="with --workers: deterministic pool-transport fault "
             "injection (kinds: kill, hang, corrupt-payload)",
    )
    _add_device_profile_arg(p_best)

    p_trace = sub.add_parser(
        "trace",
        help="instrumented convergence/diversity trace of the parallel SA",
    )
    p_trace.add_argument("-n", "--jobs", type=int, default=50)
    p_trace.add_argument("-i", "--iterations", type=int, default=300)
    p_trace.add_argument("--variant", choices=("async", "sync", "domain"),
                         default="async")

    p_report = sub.add_parser(
        "report",
        help="assemble EXPERIMENTS.md from the results/ directory",
    )
    p_report.add_argument("--results", default="results")
    p_report.add_argument("--output", default="EXPERIMENTS.md")

    p_lint = sub.add_parser(
        "lint",
        help="run the determinism/concurrency static analyzer over the "
             "source tree (rule catalog: docs/lint.md)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    if args.problem == "cdd":
        inst = biskup_instance(args.jobs, args.h_factor, args.replicate)
        solver: CDDSolver | UCDDCPSolver = CDDSolver(inst)
    else:
        inst = ucddcp_instance(args.jobs, args.replicate)
        solver = UCDDCPSolver(inst)
    kwargs: dict = {}
    if args.method != "exact":
        kwargs["seed"] = args.seed
        if args.method == "serial_es":
            kwargs["generations"] = args.iterations
        else:
            kwargs["iterations"] = args.iterations
        if args.method.startswith("parallel"):
            if args.grid is not None:
                kwargs["grid_size"] = args.grid
            if args.block is not None:
                kwargs["block_size"] = args.block
            kwargs["backend"] = args.backend
            kwargs["device_profile"] = args.device_profile
            if args.backend == "distributed":
                rc = _apply_distributed_flags(args, kwargs)
                if rc is not None:
                    return rc
            else:
                for flag, value in (
                    ("--hosts", args.hosts),
                    ("--heartbeat-interval", args.heartbeat_interval),
                    ("--heartbeat-timeout", args.heartbeat_timeout),
                    ("--inject-net-fault", args.inject_net_fault),
                ):
                    if value is not None:
                        print(f"{flag} requires --backend distributed",
                              file=sys.stderr)
                        return 2
                supervision_flags = (
                    ("--workers", "workers", args.workers),
                    ("--task-timeout", "task_timeout", args.task_timeout),
                    ("--inject-pool-fault", "pool_faults",
                     args.inject_pool_fault),
                )
                if args.task_retries:
                    supervision_flags += (
                        ("--task-retries", "task_retries", args.task_retries),
                    )
                for flag, key, value in supervision_flags:
                    if value is None:
                        continue
                    if args.backend != "multiprocess":
                        print(f"{flag} requires --backend multiprocess",
                              file=sys.stderr)
                        return 2
                    if key == "pool_faults":
                        from repro.pool.faults import (
                            PoolFaultPlan,
                            parse_pool_fault,
                        )

                        value = PoolFaultPlan([parse_pool_fault(value)])
                    kwargs[key] = value
    result = solver.solve(args.method, **kwargs)
    print(f"instance: {inst.name}")
    print(result.summary())
    print(result.schedule.describe())
    return 0


def _apply_distributed_flags(
    args: argparse.Namespace, kwargs: dict
) -> int | None:
    """Translate the distributed solve flags into solver kwargs.

    Returns an exit code on a usage error, ``None`` on success (kwargs
    updated in place).
    """
    for flag, value in (
        ("--workers", args.workers),
        ("--task-timeout", args.task_timeout),
        ("--inject-pool-fault", args.inject_pool_fault),
    ):
        if value is not None:
            print(
                f"{flag} does not apply to --backend distributed "
                "(worker counts come from --hosts; task deadlines are "
                "agent-side: repro agent --task-timeout)",
                file=sys.stderr,
            )
            return 2
    if args.hosts is None:
        print("--backend distributed requires --hosts", file=sys.stderr)
        return 2
    kwargs["hosts"] = args.hosts
    if args.task_retries:
        kwargs["task_retries"] = args.task_retries
    if args.heartbeat_interval is not None:
        kwargs["heartbeat_interval_s"] = args.heartbeat_interval
    if args.heartbeat_timeout is not None:
        kwargs["heartbeat_timeout_s"] = args.heartbeat_timeout
    if args.inject_net_fault is not None:
        from repro.pool.faults import NetFaultPlan, parse_net_fault

        kwargs["net_faults"] = NetFaultPlan(
            [parse_net_fault(args.inject_net_fault)]
        )
    return None


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.cli import run_serve

    return run_serve(args)


def _cmd_agent(args: argparse.Namespace) -> int:
    from repro.pool.agent import HostAgent
    from repro.pool.net import DEFAULT_AGENT_PORT

    host, _, port_text = args.bind.partition(":")
    try:
        port = int(port_text) if port_text else DEFAULT_AGENT_PORT
    except ValueError:
        print(f"bad --bind {args.bind!r}; expected HOST[:PORT]",
              file=sys.stderr)
        return 2
    agent = HostAgent(
        host or "127.0.0.1", port, args.workers,
        task_timeout=args.task_timeout,
    )
    if args.ready_file:
        with open(args.ready_file, "w", encoding="utf-8") as handle:
            handle.write(f"{agent.label}\n")
    print(
        f"agent listening on {agent.label} with {args.workers} worker(s)",
        file=sys.stderr,
    )
    agent.serve_forever()
    return 0


_RESUME_HINT = "interrupted — checkpoint flushed; rerun with --resume to continue"


def _build_runner(args: argparse.Namespace):
    """A ResilientRunner from the shared resilience CLI flags."""
    from repro.pool.faults import PoolFaultPlan, parse_pool_fault
    from repro.resilience import (
        FaultPlan,
        ResilientRunner,
        RetryPolicy,
        parse_fault,
    )

    plan = None
    if getattr(args, "inject_fault", None):
        plan = FaultPlan([parse_fault(args.inject_fault)])
    pool_plan = None
    if getattr(args, "inject_pool_fault", None):
        pool_plan = PoolFaultPlan([parse_pool_fault(args.inject_pool_fault)])
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if checkpoint_dir in (None, "none"):
        checkpoint_dir = None
    return ResilientRunner(
        policy=RetryPolicy(
            max_retries=args.max_retries,
            unit_timeout_s=getattr(args, "unit_timeout", None),
        ),
        checkpoint_dir=checkpoint_dir,
        resume=args.resume,
        fault_plan=plan,
        backend=getattr(args, "backend", None),
        workers=getattr(args, "workers", None),
        task_timeout_s=getattr(args, "task_timeout", None),
        pool_faults=pool_plan,
        progress=lambda msg: print(f"  [{msg}]", file=sys.stderr),
    )


def _finish_resilient(runner) -> int:
    """Shared exit-code policy: 130 interrupted, 1 failed cells, 0 clean."""
    if runner.interrupted:
        print(f"\n{_RESUME_HINT}", file=sys.stderr)
        return 130
    failed = runner.failed_units
    if failed:
        print(
            f"\n{len(failed)} work unit(s) failed permanently "
            "(marked — in the tables above)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    scale = get_scale(args.scale)
    runner = _build_runner(args)
    print(f"# experiment {args.name} at scale '{scale.name}'\n")
    try:
        print(run_experiment(args.name, scale, runner,
                             device_profile=args.device_profile))
    except KeyboardInterrupt:
        # A Ctrl-C between work units (inside one, the runner degrades
        # gracefully and never re-raises).  Completed units are already
        # checkpointed -- just point at the resume path.
        print(f"\n{_RESUME_HINT}", file=sys.stderr)
        return 130
    return _finish_resilient(runner)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments: ", ", ".join(sorted(EXPERIMENTS)))
    print("benchmark sets:", ", ".join(registry_names()))
    print("scales:       ", ", ".join(sorted(SCALES)))
    print("device profiles:", ", ".join(profile_names()))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
    from repro.gpusim.profiles import get_profile

    profile = get_profile(args.device_profile)
    inst = biskup_instance(args.jobs, 0.4, 1)
    result = parallel_sa(
        inst, ParallelSAConfig(iterations=args.iterations, seed=args.seed,
                               device_profile=args.device_profile)
    )
    print(f"instance: {inst.name}")
    print(f"device:   {profile.spec.name} [{args.device_profile}, "
          f"{profile.generation}]")
    print(result.summary())
    # The profiler lives on the device created inside parallel_sa; repeat a
    # short run with an explicit device to show the kernel breakdown.
    from repro.gpusim.device import Device
    from repro.gpusim.launch import linear_config
    from repro.kernels.data import DeviceProblemData
    from repro.kernels.fitness import make_cdd_fitness_kernel
    import numpy as np

    device = Device(spec=profile.spec, seed=args.seed,
                    timing=profile.create_timing_model())
    data = DeviceProblemData(device, inst)
    seqs = device.malloc((768, inst.n), np.int32, "sequences")
    out = device.malloc(768, np.float64, "fitness")
    rng = np.random.default_rng(args.seed)
    device.memcpy_htod(
        seqs, np.argsort(rng.random((768, inst.n)), axis=1).astype(np.int32)
    )
    for _ in range(10):
        device.launch(
            make_cdd_fitness_kernel(), linear_config(768, 192),
            seqs, data.p, data.a, data.b, out,
        )
    device.synchronize()
    print("\nKernel profile (10 fitness launches, 768 threads):")
    print(device.profiler.summary())
    print("\nTiming-model component attribution:")
    print(device.profiler.component_summary())
    return 0


def _cmd_bestknown(args: argparse.Namespace) -> int:
    from repro.bestknown.compute import recompute_best_known
    from repro.bestknown.store import BestKnownStore
    from repro.instances.registry import benchmark_set

    store = BestKnownStore()
    instances = benchmark_set(args.set_name)
    if args.device_profile != DEFAULT_PROFILE:
        # Reference values come from the CPU-side serial SA: they are
        # quality numbers, not timings, so every profile yields the same
        # store contents.  Accept the flag (scripts pass it uniformly)
        # but say why it changes nothing.
        print(
            f"note: best-known values are device-independent; "
            f"--device-profile {args.device_profile} has no effect here",
            file=sys.stderr,
        )
    runner = _build_runner(args)
    try:
        report = recompute_best_known(
            instances, store, restarts=args.restarts,
            iterations=args.iterations, runner=runner,
        )
    except KeyboardInterrupt:
        store.save()
        print(f"\n{_RESUME_HINT}", file=sys.stderr)
        return 130
    for outcome in report.completed:
        print(f"{outcome.payload['name']}: {outcome.payload['objective']:g}")
    print(f"\n{len(report.completed)} reference values in {store.path}")
    return _finish_resilient(runner)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.convergence import trace_parallel_sa
    from repro.core.parallel_sa import ParallelSAConfig

    inst = biskup_instance(args.jobs, 0.4, 1)
    trace = trace_parallel_sa(
        inst,
        ParallelSAConfig(iterations=args.iterations, grid_size=2,
                         block_size=64, seed=0, variant=args.variant),
    )
    print(f"instance: {inst.name}")
    print(trace.summary())
    step = max(1, trace.generations // 20)
    print(f"{'gen':>5} {'best':>12} {'mean':>12} {'accept':>8} {'T':>10}")
    for g in range(0, trace.generations, step):
        print(f"{g:>5} {trace.best[g]:>12.1f} {trace.mean_energy[g]:>12.1f} "
              f"{trace.acceptance_rate[g]:>7.1%} {trace.temperature[g]:>10.3g}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import write_report

    path = write_report(args.results, args.output)
    print(f"wrote {path}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "serve": _cmd_serve,
        "agent": _cmd_agent,
        "experiment": _cmd_experiment,
        "list": _cmd_list,
        "profile": _cmd_profile,
        "bestknown": _cmd_bestknown,
        "trace": _cmd_trace,
        "report": _cmd_report,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
