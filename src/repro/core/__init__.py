"""The paper's primary contribution: (parallel) metaheuristics for CDD/UCDDCP.

Two search algorithms, each in a serial CPU form and a GPU-parallel form on
the simulated device:

* **Simulated Annealing** -- :mod:`~repro.core.sa` (single chain, the CPU
  baseline) and :mod:`~repro.core.parallel_sa` (the paper's asynchronous
  multi-chain SA, one chain per CUDA thread, plus the synchronous Ferreiro
  variant for the premature-convergence comparison).
* **Discrete Particle Swarm Optimization** -- :mod:`~repro.core.dpso` and
  :mod:`~repro.core.parallel_dpso` (Pan et al. update operators, one
  particle per thread, swarm best shared through the reduction kernel).
* **Reference baselines of [18]** -- :mod:`~repro.core.threshold`
  (Threshold Accepting) and :mod:`~repro.core.evolution`
  ((mu + lambda) Evolutionary Strategy), the CPU comparators of Table III.

Shared infrastructure: :mod:`~repro.core.engine` (problem adapters,
pluggable execution backends and the shared ensemble driver),
:mod:`~repro.core.cooling` (initial-temperature estimation and the
exponential schedule), :mod:`~repro.core.results` (result/record types)
and the high-level façade :mod:`~repro.core.solver`.
"""

from repro.core.cooling import ExponentialCooling, estimate_initial_temperature
from repro.core.engine import (
    BACKENDS,
    DEFAULT_BACKEND,
    ExecutionBackend,
    GpusimBackend,
    ProblemAdapter,
    VectorizedBackend,
    adapter_for,
    create_backend,
    run_ensemble,
)
from repro.core.dpso import DPSOConfig, dpso_serial
from repro.core.evolution import EvolutionStrategyConfig, evolution_strategy
from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.core.results import SolveResult
from repro.core.sa import SerialSAConfig, sa_serial
from repro.core.threshold import ThresholdAcceptingConfig, threshold_accepting
from repro.core.solver import CDDSolver, UCDDCPSolver

__all__ = [
    "ExponentialCooling",
    "estimate_initial_temperature",
    "SolveResult",
    "SerialSAConfig",
    "sa_serial",
    "ParallelSAConfig",
    "parallel_sa",
    "DPSOConfig",
    "dpso_serial",
    "ThresholdAcceptingConfig",
    "threshold_accepting",
    "EvolutionStrategyConfig",
    "evolution_strategy",
    "ParallelDPSOConfig",
    "parallel_dpso",
    "CDDSolver",
    "UCDDCPSolver",
    "ProblemAdapter",
    "adapter_for",
    "ExecutionBackend",
    "GpusimBackend",
    "VectorizedBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "create_backend",
    "run_ensemble",
]
