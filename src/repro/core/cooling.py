"""Temperature schedules for Simulated Annealing.

The paper adopts the exponential cooling schedule ``T <- T * mu`` with
``mu = 0.88`` (selected experimentally from a range of cooling rates) and
estimates the initial temperature as "the standard deviation of fitness
values of 5000 different job sequences, generated randomly", following
Salamon, Sibani & Frost [13].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["ExponentialCooling", "estimate_initial_temperature"]

DEFAULT_COOLING_RATE = 0.88
DEFAULT_T0_SAMPLES = 5000


@dataclass(frozen=True)
class ExponentialCooling:
    """``T_k = T0 * mu^k`` -- the schedule of Algorithm 1, line 10."""

    t0: float
    mu: float = DEFAULT_COOLING_RATE

    def __post_init__(self) -> None:
        if not (0.0 < self.mu < 1.0):
            raise ValueError(f"cooling rate mu must be in (0, 1), got {self.mu}")
        if self.t0 < 0:
            raise ValueError(f"initial temperature must be non-negative: {self.t0}")

    def temperature(self, iteration: int) -> float:
        """Temperature at (0-based) iteration ``iteration``."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        return self.t0 * self.mu**iteration

    def schedule(self, iterations: int) -> np.ndarray:
        """The whole temperature ladder as an array."""
        return self.t0 * self.mu ** np.arange(iterations, dtype=np.float64)


def estimate_initial_temperature(
    instance: CDDInstance | UCDDCPInstance,
    samples: int = DEFAULT_T0_SAMPLES,
    rng: np.random.Generator | None = None,
) -> float:
    """Standard deviation of the fitness of ``samples`` random sequences.

    Evaluated with the batched O(n) optimizers, so the estimate costs one
    vectorized pass.  A zero spread (e.g. ``n == 1``) returns 0.0, which the
    acceptance rule treats as greedy descent.
    """
    # Imported lazily: the adapter layer sits above this shared utility.
    from repro.core.engine.adapters import adapter_for

    if samples < 2:
        raise ValueError("need at least 2 samples to estimate a deviation")
    gen = rng if rng is not None else np.random.default_rng(0)
    seqs = np.argsort(gen.random((samples, instance.n)), axis=1)
    return float(np.std(adapter_for(instance).batched_objective(seqs)))
