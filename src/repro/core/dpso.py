"""Serial Discrete Particle Swarm Optimization (Pan et al. [15], Section VII).

The position update of particle ``i`` is Eq. (3) of the paper:

    p_i(t+1) = c2 (+) F3( c1 (+) F2( w (+) F1(p_i(t)), p_i^b(t) ), g(t) )

where ``(+)`` applies the operator with the given probability, ``F1`` is a
random swap (the velocity), ``F2`` a one-point permutation crossover with
the particle's own best (cognition) and ``F3`` a two-point permutation
crossover with the swarm's best (social component).

The operator probabilities default to ``w = 0.9``, ``c1 = c2 = 0.8`` --
values in the range Pan et al. report working well for permutation flowshop
problems; they are configuration fields so the ablation benches can sweep
them.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.engine.adapters import adapter_for
from repro.core.engine.config import (
    check_positive_iterations,
    check_probabilities,
)
from repro.core.engine.driver import assemble_result
from repro.core.results import SolveResult
from repro.permutation import (
    one_point_crossover,
    random_swap,
    two_point_crossover,
)
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["DPSOConfig", "dpso_serial"]


@dataclass(frozen=True)
class DPSOConfig:
    """Configuration of the serial DPSO."""

    iterations: int = 1000
    swarm_size: int = 30
    w: float = 0.9
    c1: float = 0.8
    c2: float = 0.8
    seed: int = 0
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive_iterations(self.iterations)
        if self.swarm_size < 2:
            raise ValueError("swarm size must be at least 2")
        check_probabilities(self, "w", "c1", "c2")


def dpso_serial(
    instance: CDDInstance | UCDDCPInstance,
    config: DPSOConfig = DPSOConfig(),
) -> SolveResult:
    """Run the serial DPSO; returns the best schedule found."""
    rng = np.random.default_rng(config.seed)
    n = instance.n
    adapter = adapter_for(instance)
    evaluate = adapter.sequence_evaluator()

    start = time.perf_counter()
    swarm = [rng.permutation(n) for _ in range(config.swarm_size)]
    fitness = np.array([evaluate(s) for s in swarm])
    pbest = [s.copy() for s in swarm]
    pbest_fit = fitness.copy()
    g_idx = int(np.argmin(fitness))
    gbest = swarm[g_idx].copy()
    gbest_fit = float(fitness[g_idx])
    history = np.empty(config.iterations) if config.record_history else None
    evaluations = config.swarm_size

    for it in range(config.iterations):
        for i in range(config.swarm_size):
            x = swarm[i]
            if rng.random() < config.w:
                x = random_swap(rng, x)
            if rng.random() < config.c1:
                x = one_point_crossover(rng, x, pbest[i])
            if rng.random() < config.c2:
                x = two_point_crossover(rng, x, gbest)
            f = evaluate(x)
            evaluations += 1
            swarm[i] = x
            fitness[i] = f
            if f < pbest_fit[i]:
                pbest_fit[i] = f
                pbest[i] = x.copy()
                if f < gbest_fit:
                    gbest_fit = f
                    gbest = x.copy()
        if history is not None:
            history[it] = gbest_fit
    wall = time.perf_counter() - start

    return assemble_result(
        adapter,
        gbest,
        evaluations=evaluations,
        wall_time_s=wall,
        history=history,
        params={"algorithm": "dpso_serial", **asdict(config)},
    )
