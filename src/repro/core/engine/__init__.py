"""The unified solver engine: problem adapters x execution backends.

The two-layered approach of the paper (metaheuristic over sequences, O(n)
inner optimizer per candidate) is implemented once here and parameterized
along two orthogonal axes:

* **What problem** -- a :class:`~repro.core.engine.adapters.ProblemAdapter`
  (CDD or UCDDCP) owning objectives, schedule reconstruction and device
  staging; :func:`~repro.core.engine.adapters.adapter_for` is the single
  type-dispatch site in the codebase.
* **Where it runs** -- an
  :class:`~repro.core.engine.backends.ExecutionBackend`: the cycle-modeled
  simulated CUDA device (``"gpusim"``), direct vectorized host execution
  of the same kernel bodies (``"vectorized"``), or the vectorized path
  sharded across worker processes (``"multiprocess"``,
  :mod:`repro.pool`) -- bit-identical trajectories all three ways.

:mod:`~repro.core.engine.driver` hosts the shared generation loop the
parallel drivers plug strategy objects into, and
:mod:`~repro.core.engine.config` the validation shared by the six solver
configuration dataclasses.
"""

from repro.core.engine.adapters import (
    CDDAdapter,
    ProblemAdapter,
    UCDDCPAdapter,
    adapter_for,
)
from repro.core.engine.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    ExecutionBackend,
    GpusimBackend,
    MultiprocessBackend,
    VectorizedBackend,
    create_backend,
)
from repro.core.engine.driver import (
    EnsembleStrategy,
    assemble_result,
    run_ensemble,
)

__all__ = [
    "ProblemAdapter",
    "CDDAdapter",
    "UCDDCPAdapter",
    "adapter_for",
    "ExecutionBackend",
    "GpusimBackend",
    "VectorizedBackend",
    "MultiprocessBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "create_backend",
    "EnsembleStrategy",
    "run_ensemble",
    "assemble_result",
]
