"""Problem adapters: the single place that knows CDD from UCDDCP.

Every driver used to carry its own ``isinstance(instance, UCDDCPInstance)``
branching -- evaluator selection, schedule reconstruction, device staging,
fitness-kernel choice -- repeated six times across :mod:`repro.core` and
again in :mod:`repro.kernels.data`.  A :class:`ProblemAdapter` owns all of
that per problem family, so drivers, backends and the solver façade are
written once against the adapter interface and :func:`adapter_for` is the
only remaining type dispatch.

The adapter splits into two facets:

* the **sequence-policy layer** -- scalar objective, batched ensemble
  objective, pure-Python evaluator (the honest serial-CPU comparator),
  optimal-schedule reconstruction and the exact reference solver;
* the **execution layer** -- the fitness :class:`~repro.gpusim.kernel.Kernel`
  plus the staging recipe (named instance arrays in Figure-9 transfer order
  and the constant-memory scalars) that an
  :class:`~repro.core.engine.backends.ExecutionBackend` materializes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, ClassVar

import numpy as np

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.batched import batched_cdd_objective, batched_ucddcp_objective
from repro.seqopt.cdd_linear import (
    cdd_objective_for_sequence,
    optimize_cdd_sequence,
)
from repro.seqopt.pure_python import cdd_objective_py, ucddcp_objective_py
from repro.seqopt.ucddcp_linear import (
    optimize_ucddcp_sequence,
    ucddcp_objective_for_sequence,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.kernel import Kernel
    from repro.problems.schedule import Schedule

__all__ = ["ProblemAdapter", "CDDAdapter", "UCDDCPAdapter", "adapter_for"]


class ProblemAdapter(ABC):
    """Uniform view of one problem instance for drivers and backends.

    Attributes
    ----------
    kind:
        Short family tag (``"cdd"`` or ``"ucddcp"``) usable in labels and
        registry keys without type checks.
    fitness_param_names:
        Names of the staged instance arrays in the *kernel argument order*
        of the family's fitness kernel (which differs from the Figure-9
        transfer order reported by :meth:`staging_arrays`).
    """

    kind: ClassVar[str]
    fitness_param_names: ClassVar[tuple[str, ...]]

    def __init__(self, instance: CDDInstance | UCDDCPInstance) -> None:
        self.instance = instance

    @property
    def n(self) -> int:
        """Number of jobs."""
        return self.instance.n

    # -- sequence-policy layer -----------------------------------------

    @abstractmethod
    def objective(self, sequence: np.ndarray) -> float:
        """Optimal penalty of one fixed job sequence (scalar O(n) pass)."""

    @abstractmethod
    def batched_objective(self, sequences: np.ndarray) -> np.ndarray:
        """Optimal penalties of an ensemble of sequences (one per row)."""

    @abstractmethod
    def pure_python_evaluator(self) -> Callable[[np.ndarray], float]:
        """List-based evaluator (no NumPy in the hot loop)."""

    def sequence_evaluator(
        self, pure_python: bool = False
    ) -> Callable[[np.ndarray], float]:
        """Scalar evaluator for serial chains; optionally pure Python."""
        if pure_python:
            return self.pure_python_evaluator()
        return self.objective

    @abstractmethod
    def reconstruct(self, sequence: np.ndarray) -> "Schedule":
        """Rebuild the full optimal-completion-time schedule of a sequence."""

    @abstractmethod
    def exact_schedule(self) -> "Schedule":
        """Exact reference solution (exhaustive / partition DP); small n."""

    # -- execution layer -----------------------------------------------

    @abstractmethod
    def make_fitness_kernel(self, use_texture: bool = False) -> "Kernel":
        """Build the family's fitness kernel for the simulated device."""

    @abstractmethod
    def staging_arrays(self) -> tuple[tuple[str, np.ndarray], ...]:
        """``(name, values)`` pairs in the paper's Figure-9 transfer order."""

    def constants(self) -> tuple[tuple[str, np.generic], ...]:
        """Constant-memory scalars shared by both problem families."""
        return (
            ("due_date", np.float64(self.instance.due_date)),
            ("n_jobs", np.int64(self.n)),
        )


class CDDAdapter(ProblemAdapter):
    """Adapter for the Common Due-Date problem."""

    kind = "cdd"
    fitness_param_names = ("processing", "alpha", "beta")

    instance: CDDInstance

    def objective(self, sequence: np.ndarray) -> float:
        return cdd_objective_for_sequence(self.instance, sequence)

    def batched_objective(self, sequences: np.ndarray) -> np.ndarray:
        return batched_cdd_objective(self.instance, sequences)

    def pure_python_evaluator(self) -> Callable[[np.ndarray], float]:
        inst = self.instance
        p = inst.processing.tolist()
        a = inst.alpha.tolist()
        b = inst.beta.tolist()
        d = inst.due_date

        def evaluate(seq: np.ndarray) -> float:
            return cdd_objective_py(p, a, b, d, seq.tolist())

        return evaluate

    def reconstruct(self, sequence: np.ndarray) -> "Schedule":
        return optimize_cdd_sequence(self.instance, sequence)

    def exact_schedule(self) -> "Schedule":
        from repro.seqopt.exact import brute_force_cdd, vshape_optimal_cdd

        # Prefer the 2^n partition DP when applicable (unrestricted), else
        # fall back to n! brute force.
        if not self.instance.is_restrictive and self.n <= 20:
            return vshape_optimal_cdd(self.instance)
        return brute_force_cdd(self.instance)

    def make_fitness_kernel(self, use_texture: bool = False) -> "Kernel":
        from repro.kernels.fitness import make_cdd_fitness_kernel

        return make_cdd_fitness_kernel(use_texture)

    def staging_arrays(self) -> tuple[tuple[str, np.ndarray], ...]:
        inst = self.instance
        return (
            ("processing", inst.processing),
            ("alpha", inst.alpha),
            ("beta", inst.beta),
        )


class UCDDCPAdapter(ProblemAdapter):
    """Adapter for the unrestricted controllable-processing problem."""

    kind = "ucddcp"
    fitness_param_names = ("processing", "min_processing", "alpha", "beta",
                           "gamma")

    instance: UCDDCPInstance

    def objective(self, sequence: np.ndarray) -> float:
        return ucddcp_objective_for_sequence(self.instance, sequence)

    def batched_objective(self, sequences: np.ndarray) -> np.ndarray:
        return batched_ucddcp_objective(self.instance, sequences)

    def pure_python_evaluator(self) -> Callable[[np.ndarray], float]:
        inst = self.instance
        p = inst.processing.tolist()
        m = inst.min_processing.tolist()
        a = inst.alpha.tolist()
        b = inst.beta.tolist()
        g = inst.gamma.tolist()
        d = inst.due_date

        def evaluate(seq: np.ndarray) -> float:
            return ucddcp_objective_py(p, m, a, b, g, d, seq.tolist())

        return evaluate

    def reconstruct(self, sequence: np.ndarray) -> "Schedule":
        return optimize_ucddcp_sequence(self.instance, sequence)

    def exact_schedule(self) -> "Schedule":
        from repro.seqopt.exact import brute_force_ucddcp

        return brute_force_ucddcp(self.instance)

    def make_fitness_kernel(self, use_texture: bool = False) -> "Kernel":
        from repro.kernels.fitness import make_ucddcp_fitness_kernel

        return make_ucddcp_fitness_kernel(use_texture)

    def staging_arrays(self) -> tuple[tuple[str, np.ndarray], ...]:
        inst = self.instance
        return (
            ("processing", inst.processing),
            ("alpha", inst.alpha),
            ("beta", inst.beta),
            ("min_processing", inst.min_processing),
            ("gamma", inst.gamma),
        )


def adapter_for(instance: CDDInstance | UCDDCPInstance) -> ProblemAdapter:
    """Build the adapter for ``instance`` -- the one type-dispatch site."""
    if isinstance(instance, UCDDCPInstance):
        return UCDDCPAdapter(instance)
    if isinstance(instance, CDDInstance):
        return CDDAdapter(instance)
    raise TypeError(
        f"unsupported problem instance type {type(instance).__name__!r}"
    )
