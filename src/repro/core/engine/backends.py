"""Pluggable execution backends for the ensemble metaheuristics.

The parallel drivers express one generation as a pipeline of kernel
launches (perturbation -> fitness -> acceptance -> reduction).  A backend
decides *where* those kernels run:

* :class:`GpusimBackend` -- the cycle-modeled simulated CUDA device of
  :mod:`repro.gpusim`: every launch and transfer is charged to the modeled
  GT 560M clock, reproducing the paper's runtime and speedup figures
  bit-for-bit.
* :class:`VectorizedBackend` -- the same kernel bodies executed directly on
  host NumPy arrays with the same counter-based RNG, skipping the cost
  model, occupancy calculation, stream bookkeeping and profiler entirely.
  Numerically identical results (same best sequence and objective for the
  same seed), no modeled timings -- the fast path for deviation
  experiments, baselines and tests.

Both backends expose CUDA-shaped primitives (``alloc``/``upload``/
``download``/``launch``/``synchronize``) plus adapter-driven staging of the
instance data, so the shared driver in
:mod:`repro.core.engine.driver` is backend-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, ClassVar

import numpy as np

from repro.core.engine.config import (
    check_retries,
    check_timeout,
    check_workers,
)
from repro.gpusim.device import Device, DeviceSpec
from repro.gpusim.kernel import Kernel, ThreadContext
from repro.gpusim.memory import ConstantMemory
from repro.gpusim.rng import DeviceRNG, OffsetRNG
from repro.kernels.data import DeviceProblemData

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine.adapters import ProblemAdapter
    from repro.gpusim.launch import LaunchConfig
    from repro.gpusim.timing import TimingModel
    from repro.resilience.faults import FaultPlan

__all__ = [
    "ExecutionBackend",
    "GpusimBackend",
    "VectorizedBackend",
    "MultiprocessBackend",
    "DistributedBackend",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "create_backend",
]


class ExecutionBackend(ABC):
    """Where the ensemble kernels execute.

    A backend is opened once per solve (staging the instance data per the
    adapter's recipe), then driven through CUDA-shaped primitives.  All
    buffers expose a ``.array`` attribute for device-side initialization
    idioms (e.g. seeding the elitist best with ``inf``), mirroring how the
    kernels themselves touch storage.
    """

    name: ClassVar[str]
    #: Whether :meth:`timing_fields` reports modeled device/kernels/memcpy
    #: durations (only the cycle-modeled backend does).
    models_device_time: ClassVar[bool]

    def __init__(self, fault_plan: "FaultPlan | None" = None) -> None:
        #: Optional deterministic fault injection (see
        #: :mod:`repro.resilience.faults`).  The plan's call counters are
        #: cumulative over the plan, not the backend, so reopening the
        #: backend (a retry) does not re-arm an already-fired fault.
        self.fault_plan = fault_plan

    @abstractmethod
    def open(
        self, adapter: "ProblemAdapter", seed: int, device_spec: DeviceSpec,
        timing: "TimingModel | None" = None,
    ) -> None:
        """Initialize RNG/storage and stage the adapter's instance data.

        ``timing`` is the profile's timing-model bundle; only the
        cycle-modeled backend uses it (``None`` = calibrated default).
        """

    @abstractmethod
    def alloc(
        self, shape: tuple[int, ...] | int, dtype: Any, label: str = ""
    ) -> Any:
        """Allocate a zero-initialized buffer with a ``.array`` attribute."""

    @abstractmethod
    def upload(self, buf: Any, host: np.ndarray) -> None:
        """Copy ``host`` into ``buf`` (charged on modeled backends)."""

    @abstractmethod
    def download(self, buf: Any) -> np.ndarray:
        """Copy ``buf`` back to a host-owned array (charged when modeled)."""

    @abstractmethod
    def launch(self, kern: Kernel, config: "LaunchConfig", *args: Any) -> None:
        """Execute one kernel over the launch geometry."""

    @abstractmethod
    def synchronize(self) -> None:
        """Barrier: wait for all queued launches (advances modeled clock)."""

    @abstractmethod
    def fitness_buffers(self) -> tuple[Any, ...]:
        """Staged instance-data buffers in fitness-kernel argument order."""

    def timing_fields(self) -> dict[str, float]:
        """Modeled-timing kwargs for ``SolveResult`` (empty if unmodeled)."""
        return {}


class GpusimBackend(ExecutionBackend):
    """Run on the simulated CUDA device with full cost modeling."""

    name = "gpusim"
    models_device_time = True

    device: Device
    data: DeviceProblemData

    def open(
        self, adapter: "ProblemAdapter", seed: int, device_spec: DeviceSpec,
        timing: "TimingModel | None" = None,
    ) -> None:
        self.device = Device(
            spec=device_spec, seed=seed, fault_plan=self.fault_plan,
            timing=timing,
        )
        self.data = DeviceProblemData(self.device, adapter.instance)

    def alloc(self, shape, dtype, label: str = ""):
        return self.device.malloc(shape, dtype, label)

    def upload(self, buf, host: np.ndarray) -> None:
        self.device.memcpy_htod(buf, host)

    def download(self, buf) -> np.ndarray:
        return self.device.memcpy_dtoh(buf)

    def launch(self, kern: Kernel, config: "LaunchConfig", *args: Any) -> None:
        self.device.launch(kern, config, *args)

    def synchronize(self) -> None:
        self.device.synchronize()

    def fitness_buffers(self):
        return self.data.fitness_buffers()

    def timing_fields(self) -> dict[str, float]:
        profiler = self.device.profiler
        return {
            "modeled_device_time_s": self.device.host_time,
            "modeled_kernel_time_s": profiler.kernel_time(),
            "modeled_memcpy_time_s": profiler.memcpy_time(),
        }


class _HostBuffer:
    """Host-side stand-in for a device buffer (just the backing array)."""

    __slots__ = ("array", "label")

    def __init__(self, array: np.ndarray, label: str = "") -> None:
        self.array = array
        self.label = label


class _HostDeviceShim:
    """Minimal device surface a kernel body may touch on the host path.

    Kernel bodies only reach their device through ``ctx.syncthreads()``
    (recorded, semantically a no-op under vectorized execution) and
    ``ctx.lane_ids`` (needs ``spec.warp_size``); everything costing-related
    lives behind ``Device.launch`` and is deliberately absent here.
    """

    __slots__ = ("spec", "syncthreads_count")

    def __init__(self, spec: DeviceSpec) -> None:
        self.spec = spec
        self.syncthreads_count = 0

    def _note_syncthreads(self) -> None:
        self.syncthreads_count += 1


class VectorizedBackend(ExecutionBackend):
    """Execute the kernel bodies directly on host arrays (no device model).

    The kernels already compute the whole ensemble with vectorized NumPy;
    this backend calls those same bodies with the same counter-based
    :class:`DeviceRNG`, so the search trajectory is bit-for-bit identical
    to :class:`GpusimBackend` -- it only skips the occupancy/roofline cost
    model, stream, transfer charging and profiler, which is where the
    wall-time overhead of the simulated device lives.
    """

    name = "vectorized"
    models_device_time = False

    def __init__(
        self,
        fault_plan: "FaultPlan | None" = None,
        thread_offset: int = 0,
    ) -> None:
        super().__init__(fault_plan=fault_plan)
        #: Global thread id of this backend's local thread 0.  Non-zero only
        #: when the backend runs one shard of a larger ensemble (the
        #: multiprocess backend's workers); the RNG is then offset so local
        #: threads draw exactly the streams of their global counterparts.
        self.thread_offset = thread_offset

    def open(
        self, adapter: "ProblemAdapter", seed: int, device_spec: DeviceSpec,
        timing: "TimingModel | None" = None,
    ) -> None:
        self.rng: DeviceRNG | OffsetRNG = DeviceRNG(seed)
        if self.thread_offset:
            self.rng = OffsetRNG(self.rng, self.thread_offset)
        self.constant = ConstantMemory()
        self._shim = _HostDeviceShim(device_spec)
        self._staged: dict[str, _HostBuffer] = {}
        self._fitness_names = adapter.fitness_param_names
        for name, values in adapter.staging_arrays():
            self._staged[name] = _HostBuffer(
                np.array(values, dtype=np.float64), name
            )
        for name, value in adapter.constants():
            self.constant.upload(name, value)

    def alloc(self, shape, dtype, label: str = "") -> _HostBuffer:
        if self.fault_plan is not None:
            self.fault_plan.record("malloc")
        return _HostBuffer(np.zeros(shape, dtype=dtype), label)

    def upload(self, buf: _HostBuffer, host: np.ndarray) -> None:
        buf.array[...] = host

    def download(self, buf: _HostBuffer) -> np.ndarray:
        return buf.array.copy()

    def launch(self, kern: Kernel, config: "LaunchConfig", *args: Any) -> None:
        # Kernel launches are 1:1 with the gpusim backend (the driver issues
        # the identical pipeline), so launch-indexed fault plans fire at the
        # same point on both backends -- asserted in the parity tests.
        if self.fault_plan is not None:
            self.fault_plan.record("launch")
        ctx = ThreadContext(
            config=config, constant=self.constant,
            rng=self.rng, device=self._shim,  # type: ignore[arg-type]
        )
        kern.fn(ctx, *args)

    def synchronize(self) -> None:
        pass

    def fitness_buffers(self) -> tuple[_HostBuffer, ...]:
        return tuple(self._staged[name] for name in self._fitness_names)


class MultiprocessBackend(ExecutionBackend):
    """Shard the chain ensemble across worker processes.

    Unlike the other backends this is a *driver-level* strategy, not a
    kernel-level one: :func:`repro.core.engine.driver.run_ensemble` detects
    it and hands the whole solve to
    :func:`repro.pool.sharding.run_sharded_ensemble`, which splits the
    ensemble into contiguous block ranges, runs each slice through a
    :class:`VectorizedBackend` (with an RNG thread offset) in a worker
    process, and merges the shard results bit-identically to the unsharded
    run.  The CUDA-shaped primitives are therefore never called on an
    instance of this class.
    """

    name = "multiprocess"
    models_device_time = False

    def __init__(
        self,
        fault_plan: "FaultPlan | None" = None,
        workers: int | None = None,
        context: str | None = None,
        task_timeout: float | None = None,
        task_retries: int = 0,
        pool_faults: "Any | None" = None,
    ) -> None:
        super().__init__(fault_plan=fault_plan)
        check_workers(workers)
        check_timeout(task_timeout, "task_timeout")
        check_retries(task_retries, "task_retries")
        #: Worker-process count; ``None`` picks ``min(os.cpu_count(),
        #: grid_size)`` at shard-planning time.
        self.workers = workers
        #: multiprocessing start method (``None`` = platform default).
        self.context = context
        #: Per-shard wall-clock deadline: a shard exceeding it is killed
        #: and (given ``task_retries``) deterministically re-run — shard
        #: replays are bit-identical, so supervision never changes results.
        self.task_timeout = task_timeout
        #: In-pool retries of abnormally-died shards (crash/timeout/
        #: corrupt payload) before the solve fails.
        self.task_retries = task_retries
        #: Optional :class:`repro.pool.faults.PoolFaultPlan` injecting
        #: deterministic transport faults into the shard workers.
        self.pool_faults = pool_faults

    def _never(self, primitive: str) -> RuntimeError:
        return RuntimeError(
            f"MultiprocessBackend.{primitive} should never be called: "
            "run_ensemble delegates multiprocess solves to "
            "repro.pool.sharding.run_sharded_ensemble"
        )

    def open(self, adapter, seed, device_spec, timing=None) -> None:
        raise self._never("open")

    def alloc(self, shape, dtype, label: str = ""):
        raise self._never("alloc")

    def upload(self, buf, host) -> None:
        raise self._never("upload")

    def download(self, buf):
        raise self._never("download")

    def launch(self, kern, config, *args) -> None:
        raise self._never("launch")

    def synchronize(self) -> None:
        raise self._never("synchronize")

    def fitness_buffers(self):
        raise self._never("fitness_buffers")


class DistributedBackend(ExecutionBackend):
    """Shard the chain ensemble across remote host agents.

    A driver-level backend like :class:`MultiprocessBackend`:
    ``run_ensemble`` hands the whole solve to
    :func:`repro.pool.sharding.run_distributed_ensemble`, which plans
    shards for the topology's *total* worker count and dispatches them
    over a :class:`repro.pool.hosts.HostPool`.  Because the shard plan
    depends only on that total, the merged result is bit-identical to
    ``backend="multiprocess"`` with the same number of local workers —
    including runs where a host dies mid-flight and its shards fail over
    to the survivors (re-runs use the same ``OffsetRNG`` offsets).

    ``task_timeout`` is deliberately absent: task supervision is the
    *agent's* job (``repro agent --task-timeout``); the client only
    bounds network stalls via heartbeats.
    """

    name = "distributed"
    models_device_time = False

    def __init__(
        self,
        fault_plan: "FaultPlan | None" = None,
        hosts: "str | tuple[Any, ...] | list[Any] | None" = None,
        task_retries: int = 0,
        heartbeat_interval_s: float = 2.0,
        heartbeat_timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        io_timeout_s: float = 30.0,
        reconnect_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        local_fallback: bool = True,
        net_faults: "Any | None" = None,
        context: str | None = None,
    ) -> None:
        super().__init__(fault_plan=fault_plan)
        from repro.pool.net import HostSpec, parse_host_specs

        if hosts is None or (isinstance(hosts, (tuple, list)) and not hosts):
            raise ValueError(
                "DistributedBackend needs a host topology; pass "
                "hosts='HOST[:PORT]:WORKERS,...' (e.g. 'host1:4,host2:8')"
            )
        if isinstance(hosts, str):
            self.hosts: tuple[Any, ...] = parse_host_specs(hosts)
        else:
            for spec in hosts:
                if not isinstance(spec, HostSpec):
                    raise ValueError(
                        f"hosts entries must be HostSpec, got {spec!r}"
                    )
            self.hosts = tuple(hosts)
        check_retries(task_retries, "task_retries")
        self.task_retries = task_retries
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.io_timeout_s = io_timeout_s
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        #: Degrade to the local multiprocess pool when every remote host
        #: is lost (the bottom rung of the ladder; docs/distributed.md).
        self.local_fallback = local_fallback
        #: Optional :class:`repro.pool.faults.NetFaultPlan` injecting
        #: deterministic network faults at the client's send path.
        self.net_faults = net_faults
        #: multiprocessing start method of the local-fallback pool.
        self.context = context

    @property
    def workers(self) -> int:
        """Total task credit across the topology (fixes the shard plan)."""
        return sum(spec.workers for spec in self.hosts)

    def _never(self, primitive: str) -> RuntimeError:
        return RuntimeError(
            f"DistributedBackend.{primitive} should never be called: "
            "run_ensemble delegates distributed solves to "
            "repro.pool.sharding.run_distributed_ensemble"
        )

    def open(self, adapter, seed, device_spec, timing=None) -> None:
        raise self._never("open")

    def alloc(self, shape, dtype, label: str = ""):
        raise self._never("alloc")

    def upload(self, buf, host) -> None:
        raise self._never("upload")

    def download(self, buf):
        raise self._never("download")

    def launch(self, kern, config, *args) -> None:
        raise self._never("launch")

    def synchronize(self) -> None:
        raise self._never("synchronize")

    def fitness_buffers(self):
        raise self._never("fitness_buffers")


#: Registered execution backends, keyed by the public ``backend=`` name.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    GpusimBackend.name: GpusimBackend,
    VectorizedBackend.name: VectorizedBackend,
    MultiprocessBackend.name: MultiprocessBackend,
    DistributedBackend.name: DistributedBackend,
}

DEFAULT_BACKEND = GpusimBackend.name


def create_backend(
    backend: str | ExecutionBackend, fault_plan: "FaultPlan | None" = None
) -> ExecutionBackend:
    """Resolve a backend name (or pass through a ready instance).

    ``fault_plan`` attaches deterministic fault injection to a
    newly-created backend; a passed-through instance keeps whatever plan
    it already carries (``fault_plan`` must then be ``None``).
    """
    if isinstance(backend, ExecutionBackend):
        if fault_plan is not None:
            raise ValueError(
                "cannot attach a fault plan to an existing backend instance"
            )
        return backend
    try:
        return BACKENDS[backend](fault_plan=fault_plan)
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {tuple(BACKENDS)}"
        ) from None
