"""Shared validation for the solver configuration dataclasses.

The six ``*Config`` dataclasses used to repeat the same ``__post_init__``
checks (iteration/grid/block positivity, perturbation-size floor, the
``init`` policy whitelist, probability ranges, the ``population`` property).
These helpers and mixins centralize them; the exact error messages are part
of the public contract (tests match on them), so keep the wording stable.
"""

from __future__ import annotations

import os
import warnings
from typing import TYPE_CHECKING

from repro.gpusim.profiles import get_profile

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import DeviceSpec
    from repro.gpusim.timing import TimingModel

__all__ = [
    "check_positive_iterations",
    "check_grid_block",
    "check_pert_size",
    "check_position_refresh",
    "check_init_policy",
    "check_probabilities",
    "check_choice",
    "check_retries",
    "check_timeout",
    "check_backoff",
    "check_workers",
    "DeviceSelectionMixin",
    "EnsembleGeometryMixin",
    "NeighborhoodConfigMixin",
    "RetryPolicyMixin",
]

INIT_POLICIES = ("random", "vshape")


def check_positive_iterations(value: int, label: str = "iterations") -> None:
    """Iteration/generation counts must be at least 1."""
    if value < 1:
        raise ValueError(f"{label} must be positive")


def check_grid_block(grid_size: int, block_size: int) -> None:
    """Launch geometry of the ensemble drivers must be non-degenerate."""
    if grid_size < 1 or block_size < 1:
        raise ValueError("grid and block sizes must be positive")


def check_pert_size(pert_size: int) -> None:
    """The Fisher--Yates sub-sequence needs at least two positions."""
    if pert_size < 2:
        raise ValueError("perturbation size must be at least 2")


def check_position_refresh(position_refresh: int) -> None:
    """The perturbation-position refresh period must be at least 1."""
    if position_refresh < 1:
        raise ValueError("position_refresh must be at least 1")


def check_init_policy(init: str) -> None:
    """Initial-population policy whitelist (see :mod:`repro.initialization`)."""
    if init not in INIT_POLICIES:
        raise ValueError(f"unknown init policy {init!r}")


def check_probabilities(config: object, *names: str) -> None:
    """Operator gate probabilities must be valid Bernoulli parameters."""
    for name in names:
        v = getattr(config, name)
        if not (0.0 <= v <= 1.0):
            raise ValueError(f"{name} must lie in [0, 1], got {v}")


def check_choice(label: str, value: str, allowed: tuple[str, ...]) -> None:
    """Enumerated-string fields (variant/coupling/...) must be known."""
    if value not in allowed:
        raise ValueError(f"unknown {label} {value!r}")


def check_retries(value: int, label: str = "max_retries") -> None:
    """Retry budgets are counts of *re*-attempts: zero is fine, less is not."""
    if value < 0:
        raise ValueError(f"{label} must be >= 0, got {value}")


def check_timeout(value: float | None, label: str = "unit_timeout_s") -> None:
    """Deadlines are either absent (``None``) or strictly positive seconds."""
    if value is not None and not value > 0:
        raise ValueError(f"{label} must be positive, got {value}")


def check_backoff(base_s: float, factor: float, max_s: float) -> None:
    """Exponential-backoff knobs must describe a non-shrinking schedule."""
    if base_s < 0:
        raise ValueError(f"backoff_base_s must be >= 0, got {base_s}")
    if factor < 1.0:
        raise ValueError(f"backoff_factor must be >= 1, got {factor}")
    if max_s < base_s:
        raise ValueError(
            f"backoff_max_s ({max_s}) must be >= backoff_base_s ({base_s})"
        )


def check_workers(value: int | None, label: str = "workers") -> None:
    """Worker-process counts: ``None`` means "pick for me", else >= 1.

    Oversubscription is legal (the pool degrades to time-slicing) but almost
    never what the caller wanted, so it warns instead of raising.
    """
    if value is None:
        return
    if value < 1:
        raise ValueError(f"{label} must be >= 1, got {value}")
    ncpu = os.cpu_count()
    if ncpu is not None and value > ncpu:
        warnings.warn(
            f"{label}={value} exceeds os.cpu_count()={ncpu}; "
            "workers will time-slice",
            RuntimeWarning,
            stacklevel=3,
        )


class DeviceSelectionMixin:
    """Device selection shared by the parallel configurations.

    Two fields pick the modeled device: ``device_profile`` names a
    registered generation (:mod:`repro.gpusim.profiles`; default the
    paper's GT 560M), and ``device_spec`` -- when not ``None`` --
    overrides it with an explicit :class:`~repro.gpusim.device.DeviceSpec`
    (the ablation-bench path: ``spec.with_overrides(...)`` copies have no
    registry name).  Consumers must go through :meth:`resolve_device_spec`
    / :meth:`resolve_timing_model` rather than reading the fields raw.
    """

    device_profile: str
    device_spec: "DeviceSpec | None"

    def _check_device(self) -> None:
        # Resolve eagerly so an unknown profile name fails at config
        # construction with the registry listed, not mid-solve.
        if self.device_spec is None:
            get_profile(self.device_profile)

    def resolve_device_spec(self) -> "DeviceSpec":
        """The spec launches are modeled on (explicit spec wins)."""
        if self.device_spec is not None:
            return self.device_spec
        return get_profile(self.device_profile).spec

    def resolve_timing_model(self) -> "TimingModel":
        """The timing bundle the profile charges time through."""
        if self.device_spec is not None:
            from repro.gpusim.timing import TimingModel

            return TimingModel.default()
        return get_profile(self.device_profile).create_timing_model()


class EnsembleGeometryMixin:
    """Grid/block geometry shared by the parallel (one-chain-per-thread)
    configurations: validation plus the derived ensemble size."""

    grid_size: int
    block_size: int
    iterations: int

    def _check_geometry(self) -> None:
        check_positive_iterations(self.iterations)
        check_grid_block(self.grid_size, self.block_size)

    @property
    def population(self) -> int:
        """Total number of chains/particles (threads)."""
        return self.grid_size * self.block_size


class NeighborhoodConfigMixin:
    """Fisher--Yates sub-sequence neighborhood parameters (SA/TA family)."""

    pert_size: int
    position_refresh: int

    def _check_neighborhood(self) -> None:
        check_pert_size(self.pert_size)
        check_position_refresh(self.position_refresh)


class RetryPolicyMixin:
    """Retry/backoff/deadline knobs of the resilient execution layer.

    Shared by :class:`repro.resilience.RetryPolicy` (and anything else that
    grows retry semantics) so the CLI, the experiments harness and the
    best-known recompute all reject bad knobs with the same messages.
    """

    max_retries: int
    backoff_base_s: float
    backoff_factor: float
    backoff_max_s: float
    unit_timeout_s: float | None

    def _check_retry_policy(self) -> None:
        check_retries(self.max_retries)
        check_timeout(self.unit_timeout_s)
        check_backoff(self.backoff_base_s, self.backoff_factor,
                      self.backoff_max_s)
