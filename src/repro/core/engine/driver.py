"""The shared generation-loop driver behind the ensemble metaheuristics.

Both parallel drivers (SA and DPSO) follow the exact host program of the
paper's Figure 9: stage the instance, allocate device state, upload the
initial population, run ``iterations`` generations of kernel launches with
a host synchronize per generation, then transfer the elitist best back and
reconstruct its schedule.  :func:`run_ensemble` owns that skeleton --
device setup, the generation loop, history recording, the two host<->device
transfers and result assembly -- while an :class:`EnsembleStrategy` object
contributes only what differs between algorithms: which buffers and kernels
exist and what one generation launches.

The call order against the backend is kept exactly as the original
hand-written drivers performed it, because on the gpusim backend every
launch/transfer charges modeled time and every RNG-consuming kernel
advances the shared counter stream: preserving the order preserves both
the modeled timings and the search trajectory bit-for-bit.

:func:`assemble_result` is the one place a best sequence becomes a
:class:`~repro.core.results.SolveResult`; the serial baselines use it too.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.engine.adapters import ProblemAdapter, adapter_for
from repro.core.engine.backends import (
    DistributedBackend,
    ExecutionBackend,
    MultiprocessBackend,
    create_backend,
)
from repro.core.results import SolveResult
from repro.gpusim.launch import Dim3, LaunchConfig
from repro.initialization import initial_population

if TYPE_CHECKING:  # pragma: no cover
    from repro.problems.cdd import CDDInstance
    from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["EnsembleStrategy", "run_ensemble", "assemble_result"]


def assemble_result(
    adapter: ProblemAdapter,
    best_sequence: np.ndarray,
    *,
    evaluations: int,
    wall_time_s: float,
    history: np.ndarray | None = None,
    params: dict[str, Any] | None = None,
    **timing: float,
) -> SolveResult:
    """Reconstruct the best sequence's schedule and build the result."""
    schedule = adapter.reconstruct(best_sequence)
    return SolveResult(
        schedule=schedule,
        objective=schedule.objective,
        best_sequence=np.asarray(best_sequence),
        evaluations=evaluations,
        wall_time_s=wall_time_s,
        history=history,
        params=params if params is not None else {},
        **timing,
    )


class EnsembleStrategy(ABC):
    """What one parallel metaheuristic contributes to the shared loop.

    The driver calls the hooks in a fixed order (matching Figure 9):
    ``prepare`` (host-side, may consume the host RNG for e.g. the T0
    estimate), ``allocate`` (buffers + kernels; must set :attr:`seqs`,
    :attr:`best_seq`, :attr:`best_energy`), ``prepare_population``,
    ``initialize`` (first evaluation + elitism seed), then ``generation``
    once per iteration, and finally ``finalize`` on the downloaded best.
    """

    #: Population buffer the initial sequences are uploaded into.
    seqs: Any
    #: Buffer holding the elitist best sequence (downloaded at the end).
    best_seq: Any
    #: One-element buffer of the elitist best energy (history source).
    best_energy: Any

    def __init__(self, config: Any) -> None:
        self.config = config

    @property
    @abstractmethod
    def algorithm(self) -> str:
        """Label recorded in ``params['algorithm']``."""

    @property
    def shardable(self) -> bool:
        """Whether chains evolve independently (no cross-chain kernel reads).

        The multiprocess backend may split a shardable ensemble into
        contiguous per-worker slices; an unshardable one (e.g. a variant
        that broadcasts state across the whole ensemble each generation)
        runs whole in a single worker.  See docs/parallel.md.
        """
        return True

    def prepare(
        self, adapter: ProblemAdapter, host_rng: np.random.Generator
    ) -> None:
        """Host-side setup before the wall clock starts (default: none)."""

    @abstractmethod
    def allocate(
        self,
        backend: ExecutionBackend,
        adapter: ProblemAdapter,
        cfg: LaunchConfig,
    ) -> None:
        """Allocate device state and build the kernel set."""

    def prepare_population(self, init_seqs: np.ndarray) -> np.ndarray:
        """Adjust the initial population before upload (default: none)."""
        return init_seqs

    @abstractmethod
    def initialize(self, backend: ExecutionBackend, cfg: LaunchConfig) -> None:
        """Evaluate the initial population and seed the elitist best."""

    @abstractmethod
    def generation(
        self, backend: ExecutionBackend, cfg: LaunchConfig, it: int
    ) -> None:
        """Launch one generation's kernel pipeline (no synchronize)."""

    def finalize(self, final_seq: np.ndarray) -> tuple[np.ndarray, int]:
        """Post-process the downloaded best; returns (sequence, extra
        objective evaluations performed)."""
        return final_seq, 0

    def params(self) -> dict[str, Any]:
        """Algorithm-specific entries of ``SolveResult.params``."""
        return {"algorithm": self.algorithm}


def run_ensemble(
    instance: "CDDInstance | UCDDCPInstance",
    strategy: EnsembleStrategy,
    backend: str | ExecutionBackend = "gpusim",
) -> SolveResult:
    """Run ``strategy`` on ``instance`` over the chosen execution backend."""
    config = strategy.config
    exec_backend = create_backend(backend)
    if isinstance(exec_backend, MultiprocessBackend):
        # Driver-level backend: the solve is sharded across worker
        # processes (bit-identical to the vectorized path; see
        # docs/parallel.md) instead of driven through the primitives below.
        from repro.pool.sharding import run_sharded_ensemble

        return run_sharded_ensemble(instance, strategy, exec_backend)
    if isinstance(exec_backend, DistributedBackend):
        # Same driver-level delegation, shards dispatched to remote host
        # agents (bit-identical to multiprocess for the same total worker
        # count; see docs/distributed.md).
        from repro.pool.sharding import run_distributed_ensemble

        return run_distributed_ensemble(instance, strategy, exec_backend)

    adapter = adapter_for(instance)
    pop = config.population
    host_rng = np.random.default_rng(config.seed)
    strategy.prepare(adapter, host_rng)

    device_spec = config.resolve_device_spec()
    start_wall = time.perf_counter()
    exec_backend.open(
        adapter, seed=config.seed, device_spec=device_spec,
        timing=config.resolve_timing_model(),
    )

    cfg = LaunchConfig(
        grid=Dim3(x=config.grid_size), block=Dim3(x=config.block_size)
    )
    strategy.allocate(exec_backend, adapter, cfg)

    init_seqs = initial_population(
        instance, pop, host_rng, config.init
    ).astype(np.int32)
    init_seqs = strategy.prepare_population(init_seqs)
    exec_backend.upload(strategy.seqs, init_seqs)

    strategy.initialize(exec_backend, cfg)

    history = np.empty(config.iterations) if config.record_history else None
    for it in range(config.iterations):
        strategy.generation(exec_backend, cfg, it)
        exec_backend.synchronize()
        if history is not None:
            history[it] = strategy.best_energy.array[0]

    exec_backend.synchronize()
    final_seq = exec_backend.download(strategy.best_seq).astype(np.intp)
    _ = exec_backend.download(strategy.best_energy)
    final_seq, extra_evals = strategy.finalize(final_seq)
    wall = time.perf_counter() - start_wall

    params = strategy.params()
    params["device_spec"] = device_spec.name
    params["device_profile"] = (
        None if config.device_spec is not None else config.device_profile
    )
    params["backend"] = exec_backend.name
    return assemble_result(
        adapter,
        final_seq,
        evaluations=(config.iterations + 1) * pop + extra_evals,
        wall_time_s=wall,
        history=history,
        params=params,
        **exec_backend.timing_fields(),
    )
