"""(mu + lambda) Evolutionary Strategy: the other [18] CPU baseline.

Feldmann & Biskup's strongest CPU results on the OR-library CDD set come
from Evolutionary Strategies.  This module implements a permutation
(mu + lambda)-ES:

* the population holds ``mu`` sequences;
* each generation creates ``lambda`` offspring, each by mutating a
  uniformly chosen parent with 1..k applications of the Fisher--Yates
  sub-sequence shuffle (self-adaptive mutation strength: the repeat count
  is drawn geometrically, and the distribution tightens as the search
  stagnates);
* survivors are the best ``mu`` of parents plus offspring (elitist "+"
  selection).

It serves two roles: a quality-competitive serial reference for the
best-known computation, and the stand-in for [18] in speedup discussions.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.engine.adapters import adapter_for
from repro.core.engine.config import (
    check_init_policy,
    check_pert_size,
    check_positive_iterations,
)
from repro.core.engine.driver import assemble_result
from repro.core.results import SolveResult
from repro.initialization import initial_population
from repro.permutation import partial_fisher_yates, sample_distinct_positions
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["EvolutionStrategyConfig", "evolution_strategy"]


@dataclass(frozen=True)
class EvolutionStrategyConfig:
    """Configuration of the serial (mu + lambda)-ES baseline."""

    generations: int = 200
    mu: int = 10
    lam: int = 40
    pert_size: int = 4
    max_mutations: int = 4  # cap on shuffle applications per offspring
    seed: int = 0
    init: str = "random"
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive_iterations(self.generations, "generations")
        if self.mu < 1 or self.lam < self.mu:
            raise ValueError("need lambda >= mu >= 1")
        check_pert_size(self.pert_size)
        if self.max_mutations < 1:
            raise ValueError("max_mutations must be positive")
        check_init_policy(self.init)


def evolution_strategy(
    instance: CDDInstance | UCDDCPInstance,
    config: EvolutionStrategyConfig = EvolutionStrategyConfig(),
) -> SolveResult:
    """Run the serial (mu + lambda)-ES; returns the best schedule found."""
    rng = np.random.default_rng(config.seed)
    n = instance.n
    adapter = adapter_for(instance)

    start = time.perf_counter()
    population = initial_population(instance, config.mu, rng, config.init)
    fitness = adapter.batched_objective(population)
    order = np.argsort(fitness)
    population, fitness = population[order], fitness[order]
    pert = min(config.pert_size, n)
    evaluations = config.mu

    history = (
        np.empty(config.generations) if config.record_history else None
    )
    stagnation = 0
    for gen in range(config.generations):
        # Mutation strength: more shuffles while progressing, fewer when
        # stagnating (intensify around the incumbents).
        high = max(1, config.max_mutations - stagnation // 5)
        offspring = np.empty((config.lam, n), dtype=population.dtype)
        for i in range(config.lam):
            parent = population[int(rng.integers(0, config.mu))]
            child = parent
            for _ in range(int(rng.integers(1, high + 1))):
                pos = sample_distinct_positions(rng, n, pert)
                child = partial_fisher_yates(rng, child, pos)
            offspring[i] = child
        child_fit = adapter.batched_objective(offspring)
        evaluations += config.lam

        pool = np.vstack((population, offspring))
        pool_fit = np.concatenate((fitness, child_fit))
        order = np.argsort(pool_fit, kind="stable")[: config.mu]
        improved = pool_fit[order[0]] < fitness[0] - 1e-12
        population, fitness = pool[order], pool_fit[order]
        stagnation = 0 if improved else stagnation + 1
        if history is not None:
            history[gen] = fitness[0]
    wall = time.perf_counter() - start

    best_seq = population[0].astype(np.intp)
    return assemble_result(
        adapter,
        best_seq,
        evaluations=evaluations,
        wall_time_s=wall,
        history=history,
        params={"algorithm": "evolution_strategy", **asdict(config)},
    )
