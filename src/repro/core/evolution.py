"""(mu + lambda) Evolutionary Strategy: the other [18] CPU baseline.

Feldmann & Biskup's strongest CPU results on the OR-library CDD set come
from Evolutionary Strategies.  This module implements a permutation
(mu + lambda)-ES:

* the population holds ``mu`` sequences;
* each generation creates ``lambda`` offspring, each by mutating a
  uniformly chosen parent with 1..k applications of the Fisher--Yates
  sub-sequence shuffle (self-adaptive mutation strength: the repeat count
  is drawn geometrically, and the distribution tightens as the search
  stagnates);
* survivors are the best ``mu`` of parents plus offspring (elitist "+"
  selection).

``walkers`` independent ES populations run batched (the same multi-chain
knob the TA baseline has): every generation scores all
``walkers * lambda`` offspring with **one**
``adapter.batched_objective`` pass, so extra chains cost one larger
vectorized evaluation rather than extra Python loops.  Per-walker draws
run in walker order from one shared host RNG, and ``walkers=1``
reproduces the original single-chain ES byte-for-byte.

It serves two roles: a quality-competitive serial reference for the
best-known computation, and the stand-in for [18] in speedup discussions.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.engine.adapters import adapter_for
from repro.core.engine.config import (
    check_init_policy,
    check_pert_size,
    check_positive_iterations,
)
from repro.core.engine.driver import assemble_result
from repro.core.results import SolveResult
from repro.initialization import initial_population
from repro.permutation import partial_fisher_yates, sample_distinct_positions
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["EvolutionStrategyConfig", "evolution_strategy"]


@dataclass(frozen=True)
class EvolutionStrategyConfig:
    """Configuration of the serial (mu + lambda)-ES baseline."""

    generations: int = 200
    mu: int = 10
    lam: int = 40
    pert_size: int = 4
    max_mutations: int = 4  # cap on shuffle applications per offspring
    seed: int = 0
    init: str = "random"
    record_history: bool = False
    #: Independent ES populations evaluated together in one batched
    #: objective pass per generation (1 = the classic single chain).
    walkers: int = 1

    def __post_init__(self) -> None:
        check_positive_iterations(self.generations, "generations")
        if self.mu < 1 or self.lam < self.mu:
            raise ValueError("need lambda >= mu >= 1")
        check_pert_size(self.pert_size)
        if self.max_mutations < 1:
            raise ValueError("max_mutations must be positive")
        check_init_policy(self.init)
        if self.walkers < 1:
            raise ValueError(f"walkers must be >= 1, got {self.walkers}")


def evolution_strategy(
    instance: CDDInstance | UCDDCPInstance,
    config: EvolutionStrategyConfig = EvolutionStrategyConfig(),
) -> SolveResult:
    """Run ``config.walkers`` (mu + lambda)-ES chains; best schedule wins.

    The walkers never interact: each keeps its own population, fitness
    ranking and stagnation counter; only the objective evaluation is
    batched across them.  The final result is the best incumbent over all
    walkers (ties to the lowest walker index).
    """
    rng = np.random.default_rng(config.seed)
    n = instance.n
    mu, lam, walkers = config.mu, config.lam, config.walkers
    adapter = adapter_for(instance)

    start = time.perf_counter()
    # One host-RNG draw fills rows walker-major, so the first ``mu`` rows
    # (walker 0) equal the single-walker initial population bit-for-bit.
    population = initial_population(
        instance, mu * walkers, rng, config.init
    ).reshape(walkers, mu, n)
    fitness = adapter.batched_objective(
        population.reshape(walkers * mu, n)
    ).reshape(walkers, mu)
    for w in range(walkers):
        order = np.argsort(fitness[w])
        population[w], fitness[w] = population[w][order], fitness[w][order]
    pert = min(config.pert_size, n)
    evaluations = mu * walkers

    history = (
        np.empty(config.generations) if config.record_history else None
    )
    stagnation = np.zeros(walkers, dtype=np.intp)
    offspring = np.empty((walkers, lam, n), dtype=population.dtype)
    for gen in range(config.generations):
        for w in range(walkers):
            # Mutation strength: more shuffles while progressing, fewer
            # when stagnating (intensify around the incumbents).
            high = max(1, config.max_mutations - int(stagnation[w]) // 5)
            for i in range(lam):
                parent = population[w][int(rng.integers(0, mu))]
                child = parent
                for _ in range(int(rng.integers(1, high + 1))):
                    pos = sample_distinct_positions(rng, n, pert)
                    child = partial_fisher_yates(rng, child, pos)
                offspring[w, i] = child
        child_fit = adapter.batched_objective(
            offspring.reshape(walkers * lam, n)
        ).reshape(walkers, lam)
        evaluations += lam * walkers

        for w in range(walkers):
            pool = np.vstack((population[w], offspring[w]))
            pool_fit = np.concatenate((fitness[w], child_fit[w]))
            order = np.argsort(pool_fit, kind="stable")[:mu]
            improved = pool_fit[order[0]] < fitness[w][0] - 1e-12
            population[w], fitness[w] = pool[order], pool_fit[order]
            stagnation[w] = 0 if improved else stagnation[w] + 1
        if history is not None:
            history[gen] = fitness[:, 0].min()
    wall = time.perf_counter() - start

    best_w = int(np.argmin(fitness[:, 0]))
    best_seq = population[best_w][0].astype(np.intp)
    return assemble_result(
        adapter,
        best_seq,
        evaluations=evaluations,
        wall_time_s=wall,
        history=history,
        params={"algorithm": "evolution_strategy", **asdict(config)},
    )
