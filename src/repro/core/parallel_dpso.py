"""GPU-parallel Discrete PSO (Section VII of the paper).

"The parallel implementation of the DPSO algorithm on the GPU is carried
out in the asynchronous manner, as explained for the SA": like the
asynchronous SA, every CUDA thread evolves *independently* -- one particle
per thread whose cognitive and social attractors are its own best position
-- and the reduction selects the overall best only at the end.  This is the
``coupling="async"`` default, and it reproduces the paper's observation that
DPSO deteriorates badly as the job count grows (an isolated particle only
intensifies around its own history).

As extensions, ``coupling="coupled"`` turns the ensemble into a genuine
single swarm (the per-generation reduction feeds the swarm best ``g(t)``
into every thread's two-point crossover), and ``coupling="ring"`` is the
classic lbest topology in between: thread ``t``'s social attractor is the
best personal-best among its ring neighbours ``{t-1, t, t+1}`` -- locality
that a real CUDA kernel gets almost for free from adjacent threads.  The
ablation bench contrasts the couplings (information flow is what rescues
DPSO at large ``n``).

Per-generation kernel pipeline (both modes):

    update (F1/F2/F3 with per-thread cuRAND gates) -> fitness ->
    pbest update -> reduction

The host program (data staging, constant memory, modeled timing, the two
host<->device transfers) is the shared ensemble driver of
:func:`repro.core.engine.driver.run_ensemble`; this module contributes only
the DPSO state and kernels, and ``backend`` selects the execution backend
exactly as for the SA.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.engine.adapters import ProblemAdapter
from repro.core.engine.backends import ExecutionBackend
from repro.core.engine.config import (
    DeviceSelectionMixin,
    EnsembleGeometryMixin,
    check_choice,
    check_init_policy,
    check_probabilities,
)
from repro.core.engine.driver import EnsembleStrategy, run_ensemble
from repro.core.results import SolveResult
from repro.gpusim.device import DeviceSpec
from repro.gpusim.profiles import DEFAULT_PROFILE
from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel
from repro.gpusim.launch import LaunchConfig
from repro.kernels.reduction_kernel import make_elitist_reduction_kernel
from repro.permutation import (
    batched_one_point_crossover,
    batched_random_swap,
    batched_two_point_crossover,
)
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["ParallelDPSOConfig", "ParallelDPSOStrategy", "parallel_dpso"]


@dataclass(frozen=True)
class ParallelDPSOConfig(EnsembleGeometryMixin, DeviceSelectionMixin):
    """Configuration of the parallel DPSO (one particle per thread)."""

    iterations: int = 1000
    grid_size: int = 4
    block_size: int = 192
    w: float = 0.9
    c1: float = 0.8
    c2: float = 0.8
    coupling: str = "async"  # "async" (paper) | "ring" | "coupled"
    seed: int = 0
    record_history: bool = False
    # Initial population policy: "random" (paper default) or "vshape".
    init: str = "random"
    # Route read-only gathers in the fitness kernel through the modeled
    # texture cache (the paper's future-work item).
    use_texture: bool = False
    # Modeled device: a registered profile name, or an explicit spec
    # (e.g. a with_overrides copy) that takes precedence when set.
    device_profile: str = DEFAULT_PROFILE
    device_spec: DeviceSpec | None = field(default=None)

    def __post_init__(self) -> None:
        self._check_geometry()
        self._check_device()
        check_probabilities(self, "w", "c1", "c2")
        check_choice("coupling", self.coupling, ("async", "ring", "coupled"))
        check_init_policy(self.init)


def _make_update_kernel(w: float, c1: float, c2: float, coupling: str) -> Kernel:
    """The position-update kernel applying Eq. (3) per thread.

    The social attractor depends on the coupling: the thread's own best
    ("async", an isolated swarm of one, matching the SA-style asynchronous
    parallelization), the best personal-best among the thread's ring
    neighbours ("ring", lbest topology), or the reduced swarm best
    ("coupled").
    """

    def _cost(ctx: ThreadContext, seqs, pbest, pbest_fit, gbest) -> KernelCost:
        n = seqs.array.shape[1]
        # Three gated operators; each crossover builds two permutation-rank
        # tables and performs data-dependent scattered reads/writes over the
        # whole sequence -- on the modeled Fermi part this costs several
        # times the (streaming) fitness pass.  The constant is calibrated so
        # that a DPSO generation is ~4.5x an SA generation, which is the
        # ratio implied by the paper's Table III (SA_1000 speedup 111 vs
        # DPSO_1000 speedup 24.6 against the same CPU reference at n=1000).
        return KernelCost(
            cycles_per_thread=400.0 + 3900.0 * n,
            global_bytes_per_thread=10 * 4.0 * n,
        )

    @kernel("dpso_update", registers=40, cost=_cost)
    def dpso_update(ctx: ThreadContext, seqs, pbest, pbest_fit, gbest) -> None:
        """Apply ``c2 (+) F3(c1 (+) F2(w (+) F1(x), pbest), gbest)``."""
        s = ctx.total_threads
        tids = ctx.thread_ids
        rng = ctx.rng
        x = seqs.array[:s]
        mask_w = rng.uniform(tids) < w
        x = batched_random_swap(rng, tids, x, mask_w)
        mask_c1 = rng.uniform(tids) < c1
        x = batched_one_point_crossover(rng, tids, x, pbest.array[:s], mask_c1)
        mask_c2 = rng.uniform(tids) < c2
        if coupling == "coupled":
            g = np.broadcast_to(gbest.array, x.shape)
        elif coupling == "ring":
            # lbest: the best pbest among ring neighbours {t-1, t, t+1}.
            fit = pbest_fit.array[:s]
            left = np.roll(np.arange(s), 1)
            right = np.roll(np.arange(s), -1)
            stacked = np.stack((fit[left], fit, fit[right]))
            choice = np.argmin(stacked, axis=0)
            neighbour = np.where(
                choice == 0, left, np.where(choice == 1, np.arange(s), right)
            )
            g = pbest.array[:s][neighbour]
        else:
            g = pbest.array[:s]
        x = batched_two_point_crossover(rng, tids, x, g, mask_c2)
        seqs.array[:s] = x

    return dpso_update


def _make_pbest_kernel() -> Kernel:
    """Per-thread personal-best update kernel."""

    def _cost(ctx: ThreadContext, seqs, fitness, pbest, pbest_fit) -> KernelCost:
        n = seqs.array.shape[1]
        return KernelCost(
            cycles_per_thread=30.0 + 4.0 * n,
            global_bytes_per_thread=2 * 8.0 + 2 * 4.0 * n,
        )

    @kernel("dpso_pbest", registers=16, cost=_cost)
    def dpso_pbest(ctx: ThreadContext, seqs, fitness, pbest, pbest_fit) -> None:
        """``pbest[t] = seqs[t]`` where the new fitness improves."""
        s = ctx.total_threads
        better = fitness.array[:s] < pbest_fit.array[:s]
        pbest.array[:s][better] = seqs.array[:s][better]
        pbest_fit.array[:s][better] = fitness.array[:s][better]

    return dpso_pbest


class ParallelDPSOStrategy(EnsembleStrategy):
    """The DPSO-specific half of the ensemble driver.

    One particle per thread; per generation the update/fitness/pbest/
    reduction pipeline of Section VII.  The elitist best buffers double as
    the swarm best (``gbest``) read back at the end.
    """

    config: ParallelDPSOConfig

    algorithm = "parallel_dpso"

    @property
    def shardable(self) -> bool:
        # "ring" reads neighbour pbests across the whole ensemble (the ring
        # wraps over shard boundaries) and "coupled" broadcasts the reduced
        # swarm best; only the paper's asynchronous mode is chain-local.
        return self.config.coupling == "async"

    def allocate(
        self,
        backend: ExecutionBackend,
        adapter: ProblemAdapter,
        cfg: LaunchConfig,
    ) -> None:
        config = self.config
        pop, n = config.population, adapter.n
        self.seqs = backend.alloc((pop, n), np.int32, "particles")
        self.fitness = backend.alloc(pop, np.float64, "fitness")
        self.pbest = backend.alloc((pop, n), np.int32, "pbest")
        self.pbest_fit = backend.alloc(pop, np.float64, "pbest_fitness")
        self.best_seq = backend.alloc(n, np.int32, "gbest")
        self.best_energy = backend.alloc(1, np.float64, "gbest_fitness")
        self.result = backend.alloc(2, np.float64, "reduction_result")

        self.fitness_kernel = adapter.make_fitness_kernel(config.use_texture)
        self.update_kernel = _make_update_kernel(
            config.w, config.c1, config.c2, config.coupling
        )
        self.pbest_kernel = _make_pbest_kernel()
        self.reduction_kernel = make_elitist_reduction_kernel()

    def _launch_fitness(self, backend, cfg) -> None:
        backend.launch(
            self.fitness_kernel, cfg, self.seqs, *backend.fitness_buffers(),
            self.fitness,
        )

    def initialize(self, backend: ExecutionBackend, cfg: LaunchConfig) -> None:
        # Initialization: evaluate, seed pbest; gbest via device-side elitism.
        self.best_energy.array[0] = np.inf
        self._launch_fitness(backend, cfg)
        self.pbest.array[:] = self.seqs.array
        self.pbest_fit.array[:] = self.fitness.array
        backend.launch(
            self.reduction_kernel, cfg, self.pbest_fit, self.pbest,
            self.best_energy, self.best_seq, self.result,
        )

    def generation(
        self, backend: ExecutionBackend, cfg: LaunchConfig, it: int
    ) -> None:
        backend.launch(
            self.update_kernel, cfg, self.seqs, self.pbest, self.pbest_fit,
            self.best_seq,
        )
        self._launch_fitness(backend, cfg)
        backend.launch(
            self.pbest_kernel, cfg, self.seqs, self.fitness, self.pbest,
            self.pbest_fit,
        )
        backend.launch(
            self.reduction_kernel, cfg, self.pbest_fit, self.pbest,
            self.best_energy, self.best_seq, self.result,
        )

    def params(self) -> dict:
        return {"algorithm": self.algorithm, **asdict(self.config)}


def parallel_dpso(
    instance: CDDInstance | UCDDCPInstance,
    config: ParallelDPSOConfig = ParallelDPSOConfig(),
    backend: str | ExecutionBackend = "gpusim",
) -> SolveResult:
    """Run the GPU-parallel DPSO over the chosen execution backend."""
    return run_ensemble(instance, ParallelDPSOStrategy(config), backend)
