"""GPU-parallel Discrete PSO (Section VII of the paper).

"The parallel implementation of the DPSO algorithm on the GPU is carried
out in the asynchronous manner, as explained for the SA": like the
asynchronous SA, every CUDA thread evolves *independently* -- one particle
per thread whose cognitive and social attractors are its own best position
-- and the reduction selects the overall best only at the end.  This is the
``coupling="async"`` default, and it reproduces the paper's observation that
DPSO deteriorates badly as the job count grows (an isolated particle only
intensifies around its own history).

As extensions, ``coupling="coupled"`` turns the ensemble into a genuine
single swarm (the per-generation reduction feeds the swarm best ``g(t)``
into every thread's two-point crossover), and ``coupling="ring"`` is the
classic lbest topology in between: thread ``t``'s social attractor is the
best personal-best among its ring neighbours ``{t-1, t, t+1}`` -- locality
that a real CUDA kernel gets almost for free from adjacent threads.  The
ablation bench contrasts the couplings (information flow is what rescues
DPSO at large ``n``).

Per-generation kernel pipeline (both modes):

    update (F1/F2/F3 with per-thread cuRAND gates) -> fitness ->
    pbest update -> reduction

Everything else (data staging, constant memory, modeled timing, the two
host<->device transfers) matches the SA driver.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.results import SolveResult
from repro.gpusim.device import GEFORCE_GT_560M, Device, DeviceSpec
from repro.initialization import initial_population
from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel
from repro.gpusim.launch import Dim3, LaunchConfig
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import (
    make_cdd_fitness_kernel,
    make_ucddcp_fitness_kernel,
)
from repro.kernels.reduction_kernel import make_elitist_reduction_kernel
from repro.permutation import (
    batched_one_point_crossover,
    batched_random_swap,
    batched_two_point_crossover,
)
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence

__all__ = ["ParallelDPSOConfig", "parallel_dpso"]


@dataclass(frozen=True)
class ParallelDPSOConfig:
    """Configuration of the parallel DPSO (one particle per thread)."""

    iterations: int = 1000
    grid_size: int = 4
    block_size: int = 192
    w: float = 0.9
    c1: float = 0.8
    c2: float = 0.8
    coupling: str = "async"  # "async" (paper) | "ring" | "coupled"
    seed: int = 0
    record_history: bool = False
    # Initial population policy: "random" (paper default) or "vshape".
    init: str = "random"
    # Route read-only gathers in the fitness kernel through the modeled
    # texture cache (the paper's future-work item).
    use_texture: bool = False
    device_spec: DeviceSpec = field(default=GEFORCE_GT_560M)

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.grid_size < 1 or self.block_size < 1:
            raise ValueError("grid and block sizes must be positive")
        for name in ("w", "c1", "c2"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must lie in [0, 1], got {v}")
        if self.coupling not in ("async", "ring", "coupled"):
            raise ValueError(f"unknown coupling {self.coupling!r}")
        if self.init not in ("random", "vshape"):
            raise ValueError(f"unknown init policy {self.init!r}")

    @property
    def population(self) -> int:
        """Number of particles (threads)."""
        return self.grid_size * self.block_size


def _make_update_kernel(w: float, c1: float, c2: float, coupling: str) -> Kernel:
    """The position-update kernel applying Eq. (3) per thread.

    The social attractor depends on the coupling: the thread's own best
    ("async", an isolated swarm of one, matching the SA-style asynchronous
    parallelization), the best personal-best among the thread's ring
    neighbours ("ring", lbest topology), or the reduced swarm best
    ("coupled").
    """

    def _cost(ctx: ThreadContext, seqs, pbest, pbest_fit, gbest) -> KernelCost:
        n = seqs.array.shape[1]
        # Three gated operators; each crossover builds two permutation-rank
        # tables and performs data-dependent scattered reads/writes over the
        # whole sequence -- on the modeled Fermi part this costs several
        # times the (streaming) fitness pass.  The constant is calibrated so
        # that a DPSO generation is ~4.5x an SA generation, which is the
        # ratio implied by the paper's Table III (SA_1000 speedup 111 vs
        # DPSO_1000 speedup 24.6 against the same CPU reference at n=1000).
        return KernelCost(
            cycles_per_thread=400.0 + 3900.0 * n,
            global_bytes_per_thread=10 * 4.0 * n,
        )

    @kernel("dpso_update", registers=40, cost=_cost)
    def dpso_update(ctx: ThreadContext, seqs, pbest, pbest_fit, gbest) -> None:
        """Apply ``c2 (+) F3(c1 (+) F2(w (+) F1(x), pbest), gbest)``."""
        s = ctx.total_threads
        tids = ctx.thread_ids
        rng = ctx.rng
        x = seqs.array[:s]
        mask_w = rng.uniform(tids) < w
        x = batched_random_swap(rng, tids, x, mask_w)
        mask_c1 = rng.uniform(tids) < c1
        x = batched_one_point_crossover(rng, tids, x, pbest.array[:s], mask_c1)
        mask_c2 = rng.uniform(tids) < c2
        if coupling == "coupled":
            g = np.broadcast_to(gbest.array, x.shape)
        elif coupling == "ring":
            # lbest: the best pbest among ring neighbours {t-1, t, t+1}.
            fit = pbest_fit.array[:s]
            left = np.roll(np.arange(s), 1)
            right = np.roll(np.arange(s), -1)
            stacked = np.stack((fit[left], fit, fit[right]))
            choice = np.argmin(stacked, axis=0)
            neighbour = np.where(
                choice == 0, left, np.where(choice == 1, np.arange(s), right)
            )
            g = pbest.array[:s][neighbour]
        else:
            g = pbest.array[:s]
        x = batched_two_point_crossover(rng, tids, x, g, mask_c2)
        seqs.array[:s] = x

    return dpso_update


def _make_pbest_kernel() -> Kernel:
    """Per-thread personal-best update kernel."""

    def _cost(ctx: ThreadContext, seqs, fitness, pbest, pbest_fit) -> KernelCost:
        n = seqs.array.shape[1]
        return KernelCost(
            cycles_per_thread=30.0 + 4.0 * n,
            global_bytes_per_thread=2 * 8.0 + 2 * 4.0 * n,
        )

    @kernel("dpso_pbest", registers=16, cost=_cost)
    def dpso_pbest(ctx: ThreadContext, seqs, fitness, pbest, pbest_fit) -> None:
        """``pbest[t] = seqs[t]`` where the new fitness improves."""
        s = ctx.total_threads
        better = fitness.array[:s] < pbest_fit.array[:s]
        pbest.array[:s][better] = seqs.array[:s][better]
        pbest_fit.array[:s][better] = fitness.array[:s][better]

    return dpso_pbest


def parallel_dpso(
    instance: CDDInstance | UCDDCPInstance,
    config: ParallelDPSOConfig = ParallelDPSOConfig(),
) -> SolveResult:
    """Run the GPU-parallel DPSO on the simulated device."""
    n = instance.n
    is_ucddcp = isinstance(instance, UCDDCPInstance)
    pop = config.population
    host_rng = np.random.default_rng(config.seed)

    start_wall = time.perf_counter()
    device = Device(spec=config.device_spec, seed=config.seed)
    data = DeviceProblemData(device, instance)

    seqs = device.malloc((pop, n), np.int32, "particles")
    fitness = device.malloc(pop, np.float64, "fitness")
    pbest = device.malloc((pop, n), np.int32, "pbest")
    pbest_fit = device.malloc(pop, np.float64, "pbest_fitness")
    gbest = device.malloc(n, np.int32, "gbest")
    gbest_fit = device.malloc(1, np.float64, "gbest_fitness")
    result = device.malloc(2, np.float64, "reduction_result")

    init = initial_population(
        instance, pop, host_rng, config.init
    ).astype(np.int32)
    device.memcpy_htod(seqs, init)

    cfg = LaunchConfig(grid=Dim3(x=config.grid_size), block=Dim3(x=config.block_size))
    fitness_kernel = (
        make_ucddcp_fitness_kernel(config.use_texture)
        if is_ucddcp
        else make_cdd_fitness_kernel(config.use_texture)
    )
    update_kernel = _make_update_kernel(
        config.w, config.c1, config.c2, config.coupling
    )
    pbest_kernel = _make_pbest_kernel()
    reduction_kernel = make_elitist_reduction_kernel()

    def launch_fitness() -> None:
        if is_ucddcp:
            device.launch(fitness_kernel, cfg, seqs, data.p, data.m, data.a,
                          data.b, data.g, fitness)
        else:
            device.launch(fitness_kernel, cfg, seqs, data.p, data.a, data.b,
                          fitness)

    # Initialization: evaluate, seed pbest; gbest via device-side elitism.
    gbest_fit.array[0] = np.inf
    launch_fitness()
    pbest.array[:] = seqs.array
    pbest_fit.array[:] = fitness.array
    device.launch(
        reduction_kernel, cfg, pbest_fit, pbest, gbest_fit, gbest, result
    )

    history = np.empty(config.iterations) if config.record_history else None

    for it in range(config.iterations):
        device.launch(update_kernel, cfg, seqs, pbest, pbest_fit, gbest)
        launch_fitness()
        device.launch(pbest_kernel, cfg, seqs, fitness, pbest, pbest_fit)
        device.launch(
            reduction_kernel, cfg, pbest_fit, pbest, gbest_fit, gbest, result
        )
        device.synchronize()
        if history is not None:
            history[it] = gbest_fit.array[0]

    device.synchronize()
    final_seq = device.memcpy_dtoh(gbest).astype(np.intp)
    _ = device.memcpy_dtoh(gbest_fit)
    wall = time.perf_counter() - start_wall

    schedule = (
        optimize_ucddcp_sequence(instance, final_seq)
        if is_ucddcp
        else optimize_cdd_sequence(instance, final_seq)
    )
    params = {"algorithm": "parallel_dpso", **asdict(config)}
    params["device_spec"] = config.device_spec.name
    return SolveResult(
        schedule=schedule,
        objective=schedule.objective,
        best_sequence=final_seq,
        evaluations=(config.iterations + 1) * pop,
        wall_time_s=wall,
        modeled_device_time_s=device.host_time,
        modeled_kernel_time_s=device.profiler.kernel_time(),
        modeled_memcpy_time_s=device.profiler.memcpy_time(),
        history=history,
        params=params,
    )
