"""GPU-parallel Simulated Annealing (Sections V and VI of the paper).

**Asynchronous variant** (the paper's main algorithm): every CUDA thread
runs an independent SA chain -- 4 blocks x 192 threads = 768 chains by
default.  Each generation launches the four kernels back to back on the
device stream:

    perturbation -> fitness -> acceptance -> reduction

followed by a host-side ``cudaDeviceSynchronize``.  The due date and job
count live in constant memory; penalties are staged per block into shared
memory inside the fitness kernel; cuRAND-style per-thread streams feed the
perturbation and acceptance kernels; the reduction kernel maintains the
global best with an atomic minimum.  Host<->device traffic happens exactly
twice (Figure 9): instance data and initial sequences in, the best solution
out -- and both transfers are charged to the modeled runtime, as the paper's
speedup figures include them.

**Synchronous variant** (Ferreiro et al., Section V-B): all chains run a
constant-temperature Markov segment of length ``M``; at the segment
boundary the best state is reduced and broadcast to every chain for the
next temperature level.  The paper rejects this variant for premature
convergence -- the ablation bench reproduces that observation.

**Domain-decomposition variant** (Ferreiro et al.'s second strategy,
Section V): the sequence space is partitioned by the job in the first
position -- chain ``t`` only explores sequences starting with job
``t mod n`` (the perturbation never touches position 0).  The paper calls
this strategy "ineffective for a job size of 50 or more" because fixing one
position barely shrinks the (n-1)! subdomain; the strategy ablation
reproduces exactly that.

The host program (device setup, generation loop, transfers, result
assembly) lives in :func:`repro.core.engine.driver.run_ensemble`; this
module contributes only the SA-specific state and kernel pipeline, and the
``backend`` argument picks the execution backend (``"gpusim"`` for modeled
timings, ``"vectorized"`` for the same trajectory without the device
model).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.cooling import (
    DEFAULT_COOLING_RATE,
    estimate_initial_temperature,
)
from repro.core.engine.adapters import ProblemAdapter
from repro.core.engine.backends import ExecutionBackend
from repro.core.engine.config import (
    DeviceSelectionMixin,
    EnsembleGeometryMixin,
    NeighborhoodConfigMixin,
    check_choice,
    check_init_policy,
)
from repro.core.engine.driver import EnsembleStrategy, run_ensemble
from repro.core.results import SolveResult
from repro.gpusim.device import DeviceSpec
from repro.gpusim.profiles import DEFAULT_PROFILE
from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel
from repro.gpusim.launch import LaunchConfig
from repro.kernels.acceptance import make_acceptance_kernel
from repro.kernels.perturbation import make_perturbation_kernel
from repro.kernels.reduction_kernel import make_elitist_reduction_kernel
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["ParallelSAConfig", "ParallelSAStrategy", "parallel_sa"]


@dataclass(frozen=True)
class ParallelSAConfig(
    EnsembleGeometryMixin, NeighborhoodConfigMixin, DeviceSelectionMixin
):
    """Configuration of the parallel SA (paper defaults).

    ``grid_size * block_size`` threads run one chain each; the paper fixes
    the grid at 4 blocks and found 192 threads per block to work best on the
    GT 560M.
    """

    iterations: int = 1000
    grid_size: int = 4
    block_size: int = 192
    cooling_rate: float = DEFAULT_COOLING_RATE
    pert_size: int = 4
    # How often the Pert positions are re-sampled.  Section VI-B describes
    # the neighborhood as a freshly selected random sub-sequence, i.e. a
    # refresh every iteration (the default); Section VI's "after every 10 SA
    # iterations" reading is available as position_refresh=10 and is
    # contrasted in the ablation bench (it mixes far too slowly at large n).
    position_refresh: int = 1
    seed: int = 0
    t0: float | None = None
    t0_samples: int = 5000
    variant: str = "async"  # "async" | "sync" | "domain"
    sync_segment_length: int = 10  # Markov segment M of the sync variant
    record_history: bool = False
    # Initial population policy: "random" (paper default) or "vshape"
    # (extension; see repro.initialization).
    init: str = "random"
    # Route read-only gathers in the fitness kernel through the modeled
    # texture cache (the paper's future-work item).
    use_texture: bool = False
    # Hybrid extension: descend from the final best sequence with the
    # batched adjacent-swap local search (repro.seqopt.local_search).
    final_polish: bool = False
    # Modeled device: a registered profile name, or an explicit spec
    # (e.g. a with_overrides copy) that takes precedence when set.
    device_profile: str = DEFAULT_PROFILE
    device_spec: DeviceSpec | None = field(default=None)

    def __post_init__(self) -> None:
        self._check_geometry()
        self._check_neighborhood()
        self._check_device()
        check_choice("variant", self.variant, ("async", "sync", "domain"))
        if self.sync_segment_length < 1:
            raise ValueError("sync_segment_length must be positive")
        check_init_policy(self.init)


def _make_broadcast_kernel() -> Kernel:
    """Broadcast one thread's state to all threads (sync variant only)."""

    def _cost(ctx: ThreadContext, seqs, energy, result) -> KernelCost:
        n = seqs.array.shape[1]
        return KernelCost(
            cycles_per_thread=20.0 + 8.0 * n,
            global_bytes_per_thread=2 * 4.0 * n + 8.0,
        )

    @kernel("broadcast_best", registers=16, cost=_cost)
    def broadcast_best(ctx: ThreadContext, seqs, energy, result) -> None:
        """Set every thread's state to the reduced best state."""
        s = ctx.total_threads
        src = int(result.array[1])
        seqs.array[:s] = seqs.array[src]
        energy.array[:s] = energy.array[src]

    return broadcast_best


class ParallelSAStrategy(EnsembleStrategy):
    """The SA-specific half of the ensemble driver.

    One chain per thread; per generation the four-kernel pipeline of
    Section VI (perturbation -> fitness -> acceptance -> elitist reduction),
    plus the variant-specific temperature bookkeeping and the sync
    variant's segment-boundary broadcast.
    """

    config: ParallelSAConfig

    @property
    def algorithm(self) -> str:
        return f"parallel_sa_{self.config.variant}"

    @property
    def shardable(self) -> bool:
        # The sync variant's segment-boundary broadcast copies one chain's
        # state to every chain -- a cross-chain read no shard can see.
        return self.config.variant != "sync"

    def prepare(
        self, adapter: ProblemAdapter, host_rng: np.random.Generator
    ) -> None:
        config = self.config
        self.adapter = adapter
        n = adapter.n
        self.min_position = 1 if config.variant == "domain" else 0
        self.pert = min(config.pert_size, n - self.min_position)
        if self.pert < 2:
            raise ValueError(
                "domain decomposition needs at least 3 jobs (2 free positions)"
            )
        self.t0 = (
            config.t0
            if config.t0 is not None
            else estimate_initial_temperature(
                adapter.instance, config.t0_samples, host_rng
            )
        )
        self.temperature = self.t0
        self.sync_countdown = config.sync_segment_length

    def allocate(
        self,
        backend: ExecutionBackend,
        adapter: ProblemAdapter,
        cfg: LaunchConfig,
    ) -> None:
        config = self.config
        pop, n = config.population, adapter.n
        self.seqs = backend.alloc((pop, n), np.int32, "sequences")
        self.cand = backend.alloc((pop, n), np.int32, "candidates")
        self.energy = backend.alloc(pop, np.float64, "energy")
        self.cand_energy = backend.alloc(pop, np.float64, "cand_energy")
        self.positions = backend.alloc((pop, self.pert), np.int64,
                                       "pert_positions")
        self.best_energy = backend.alloc(1, np.float64, "best_energy")
        self.best_seq = backend.alloc(n, np.int32, "best_sequence")
        self.result = backend.alloc(2, np.float64, "reduction_result")

        self.fitness_kernel = adapter.make_fitness_kernel(config.use_texture)
        self.perturbation_kernel = make_perturbation_kernel()
        self.acceptance_kernel = make_acceptance_kernel()
        self.reduction_kernel = make_elitist_reduction_kernel()
        self.broadcast_kernel = (
            _make_broadcast_kernel() if config.variant == "sync" else None
        )

    def prepare_population(self, init_seqs: np.ndarray) -> np.ndarray:
        if self.config.variant == "domain":
            # Partition the space by the first job: chain t explores the
            # subdomain of sequences starting with job t mod n.
            pop, n = init_seqs.shape
            first = (np.arange(pop) % n).astype(np.int32)
            for t in range(pop):
                row = init_seqs[t]
                swap_idx = int(np.nonzero(row == first[t])[0][0])
                row[0], row[swap_idx] = row[swap_idx], row[0]
        return init_seqs

    def _launch_fitness(self, backend, cfg, seq_buf, out_buf) -> None:
        backend.launch(
            self.fitness_kernel, cfg, seq_buf, *backend.fitness_buffers(),
            out_buf,
        )

    def initialize(self, backend: ExecutionBackend, cfg: LaunchConfig) -> None:
        # Initial evaluation and best tracking (device-side elitism).
        self.best_energy.array[0] = np.inf
        self._launch_fitness(backend, cfg, self.seqs, self.energy)
        backend.launch(
            self.reduction_kernel, cfg, self.energy, self.seqs,
            self.best_energy, self.best_seq, self.result,
        )

    def generation(
        self, backend: ExecutionBackend, cfg: LaunchConfig, it: int
    ) -> None:
        config = self.config
        refresh = it % config.position_refresh == 0
        backend.launch(
            self.perturbation_kernel, cfg, self.seqs, self.cand,
            self.positions, refresh, self.min_position,
        )
        self._launch_fitness(backend, cfg, self.cand, self.cand_energy)
        backend.launch(
            self.acceptance_kernel, cfg, self.seqs, self.cand, self.energy,
            self.cand_energy, self.temperature,
        )
        backend.launch(
            self.reduction_kernel, cfg, self.energy, self.seqs,
            self.best_energy, self.best_seq, self.result,
        )

        if config.variant != "sync":
            self.temperature *= config.cooling_rate
        else:
            self.sync_countdown -= 1
            if self.sync_countdown == 0:
                # Segment boundary: share the best state with every chain
                # and move to the next temperature level.
                assert self.broadcast_kernel is not None
                backend.launch(
                    self.broadcast_kernel, cfg, self.seqs, self.energy,
                    self.result,
                )
                self.temperature *= config.cooling_rate
                self.sync_countdown = config.sync_segment_length

    def finalize(self, final_seq: np.ndarray) -> tuple[np.ndarray, int]:
        if not self.config.final_polish:
            return final_seq, 0
        from repro.seqopt.local_search import local_search

        polished = local_search(self.adapter.instance, final_seq, "adjacent")
        return polished.sequence, polished.evaluations

    def params(self) -> dict:
        return {
            "algorithm": self.algorithm,
            **asdict(self.config),
            "t0": self.t0,
        }


def parallel_sa(
    instance: CDDInstance | UCDDCPInstance,
    config: ParallelSAConfig = ParallelSAConfig(),
    backend: str | ExecutionBackend = "gpusim",
) -> SolveResult:
    """Run the GPU-parallel SA over the chosen execution backend.

    Returns the best schedule over all chains and generations, with the
    measured host wall time; on the ``gpusim`` backend also the modeled
    device time (kernels plus all host<->device transfers).
    """
    return run_ensemble(instance, ParallelSAStrategy(config), backend)
