"""GPU-parallel Simulated Annealing (Sections V and VI of the paper).

**Asynchronous variant** (the paper's main algorithm): every CUDA thread
runs an independent SA chain -- 4 blocks x 192 threads = 768 chains by
default.  Each generation launches the four kernels back to back on the
device stream:

    perturbation -> fitness -> acceptance -> reduction

followed by a host-side ``cudaDeviceSynchronize``.  The due date and job
count live in constant memory; penalties are staged per block into shared
memory inside the fitness kernel; cuRAND-style per-thread streams feed the
perturbation and acceptance kernels; the reduction kernel maintains the
global best with an atomic minimum.  Host<->device traffic happens exactly
twice (Figure 9): instance data and initial sequences in, the best solution
out -- and both transfers are charged to the modeled runtime, as the paper's
speedup figures include them.

**Synchronous variant** (Ferreiro et al., Section V-B): all chains run a
constant-temperature Markov segment of length ``M``; at the segment
boundary the best state is reduced and broadcast to every chain for the
next temperature level.  The paper rejects this variant for premature
convergence -- the ablation bench reproduces that observation.

**Domain-decomposition variant** (Ferreiro et al.'s second strategy,
Section V): the sequence space is partitioned by the job in the first
position -- chain ``t`` only explores sequences starting with job
``t mod n`` (the perturbation never touches position 0).  The paper calls
this strategy "ineffective for a job size of 50 or more" because fixing one
position barely shrinks the (n-1)! subdomain; the strategy ablation
reproduces exactly that.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.cooling import (
    DEFAULT_COOLING_RATE,
    estimate_initial_temperature,
)
from repro.core.results import SolveResult
from repro.gpusim.device import GEFORCE_GT_560M, Device, DeviceSpec
from repro.initialization import initial_population
from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel
from repro.gpusim.launch import Dim3, LaunchConfig
from repro.kernels.acceptance import make_acceptance_kernel
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import (
    make_cdd_fitness_kernel,
    make_ucddcp_fitness_kernel,
)
from repro.kernels.perturbation import make_perturbation_kernel
from repro.kernels.reduction_kernel import make_elitist_reduction_kernel
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence

__all__ = ["ParallelSAConfig", "parallel_sa"]


@dataclass(frozen=True)
class ParallelSAConfig:
    """Configuration of the parallel SA (paper defaults).

    ``grid_size * block_size`` threads run one chain each; the paper fixes
    the grid at 4 blocks and found 192 threads per block to work best on the
    GT 560M.
    """

    iterations: int = 1000
    grid_size: int = 4
    block_size: int = 192
    cooling_rate: float = DEFAULT_COOLING_RATE
    pert_size: int = 4
    # How often the Pert positions are re-sampled.  Section VI-B describes
    # the neighborhood as a freshly selected random sub-sequence, i.e. a
    # refresh every iteration (the default); Section VI's "after every 10 SA
    # iterations" reading is available as position_refresh=10 and is
    # contrasted in the ablation bench (it mixes far too slowly at large n).
    position_refresh: int = 1
    seed: int = 0
    t0: float | None = None
    t0_samples: int = 5000
    variant: str = "async"  # "async" | "sync" | "domain"
    sync_segment_length: int = 10  # Markov segment M of the sync variant
    record_history: bool = False
    # Initial population policy: "random" (paper default) or "vshape"
    # (extension; see repro.initialization).
    init: str = "random"
    # Route read-only gathers in the fitness kernel through the modeled
    # texture cache (the paper's future-work item).
    use_texture: bool = False
    # Hybrid extension: descend from the final best sequence with the
    # batched adjacent-swap local search (repro.seqopt.local_search).
    final_polish: bool = False
    device_spec: DeviceSpec = field(default=GEFORCE_GT_560M)

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.grid_size < 1 or self.block_size < 1:
            raise ValueError("grid and block sizes must be positive")
        if self.pert_size < 2:
            raise ValueError("perturbation size must be at least 2")
        if self.position_refresh < 1:
            raise ValueError("position_refresh must be at least 1")
        if self.variant not in ("async", "sync", "domain"):
            raise ValueError(f"unknown variant {self.variant!r}")
        if self.sync_segment_length < 1:
            raise ValueError("sync_segment_length must be positive")
        if self.init not in ("random", "vshape"):
            raise ValueError(f"unknown init policy {self.init!r}")

    @property
    def population(self) -> int:
        """Total number of chains (threads)."""
        return self.grid_size * self.block_size


def _make_broadcast_kernel() -> Kernel:
    """Broadcast one thread's state to all threads (sync variant only)."""

    def _cost(ctx: ThreadContext, seqs, energy, result) -> KernelCost:
        n = seqs.array.shape[1]
        return KernelCost(
            cycles_per_thread=20.0 + 8.0 * n,
            global_bytes_per_thread=2 * 4.0 * n + 8.0,
        )

    @kernel("broadcast_best", registers=16, cost=_cost)
    def broadcast_best(ctx: ThreadContext, seqs, energy, result) -> None:
        """Set every thread's state to the reduced best state."""
        s = ctx.total_threads
        src = int(result.array[1])
        seqs.array[:s] = seqs.array[src]
        energy.array[:s] = energy.array[src]

    return broadcast_best


def parallel_sa(
    instance: CDDInstance | UCDDCPInstance,
    config: ParallelSAConfig = ParallelSAConfig(),
) -> SolveResult:
    """Run the GPU-parallel SA on the simulated device.

    Returns the best schedule over all chains and generations, with both the
    measured host wall time and the modeled device time (kernels plus all
    host<->device transfers).
    """
    n = instance.n
    is_ucddcp = isinstance(instance, UCDDCPInstance)
    min_position = 1 if config.variant == "domain" else 0
    pert = min(config.pert_size, n - min_position)
    if pert < 2:
        raise ValueError(
            "domain decomposition needs at least 3 jobs (2 free positions)"
        )
    pop = config.population
    host_rng = np.random.default_rng(config.seed)

    t0 = (
        config.t0
        if config.t0 is not None
        else estimate_initial_temperature(instance, config.t0_samples, host_rng)
    )

    start_wall = time.perf_counter()
    device = Device(spec=config.device_spec, seed=config.seed)
    data = DeviceProblemData(device, instance)

    # Device state -------------------------------------------------------
    seqs = device.malloc((pop, n), np.int32, "sequences")
    cand = device.malloc((pop, n), np.int32, "candidates")
    energy = device.malloc(pop, np.float64, "energy")
    cand_energy = device.malloc(pop, np.float64, "cand_energy")
    positions = device.malloc((pop, pert), np.int64, "pert_positions")
    best_energy = device.malloc(1, np.float64, "best_energy")
    best_seq = device.malloc(n, np.int32, "best_sequence")
    result = device.malloc(2, np.float64, "reduction_result")

    init_seqs = initial_population(
        instance, pop, host_rng, config.init
    ).astype(np.int32)
    if config.variant == "domain":
        # Partition the space by the first job: chain t explores the
        # subdomain of sequences starting with job t mod n.
        first = (np.arange(pop) % n).astype(np.int32)
        for t in range(pop):
            row = init_seqs[t]
            swap_idx = int(np.nonzero(row == first[t])[0][0])
            row[0], row[swap_idx] = row[swap_idx], row[0]
    device.memcpy_htod(seqs, init_seqs)

    cfg = LaunchConfig(grid=Dim3(x=config.grid_size), block=Dim3(x=config.block_size))
    fitness_kernel = (
        make_ucddcp_fitness_kernel(config.use_texture)
        if is_ucddcp
        else make_cdd_fitness_kernel(config.use_texture)
    )
    perturbation_kernel = make_perturbation_kernel()
    acceptance_kernel = make_acceptance_kernel()
    reduction_kernel = make_elitist_reduction_kernel()
    broadcast_kernel = _make_broadcast_kernel() if config.variant == "sync" else None

    def launch_fitness(seq_buf, out_buf) -> None:
        if is_ucddcp:
            device.launch(
                fitness_kernel, cfg, seq_buf, data.p, data.m, data.a,
                data.b, data.g, out_buf,
            )
        else:
            device.launch(fitness_kernel, cfg, seq_buf, data.p, data.a,
                          data.b, out_buf)

    # Initial evaluation and best tracking (device-side elitism).
    best_energy.array[0] = np.inf
    launch_fitness(seqs, energy)
    device.launch(
        reduction_kernel, cfg, energy, seqs, best_energy, best_seq, result
    )

    history = (
        np.empty(config.iterations) if config.record_history else None
    )
    temperature = t0
    sync_countdown = config.sync_segment_length

    for it in range(config.iterations):
        refresh = it % config.position_refresh == 0
        device.launch(
            perturbation_kernel, cfg, seqs, cand, positions, refresh,
            min_position,
        )
        launch_fitness(cand, cand_energy)
        device.launch(
            acceptance_kernel, cfg, seqs, cand, energy, cand_energy, temperature
        )
        device.launch(
            reduction_kernel, cfg, energy, seqs, best_energy, best_seq, result
        )

        if config.variant != "sync":
            temperature *= config.cooling_rate
        else:
            sync_countdown -= 1
            if sync_countdown == 0:
                # Segment boundary: share the best state with every chain
                # and move to the next temperature level.
                assert broadcast_kernel is not None
                device.launch(broadcast_kernel, cfg, seqs, energy, result)
                temperature *= config.cooling_rate
                sync_countdown = config.sync_segment_length

        device.synchronize()
        if history is not None:
            history[it] = best_energy.array[0]

    device.synchronize()
    final_seq = device.memcpy_dtoh(best_seq).astype(np.intp)
    _ = device.memcpy_dtoh(best_energy)
    polish_evals = 0
    if config.final_polish:
        from repro.seqopt.local_search import local_search

        polished = local_search(instance, final_seq, "adjacent")
        final_seq = polished.sequence
        polish_evals = polished.evaluations
    wall = time.perf_counter() - start_wall

    schedule = (
        optimize_ucddcp_sequence(instance, final_seq)
        if is_ucddcp
        else optimize_cdd_sequence(instance, final_seq)
    )
    profiler = device.profiler
    params = {"algorithm": f"parallel_sa_{config.variant}", **asdict(config),
              "t0": t0}
    params["device_spec"] = config.device_spec.name
    return SolveResult(
        schedule=schedule,
        objective=schedule.objective,
        best_sequence=final_seq,
        evaluations=(config.iterations + 1) * pop + polish_evals,
        wall_time_s=wall,
        modeled_device_time_s=device.host_time,
        modeled_kernel_time_s=profiler.kernel_time(),
        modeled_memcpy_time_s=profiler.memcpy_time(),
        history=history,
        params=params,
    )
