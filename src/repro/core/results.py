"""Result records returned by every solver in :mod:`repro.core`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.problems.schedule import Schedule

__all__ = ["SolveResult"]


@dataclass
class SolveResult:
    """Outcome of one metaheuristic run.

    Attributes
    ----------
    schedule:
        The best schedule found, fully reconstructed (optimal completion
        times / compressions for the best sequence).
    objective:
        Its objective value (== ``schedule.objective``).
    best_sequence:
        The best job sequence (permutation of ``0..n-1``).
    evaluations:
        Total number of sequence evaluations performed (ensemble size times
        generations for the parallel algorithms).
    wall_time_s:
        Measured host wall-clock duration of the run (Python time).
    modeled_device_time_s:
        Simulated GT 560M wall time including all host<->device transfers
        (``None`` for CPU-only algorithms).
    modeled_kernel_time_s / modeled_memcpy_time_s:
        Breakdown of the modeled time (``None`` for CPU-only algorithms).
    history:
        Per-generation best objective (only when history recording was
        requested), shape ``(generations,)``.
    params:
        Echo of the solver configuration for provenance.
    """

    schedule: Schedule
    objective: float
    best_sequence: np.ndarray
    evaluations: int
    wall_time_s: float
    modeled_device_time_s: float | None = None
    modeled_kernel_time_s: float | None = None
    modeled_memcpy_time_s: float | None = None
    history: np.ndarray | None = None
    params: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation (schedule flattened to arrays)."""
        return {
            "objective": self.objective,
            "best_sequence": self.best_sequence.tolist(),
            "completion": self.schedule.completion.tolist(),
            "reduction": self.schedule.reduction.tolist(),
            "evaluations": self.evaluations,
            "wall_time_s": self.wall_time_s,
            "modeled_device_time_s": self.modeled_device_time_s,
            "modeled_kernel_time_s": self.modeled_kernel_time_s,
            "modeled_memcpy_time_s": self.modeled_memcpy_time_s,
            "history": None if self.history is None else self.history.tolist(),
            "params": {
                k: (v if isinstance(v, (int, float, str, bool, type(None)))
                    else str(v))
                for k, v in self.params.items()
            },
        }

    def summary(self) -> str:
        """One-line human-readable result summary."""
        timing = f"wall {self.wall_time_s:.3f}s"
        if self.modeled_device_time_s is not None:
            timing += f", modeled GPU {self.modeled_device_time_s:.4f}s"
        return (
            f"objective {self.objective:g} after {self.evaluations} "
            f"evaluations ({timing})"
        )
