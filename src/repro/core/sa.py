"""Serial single-chain Simulated Annealing: the CPU baseline.

This is Algorithm 1 of the paper run as ordinary sequential code -- the
shape of CPU implementation the paper's speedups are measured against.  Two
evaluator backends are available:

* ``backend="numpy"`` -- the scalar O(n) optimizers (NumPy per sequence);
* ``backend="python"`` -- the pure-Python list evaluators of
  :mod:`repro.seqopt.pure_python` (no NumPy in the hot loop).  Use this one
  when *timing* the serial baseline: it is what a straightforward sequential
  implementation costs, without NumPy's per-call overhead distorting small
  ``n``.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.cooling import (
    DEFAULT_COOLING_RATE,
    ExponentialCooling,
    estimate_initial_temperature,
)
from repro.core.results import SolveResult
from repro.initialization import initial_population
from repro.permutation import partial_fisher_yates, sample_distinct_positions
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.cdd_linear import (
    cdd_objective_for_sequence,
    optimize_cdd_sequence,
)
from repro.seqopt.pure_python import cdd_objective_py, ucddcp_objective_py
from repro.seqopt.ucddcp_linear import (
    optimize_ucddcp_sequence,
    ucddcp_objective_for_sequence,
)

__all__ = ["SerialSAConfig", "sa_serial"]


@dataclass(frozen=True)
class SerialSAConfig:
    """Configuration of the serial SA chain (paper defaults)."""

    iterations: int = 1000
    cooling_rate: float = DEFAULT_COOLING_RATE
    pert_size: int = 4
    position_refresh: int = 1  # see ParallelSAConfig.position_refresh
    seed: int = 0
    t0: float | None = None  # None: estimate per [13]
    t0_samples: int = 5000
    backend: str = "numpy"  # "numpy" | "python"
    init: str = "random"  # "random" | "vshape" (see repro.initialization)
    record_history: bool = False

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.pert_size < 2:
            raise ValueError("perturbation size must be at least 2")
        if self.position_refresh < 1:
            raise ValueError("position_refresh must be at least 1")
        if self.backend not in ("numpy", "python"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.init not in ("random", "vshape"):
            raise ValueError(f"unknown init policy {self.init!r}")


def sa_serial(
    instance: CDDInstance | UCDDCPInstance,
    config: SerialSAConfig = SerialSAConfig(),
) -> SolveResult:
    """Run one serial SA chain on ``instance``; returns the best schedule."""
    rng = np.random.default_rng(config.seed)
    n = instance.n
    is_ucddcp = isinstance(instance, UCDDCPInstance)

    if config.backend == "python":
        p = instance.processing.tolist()
        a = instance.alpha.tolist()
        b = instance.beta.tolist()
        d = instance.due_date
        if is_ucddcp:
            m = instance.min_processing.tolist()
            g = instance.gamma.tolist()

            def evaluate(seq: np.ndarray) -> float:
                return ucddcp_objective_py(p, m, a, b, g, d, seq.tolist())

        else:

            def evaluate(seq: np.ndarray) -> float:
                return cdd_objective_py(p, a, b, d, seq.tolist())

    else:
        if is_ucddcp:

            def evaluate(seq: np.ndarray) -> float:
                return ucddcp_objective_for_sequence(instance, seq)

        else:

            def evaluate(seq: np.ndarray) -> float:
                return cdd_objective_for_sequence(instance, seq)

    t0 = (
        config.t0
        if config.t0 is not None
        else estimate_initial_temperature(instance, config.t0_samples, rng)
    )
    cooling = ExponentialCooling(t0=t0, mu=config.cooling_rate)

    start = time.perf_counter()
    state = initial_population(instance, 1, rng, config.init)[0]
    energy = evaluate(state)
    best_seq = state.copy()
    best_energy = energy
    pert = min(config.pert_size, n)
    positions = sample_distinct_positions(rng, n, pert)
    history = np.empty(config.iterations) if config.record_history else None

    temperature = t0
    for it in range(config.iterations):
        if it % config.position_refresh == 0 and it > 0:
            positions = sample_distinct_positions(rng, n, pert)
        candidate = partial_fisher_yates(rng, state, positions)
        cand_energy = evaluate(candidate)
        if temperature <= 0.0:
            accept = cand_energy <= energy
        else:
            accept = (
                math.exp(min((energy - cand_energy) / temperature, 50.0))
                >= rng.random()
            )
        if accept:
            state, energy = candidate, cand_energy
            if energy < best_energy:
                best_energy = energy
                best_seq = state.copy()
        temperature *= config.cooling_rate
        if history is not None:
            history[it] = best_energy
    wall = time.perf_counter() - start

    schedule = (
        optimize_ucddcp_sequence(instance, best_seq)
        if is_ucddcp
        else optimize_cdd_sequence(instance, best_seq)
    )
    return SolveResult(
        schedule=schedule,
        objective=schedule.objective,
        best_sequence=best_seq,
        evaluations=config.iterations + 1,
        wall_time_s=wall,
        history=history,
        params={"algorithm": "sa_serial", **asdict(config), "t0": t0},
    )
