"""Serial single-chain Simulated Annealing: the CPU baseline.

This is Algorithm 1 of the paper run as ordinary sequential code -- the
shape of CPU implementation the paper's speedups are measured against.  Two
evaluator backends are available:

* ``backend="numpy"`` -- the scalar O(n) optimizers (NumPy per sequence);
* ``backend="python"`` -- the pure-Python list evaluators of
  :mod:`repro.seqopt.pure_python` (no NumPy in the hot loop).  Use this one
  when *timing* the serial baseline: it is what a straightforward sequential
  implementation costs, without NumPy's per-call overhead distorting small
  ``n``.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.cooling import (
    DEFAULT_COOLING_RATE,
    ExponentialCooling,
    estimate_initial_temperature,
)
from repro.core.engine.adapters import adapter_for
from repro.core.engine.config import (
    NeighborhoodConfigMixin,
    check_choice,
    check_init_policy,
    check_positive_iterations,
)
from repro.core.engine.driver import assemble_result
from repro.core.results import SolveResult
from repro.initialization import initial_population
from repro.permutation import partial_fisher_yates, sample_distinct_positions
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["SerialSAConfig", "sa_serial"]


@dataclass(frozen=True)
class SerialSAConfig(NeighborhoodConfigMixin):
    """Configuration of the serial SA chain (paper defaults)."""

    iterations: int = 1000
    cooling_rate: float = DEFAULT_COOLING_RATE
    pert_size: int = 4
    position_refresh: int = 1  # see ParallelSAConfig.position_refresh
    seed: int = 0
    t0: float | None = None  # None: estimate per [13]
    t0_samples: int = 5000
    backend: str = "numpy"  # "numpy" | "python"
    init: str = "random"  # "random" | "vshape" (see repro.initialization)
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive_iterations(self.iterations)
        self._check_neighborhood()
        check_choice("backend", self.backend, ("numpy", "python"))
        check_init_policy(self.init)


def sa_serial(
    instance: CDDInstance | UCDDCPInstance,
    config: SerialSAConfig = SerialSAConfig(),
) -> SolveResult:
    """Run one serial SA chain on ``instance``; returns the best schedule."""
    rng = np.random.default_rng(config.seed)
    n = instance.n
    adapter = adapter_for(instance)
    evaluate = adapter.sequence_evaluator(
        pure_python=config.backend == "python"
    )

    t0 = (
        config.t0
        if config.t0 is not None
        else estimate_initial_temperature(instance, config.t0_samples, rng)
    )
    cooling = ExponentialCooling(t0=t0, mu=config.cooling_rate)

    start = time.perf_counter()
    state = initial_population(instance, 1, rng, config.init)[0]
    energy = evaluate(state)
    best_seq = state.copy()
    best_energy = energy
    pert = min(config.pert_size, n)
    positions = sample_distinct_positions(rng, n, pert)
    history = np.empty(config.iterations) if config.record_history else None

    temperature = t0
    for it in range(config.iterations):
        if it % config.position_refresh == 0 and it > 0:
            positions = sample_distinct_positions(rng, n, pert)
        candidate = partial_fisher_yates(rng, state, positions)
        cand_energy = evaluate(candidate)
        if temperature <= 0.0:
            accept = cand_energy <= energy
        else:
            accept = (
                math.exp(min((energy - cand_energy) / temperature, 50.0))
                >= rng.random()
            )
        if accept:
            state, energy = candidate, cand_energy
            if energy < best_energy:
                best_energy = energy
                best_seq = state.copy()
        temperature *= config.cooling_rate
        if history is not None:
            history[it] = best_energy
    wall = time.perf_counter() - start

    return assemble_result(
        adapter,
        best_seq,
        evaluations=config.iterations + 1,
        wall_time_s=wall,
        history=history,
        params={"algorithm": "sa_serial", **asdict(config), "t0": t0},
    )
