"""High-level solver façade over the two-layered approach.

Downstream users interact with these classes: pick a problem instance,
pick a method, get a fully reconstructed optimal-completion-time schedule.

>>> from repro import CDDSolver, biskup_instance
>>> inst = biskup_instance(n=20, h=0.4, k=1)
>>> result = CDDSolver(inst).solve("parallel_sa", iterations=200)
>>> result.objective <= CDDSolver(inst).solve("serial_sa").objective * 1.5
True
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.dpso import DPSOConfig, dpso_serial
from repro.core.evolution import EvolutionStrategyConfig, evolution_strategy
from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.core.results import SolveResult
from repro.core.sa import SerialSAConfig, sa_serial
from repro.core.threshold import ThresholdAcceptingConfig, threshold_accepting
from repro.problems.cdd import CDDInstance
from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.exact import (
    brute_force_cdd,
    brute_force_ucddcp,
    vshape_optimal_cdd,
)

__all__ = ["CDDSolver", "UCDDCPSolver"]


class _BaseSolver:
    """Shared method dispatch for both problem façades."""

    _METHODS = ("parallel_sa", "parallel_dpso", "serial_sa", "serial_dpso",
                "serial_ta", "serial_es", "exact")

    def __init__(self, instance: CDDInstance | UCDDCPInstance) -> None:
        self.instance = instance

    def solve(self, method: str = "parallel_sa", **params: Any) -> SolveResult:
        """Run ``method`` with keyword configuration overrides.

        ``method`` is one of ``parallel_sa`` (default; the paper's main
        algorithm), ``parallel_dpso``, ``serial_sa``, ``serial_dpso``,
        ``serial_ta`` (Threshold Accepting), ``serial_es``
        ((mu+lambda) Evolutionary Strategy -- the [18]-style baselines) or
        ``exact`` (exhaustive / partition DP, small instances only).
        """
        if method == "parallel_sa":
            return parallel_sa(self.instance, ParallelSAConfig(**params))
        if method == "parallel_dpso":
            return parallel_dpso(self.instance, ParallelDPSOConfig(**params))
        if method == "serial_sa":
            return sa_serial(self.instance, SerialSAConfig(**params))
        if method == "serial_dpso":
            return dpso_serial(self.instance, DPSOConfig(**params))
        if method == "serial_ta":
            return threshold_accepting(
                self.instance, ThresholdAcceptingConfig(**params)
            )
        if method == "serial_es":
            return evolution_strategy(
                self.instance, EvolutionStrategyConfig(**params)
            )
        if method == "exact":
            return self._solve_exact(**params)
        raise ValueError(
            f"unknown method {method!r}; choose from {self._METHODS}"
        )

    def _exact_schedule(self, **params: Any) -> Schedule:
        raise NotImplementedError

    def _solve_exact(self, **params: Any) -> SolveResult:
        start = time.perf_counter()
        schedule = self._exact_schedule(**params)
        wall = time.perf_counter() - start
        return SolveResult(
            schedule=schedule,
            objective=schedule.objective,
            best_sequence=np.asarray(schedule.sequence),
            evaluations=0,
            wall_time_s=wall,
            params={"algorithm": "exact", **params},
        )


class CDDSolver(_BaseSolver):
    """Solver façade for the Common Due-Date problem."""

    def __init__(self, instance: CDDInstance) -> None:
        if not isinstance(instance, CDDInstance):
            raise TypeError("CDDSolver requires a CDDInstance")
        super().__init__(instance)

    def _exact_schedule(self, **params: Any) -> Schedule:
        # Prefer the 2^n partition DP when applicable (unrestricted), else
        # fall back to n! brute force.
        inst = self.instance
        assert isinstance(inst, CDDInstance)
        if not inst.is_restrictive and inst.n <= 20:
            return vshape_optimal_cdd(inst)
        return brute_force_cdd(inst)


class UCDDCPSolver(_BaseSolver):
    """Solver façade for the unrestricted controllable-processing problem."""

    def __init__(self, instance: UCDDCPInstance) -> None:
        if not isinstance(instance, UCDDCPInstance):
            raise TypeError("UCDDCPSolver requires a UCDDCPInstance")
        super().__init__(instance)

    def _exact_schedule(self, **params: Any) -> Schedule:
        inst = self.instance
        assert isinstance(inst, UCDDCPInstance)
        return brute_force_ucddcp(inst)
