"""High-level solver façade over the two-layered approach.

Downstream users interact with these classes: pick a problem instance,
pick a method, get a fully reconstructed optimal-completion-time schedule.
Methods are looked up in a registry (:data:`_BaseSolver._METHODS`), so the
set of advertised methods cannot drift from the actual dispatch; parallel
methods additionally accept ``backend="gpusim"|"vectorized"`` to pick the
execution backend of :mod:`repro.core.engine.backends`.

>>> from repro import CDDSolver, biskup_instance
>>> inst = biskup_instance(n=20, h=0.4, k=1)
>>> result = CDDSolver(inst).solve("parallel_sa", iterations=200)
>>> result.objective <= CDDSolver(inst).solve("serial_sa").objective * 1.5
True
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.core.dpso import DPSOConfig, dpso_serial
from repro.core.engine.adapters import adapter_for
from repro.core.engine.backends import (
    DEFAULT_BACKEND,
    DistributedBackend,
    ExecutionBackend,
    MultiprocessBackend,
)
from repro.core.evolution import EvolutionStrategyConfig, evolution_strategy
from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.core.results import SolveResult
from repro.core.sa import SerialSAConfig, sa_serial
from repro.core.threshold import ThresholdAcceptingConfig, threshold_accepting
from repro.problems.cdd import CDDInstance
from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance

__all__ = [
    "CDDSolver",
    "UCDDCPSolver",
    "solver_methods",
    "solver_for",
    "solve_many",
    "method_config_cls",
    "method_accepts_backend",
]


@dataclass(frozen=True)
class _MethodSpec:
    """One registered solve method: how to turn kwargs into a result."""

    run: Callable[["_BaseSolver"], SolveResult]
    #: Whether the method understands the ``backend=`` execution-backend
    #: keyword (only the engine-driven parallel methods do; for
    #: ``serial_sa`` the name ``backend`` is an evaluator config field).
    accepts_backend: bool = False
    #: The configuration dataclass the method's kwargs construct
    #: (``None`` for ``exact``, which takes no configuration).  Exposed
    #: via :func:`method_config_cls` so request validators (the service's
    #: admission layer) can run the config mixins' checks eagerly —
    #: before a job is queued — instead of failing mid-solve.
    config_cls: type | None = None


def _engine_method(config_cls: type, driver: Callable[..., SolveResult]):
    """A parallel method: config + engine driver with backend selection."""

    def run(solver: "_BaseSolver", **params: Any) -> SolveResult:
        backend = params.pop("backend", DEFAULT_BACKEND)
        workers = params.pop("workers", None)
        hosts = params.pop("hosts", None)
        supervision = {
            key: params.pop(key)
            for key in ("task_timeout", "task_retries", "pool_faults")
            if key in params
        }
        distributed = {
            key: params.pop(key)
            for key in (
                "net_faults", "local_fallback", "heartbeat_interval_s",
                "heartbeat_timeout_s", "connect_timeout_s", "io_timeout_s",
                "reconnect_attempts", "backoff_base_s", "backoff_factor",
                "backoff_max_s",
            )
            if key in params
        }
        if backend == "distributed":
            if hosts is None:
                raise ValueError(
                    "backend='distributed' requires "
                    "hosts='HOST[:PORT]:WORKERS,...'"
                )
            if workers is not None:
                raise ValueError(
                    "workers= is fixed by the host topology for "
                    "backend='distributed'; set per-host counts in hosts="
                )
            if "task_timeout" in supervision:
                raise ValueError(
                    "task_timeout is enforced agent-side for "
                    "backend='distributed'; start agents with "
                    "`repro agent --task-timeout`"
                )
            if "pool_faults" in supervision:
                raise ValueError(
                    "pool_faults applies to local worker pools; use "
                    "net_faults for backend='distributed'"
                )
            backend = DistributedBackend(
                hosts=hosts,
                task_retries=supervision.get("task_retries", 0),
                **distributed,
            )
        elif hosts is not None or distributed:
            knob = "hosts=" if hosts is not None else (
                f"{next(iter(distributed))}="
            )
            raise ValueError(
                f"{knob} requires backend='distributed' "
                f"(got backend={backend!r})"
            )
        elif workers is not None or supervision:
            knob = "workers=" if workers is not None else (
                f"{next(iter(supervision))}="
            )
            if backend == "multiprocess":
                backend = MultiprocessBackend(workers=workers, **supervision)
            elif isinstance(backend, ExecutionBackend):
                raise ValueError(
                    f"pass {knob} via the backend instance, not both"
                )
            else:
                raise ValueError(
                    f"{knob} requires backend='multiprocess' "
                    f"(got backend={backend!r})"
                )
        return driver(solver.instance, config_cls(**params), backend=backend)

    return _MethodSpec(run=run, accepts_backend=True, config_cls=config_cls)


def _serial_method(config_cls: type, driver: Callable[..., SolveResult]):
    """A serial baseline: config + driver, host execution only."""

    def run(solver: "_BaseSolver", **params: Any) -> SolveResult:
        return driver(solver.instance, config_cls(**params))

    return _MethodSpec(run=run, config_cls=config_cls)


def _exact_method() -> _MethodSpec:
    def run(solver: "_BaseSolver", **params: Any) -> SolveResult:
        return solver._solve_exact(**params)

    return _MethodSpec(run=run)


class _BaseSolver:
    """Shared method dispatch for both problem façades."""

    _METHODS: dict[str, _MethodSpec] = {
        "parallel_sa": _engine_method(ParallelSAConfig, parallel_sa),
        "parallel_dpso": _engine_method(ParallelDPSOConfig, parallel_dpso),
        "serial_sa": _serial_method(SerialSAConfig, sa_serial),
        "serial_dpso": _serial_method(DPSOConfig, dpso_serial),
        "serial_ta": _serial_method(
            ThresholdAcceptingConfig, threshold_accepting
        ),
        "serial_es": _serial_method(
            EvolutionStrategyConfig, evolution_strategy
        ),
        "exact": _exact_method(),
    }

    def __init__(self, instance: CDDInstance | UCDDCPInstance) -> None:
        self.instance = instance

    def solve(self, method: str = "parallel_sa", **params: Any) -> SolveResult:
        """Run ``method`` with keyword configuration overrides.

        ``method`` is one of ``parallel_sa`` (default; the paper's main
        algorithm), ``parallel_dpso``, ``serial_sa``, ``serial_dpso``,
        ``serial_ta`` (Threshold Accepting), ``serial_es``
        ((mu+lambda) Evolutionary Strategy -- the [18]-style baselines) or
        ``exact`` (exhaustive / partition DP, small instances only).  The
        parallel methods also take ``backend="gpusim"|"vectorized"``.
        """
        spec = self._METHODS.get(method)
        if spec is None:
            raise ValueError(
                f"unknown method {method!r}; choose from "
                f"{tuple(self._METHODS)}"
            )
        return spec.run(self, **params)

    def _exact_schedule(self, **params: Any) -> Schedule:
        return adapter_for(self.instance).exact_schedule()

    def _solve_exact(self, **params: Any) -> SolveResult:
        start = time.perf_counter()
        schedule = self._exact_schedule(**params)
        wall = time.perf_counter() - start
        return SolveResult(
            schedule=schedule,
            objective=schedule.objective,
            best_sequence=np.asarray(schedule.sequence),
            evaluations=0,
            wall_time_s=wall,
            params={"algorithm": "exact", **params},
        )


def solver_methods() -> tuple[str, ...]:
    """Names of all registered solve methods (CLI/choices source)."""
    return tuple(_BaseSolver._METHODS)


def _method_spec(method: str) -> _MethodSpec:
    spec = _BaseSolver._METHODS.get(method)
    if spec is None:
        raise ValueError(
            f"unknown method {method!r}; choose from "
            f"{tuple(_BaseSolver._METHODS)}"
        )
    return spec


def method_config_cls(method: str) -> type | None:
    """The config dataclass ``method``'s kwargs construct (``None``: exact).

    Lets request validators construct the config eagerly — running the
    shared config-validation mixins — so a malformed configuration is a
    submission-time error, not a queued job that fails mid-solve.
    """
    return _method_spec(method).config_cls


def method_accepts_backend(method: str) -> bool:
    """Whether ``method`` takes the ``backend=`` execution-backend kwarg."""
    return _method_spec(method).accepts_backend


class CDDSolver(_BaseSolver):
    """Solver façade for the Common Due-Date problem."""

    def __init__(self, instance: CDDInstance) -> None:
        if not isinstance(instance, CDDInstance):
            raise TypeError("CDDSolver requires a CDDInstance")
        super().__init__(instance)


class UCDDCPSolver(_BaseSolver):
    """Solver façade for the unrestricted controllable-processing problem."""

    def __init__(self, instance: UCDDCPInstance) -> None:
        if not isinstance(instance, UCDDCPInstance):
            raise TypeError("UCDDCPSolver requires a UCDDCPInstance")
        super().__init__(instance)


def solver_for(instance: CDDInstance | UCDDCPInstance) -> _BaseSolver:
    """The matching façade for an instance (the one type-dispatch site
    batch drivers and pool workers share)."""
    if isinstance(instance, CDDInstance):
        return CDDSolver(instance)
    if isinstance(instance, UCDDCPInstance):
        return UCDDCPSolver(instance)
    raise TypeError(
        f"no solver for instance type {type(instance).__name__!r}"
    )


def solve_many(
    instances: "list | tuple",
    method: str = "parallel_sa",
    workers: int | None = None,
    **solve_kwargs: Any,
):
    """Solve many instances with one configuration on a process pool.

    Façade entry point for :func:`repro.pool.batch.solve_many`: results
    come back in input order as ``BatchItem`` records, one per instance,
    with per-instance error isolation — a failed solve fills its slot
    with an error record instead of crashing the batch.
    """
    from repro.pool.batch import solve_many as _pool_solve_many

    return _pool_solve_many(instances, method, workers=workers, **solve_kwargs)
