"""Threshold Accepting: one of the Biskup--Feldmann [18] CPU baselines.

Table III measures speedups against the CPU metaheuristics of Feldmann &
Biskup (2003), who evaluated Evolutionary Strategies, Simulated Annealing
and **Threshold Accepting (TA)** on the OR-library CDD set.  TA (Dueck &
Scheuer) is SA with the stochastic Metropolis rule replaced by a
deterministic one: accept a candidate iff

    E_new - E <= Theta_k

with a threshold ladder ``Theta_k`` decreasing to zero.  We drive the
ladder with the same exponential decay and initial spread estimate as the
SA (``Theta_0`` = std of random-sequence fitness), and reuse the Fisher--
Yates sub-sequence neighborhood, so TA/SA differ exactly in the acceptance
rule -- which is the comparison [18] draws.

Candidates are scored through the adapter's **batched objective** -- one
vectorized O(walkers x n) pass per iteration instead of a Python-level
scalar evaluation per candidate (the ES baseline already works this way).
``walkers`` independent TA chains therefore cost one batched pass each
iteration; the default of 1 reproduces the classic serial chain.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.cooling import (
    DEFAULT_COOLING_RATE,
    estimate_initial_temperature,
)
from repro.core.engine.adapters import adapter_for
from repro.core.engine.config import (
    NeighborhoodConfigMixin,
    check_init_policy,
    check_positive_iterations,
)
from repro.core.engine.driver import assemble_result
from repro.core.results import SolveResult
from repro.initialization import initial_population
from repro.permutation import partial_fisher_yates, sample_distinct_positions
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["ThresholdAcceptingConfig", "threshold_accepting"]


@dataclass(frozen=True)
class ThresholdAcceptingConfig(NeighborhoodConfigMixin):
    """Configuration of the serial Threshold Accepting baseline."""

    iterations: int = 1000
    decay: float = DEFAULT_COOLING_RATE  # threshold ladder decay per step
    pert_size: int = 4
    position_refresh: int = 1
    seed: int = 0
    theta0: float | None = None  # None: estimate like the SA's T0
    theta0_samples: int = 5000
    init: str = "random"
    record_history: bool = False
    #: Independent TA chains evaluated together in one batched objective
    #: pass per iteration (1 = the classic serial chain of [18]).
    walkers: int = 1

    def __post_init__(self) -> None:
        check_positive_iterations(self.iterations)
        if not (0.0 < self.decay < 1.0):
            raise ValueError("decay must lie in (0, 1)")
        self._check_neighborhood()
        check_init_policy(self.init)
        if self.walkers < 1:
            raise ValueError(f"walkers must be >= 1, got {self.walkers}")


def threshold_accepting(
    instance: CDDInstance | UCDDCPInstance,
    config: ThresholdAcceptingConfig = ThresholdAcceptingConfig(),
) -> SolveResult:
    """Run ``config.walkers`` TA chains; returns the best schedule found.

    Every candidate batch is scored with ``adapter.batched_objective`` --
    one vectorized pass over all walkers per iteration.  The threshold
    ladder is shared (all chains sit at the same ``Theta_k``); the chains
    themselves never interact, so walker 0 of a multi-walker run follows
    the exact trajectory of a single-walker run with the same seed.
    """
    rng = np.random.default_rng(config.seed)
    n = instance.n
    walkers = config.walkers
    adapter = adapter_for(instance)

    theta = (
        config.theta0
        if config.theta0 is not None
        else estimate_initial_temperature(instance, config.theta0_samples, rng)
    )

    start = time.perf_counter()
    states = initial_population(instance, walkers, rng, config.init)
    energies = adapter.batched_objective(states)
    best_w = int(np.argmin(energies))
    best_energy = float(energies[best_w])
    best_seq = states[best_w].copy()
    pert = min(config.pert_size, n)
    # Per-walker draws run in walker order so the walkers=1 trajectory is
    # byte-for-byte the classic serial chain under the same seed.
    positions = np.stack(
        [sample_distinct_positions(rng, n, pert) for _ in range(walkers)]
    )
    candidates = np.empty_like(states)
    history = np.empty(config.iterations) if config.record_history else None

    for it in range(config.iterations):
        if it % config.position_refresh == 0 and it > 0:
            positions = np.stack(
                [sample_distinct_positions(rng, n, pert)
                 for _ in range(walkers)]
            )
        for w in range(walkers):
            candidates[w] = partial_fisher_yates(rng, states[w], positions[w])
        cand_energies = adapter.batched_objective(candidates)
        # The deterministic TA rule: tolerate bounded deterioration.
        accept = cand_energies - energies <= theta
        states[accept] = candidates[accept]
        energies[accept] = cand_energies[accept]
        imin = int(np.argmin(energies))
        if energies[imin] < best_energy:
            best_energy = float(energies[imin])
            best_seq = states[imin].copy()
        theta *= config.decay
        if history is not None:
            history[it] = best_energy
    wall = time.perf_counter() - start

    return assemble_result(
        adapter,
        best_seq,
        evaluations=(config.iterations + 1) * walkers,
        wall_time_s=wall,
        history=history,
        params={"algorithm": "threshold_accepting", **asdict(config),
                "theta0": theta},
    )
