"""Threshold Accepting: one of the Biskup--Feldmann [18] CPU baselines.

Table III measures speedups against the CPU metaheuristics of Feldmann &
Biskup (2003), who evaluated Evolutionary Strategies, Simulated Annealing
and **Threshold Accepting (TA)** on the OR-library CDD set.  TA (Dueck &
Scheuer) is SA with the stochastic Metropolis rule replaced by a
deterministic one: accept a candidate iff

    E_new - E <= Theta_k

with a threshold ladder ``Theta_k`` decreasing to zero.  We drive the
ladder with the same exponential decay and initial spread estimate as the
SA (``Theta_0`` = std of random-sequence fitness), and reuse the Fisher--
Yates sub-sequence neighborhood, so TA/SA differ exactly in the acceptance
rule -- which is the comparison [18] draws.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.core.cooling import (
    DEFAULT_COOLING_RATE,
    estimate_initial_temperature,
)
from repro.core.engine.adapters import adapter_for
from repro.core.engine.config import (
    NeighborhoodConfigMixin,
    check_init_policy,
    check_positive_iterations,
)
from repro.core.engine.driver import assemble_result
from repro.core.results import SolveResult
from repro.initialization import initial_population
from repro.permutation import partial_fisher_yates, sample_distinct_positions
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["ThresholdAcceptingConfig", "threshold_accepting"]


@dataclass(frozen=True)
class ThresholdAcceptingConfig(NeighborhoodConfigMixin):
    """Configuration of the serial Threshold Accepting baseline."""

    iterations: int = 1000
    decay: float = DEFAULT_COOLING_RATE  # threshold ladder decay per step
    pert_size: int = 4
    position_refresh: int = 1
    seed: int = 0
    theta0: float | None = None  # None: estimate like the SA's T0
    theta0_samples: int = 5000
    init: str = "random"
    record_history: bool = False

    def __post_init__(self) -> None:
        check_positive_iterations(self.iterations)
        if not (0.0 < self.decay < 1.0):
            raise ValueError("decay must lie in (0, 1)")
        self._check_neighborhood()
        check_init_policy(self.init)


def threshold_accepting(
    instance: CDDInstance | UCDDCPInstance,
    config: ThresholdAcceptingConfig = ThresholdAcceptingConfig(),
) -> SolveResult:
    """Run one serial TA chain; returns the best schedule found."""
    rng = np.random.default_rng(config.seed)
    n = instance.n
    adapter = adapter_for(instance)
    evaluate = adapter.sequence_evaluator()

    theta = (
        config.theta0
        if config.theta0 is not None
        else estimate_initial_temperature(instance, config.theta0_samples, rng)
    )

    start = time.perf_counter()
    state = initial_population(instance, 1, rng, config.init)[0]
    energy = evaluate(state)
    best_seq = state.copy()
    best_energy = energy
    pert = min(config.pert_size, n)
    positions = sample_distinct_positions(rng, n, pert)
    history = np.empty(config.iterations) if config.record_history else None

    for it in range(config.iterations):
        if it % config.position_refresh == 0 and it > 0:
            positions = sample_distinct_positions(rng, n, pert)
        candidate = partial_fisher_yates(rng, state, positions)
        cand_energy = evaluate(candidate)
        # The deterministic TA rule: tolerate bounded deterioration.
        if cand_energy - energy <= theta:
            state, energy = candidate, cand_energy
            if energy < best_energy:
                best_energy = energy
                best_seq = state.copy()
        theta *= config.decay
        if history is not None:
            history[it] = best_energy
    wall = time.perf_counter() - start

    return assemble_result(
        adapter,
        best_seq,
        evaluations=config.iterations + 1,
        wall_time_s=wall,
        history=history,
        params={"algorithm": "threshold_accepting", **asdict(config),
                "theta0": theta},
    )
