"""Experiment harness: regenerates every table and figure of the paper.

Each experiment has a function returning a structured result object plus a
renderer that prints the same rows/series the paper reports, next to the
paper's published values (:mod:`~repro.experiments.paper_data`).  The
``REPRO_SCALE`` environment variable (``smoke`` / ``quick`` / ``full``)
selects the workload size; ``quick`` is the default and fits a single CPU
core (see :mod:`~repro.experiments.config` for the exact grids).

Experiment index (also in DESIGN.md):

==============  ====================================================
``table2``      CDD average %deviation per size (Table II / Fig 12)
``table3``      CDD speedups (Table III / Fig 13)
``table4``      UCDDCP average %deviation (Table IV / Fig 15)
``table5``      UCDDCP speedups (Table V / Fig 17)
``fig11``       runtime surface: threads x generations
``fig14``       CDD runtime curves
``fig16``       UCDDCP runtime curves
``blocksize``   block-size ablation (Section VIII discussion)
``sync``        async vs sync SA ablation (Section VI discussion)
``cooling``     cooling-rate ablation (Section VI discussion)
==============  ====================================================
"""

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.deviation import DeviationStudy, run_deviation_study
from repro.experiments.runtime import (
    RuntimeCurves,
    RuntimeSurface,
    run_runtime_curves,
    run_runtime_surface,
)
from repro.experiments.speedup import SpeedupStudy, run_speedup_study

__all__ = [
    "ExperimentScale",
    "get_scale",
    "DeviationStudy",
    "run_deviation_study",
    "SpeedupStudy",
    "run_speedup_study",
    "RuntimeSurface",
    "RuntimeCurves",
    "run_runtime_surface",
    "run_runtime_curves",
]
