"""Ablations for the design choices the paper discusses in prose.

* **Block size** (Section VIII): "after several experimental evaluations we
  observe that the best results for both the problems are achieved with a
  block size of 192" -- we sweep the block size at a fixed total thread
  count and report modeled generation time and occupancy.
* **Async vs sync SA** (Section VI): "The reason for choosing the
  asynchronous version over the synchronous SA is due to the premature
  convergence of the latter" -- we run both at equal budgets and compare
  final quality and population diversity.
* **Cooling rate** (Section VI): "The exponential cooling rate of 0.88 has
  been adopted in this work, which is inferred from our experiments over a
  range of cooling rates" -- we sweep mu.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.tables import render_table
from repro.gpusim.device import Device
from repro.gpusim.profiles import DEFAULT_PROFILE, get_profile
from repro.gpusim.launch import linear_config, occupancy
from repro.instances.biskup import biskup_instance
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import make_cdd_fitness_kernel
from repro.resilience import ResilientRunner, RunReport, WorkUnit


def _ablation_footnote(report: RunReport | None) -> str:
    """Footnote section for a rendered ablation ("" when clean)."""
    if report is None:
        return ""
    return report.footnote()

__all__ = [
    "BlockSizeAblation",
    "SyncAsyncAblation",
    "CoolingAblation",
    "run_blocksize_ablation",
    "run_sync_vs_async",
    "run_cooling_ablation",
    "TextureAblation",
    "run_texture_ablation",
    "CouplingAblation",
    "run_coupling_ablation",
    "RefreshAblation",
    "run_refresh_ablation",
    "StrategyAblation",
    "run_strategy_ablation",
]


# ----------------------------------------------------------------------
# Block size
# ----------------------------------------------------------------------
@dataclass
class BlockSizeAblation:
    """Per-block-size modeled fitness time and occupancy."""

    total_threads: int
    n_jobs: int
    block_sizes: tuple[int, ...]
    kernel_time_s: np.ndarray
    occupancy_pct: np.ndarray
    limiter: list[str]
    report: RunReport | None = None

    def render(self) -> str:
        """Table of block size vs modeled kernel time and occupancy."""
        rows = [
            [b, self.kernel_time_s[i], self.occupancy_pct[i], self.limiter[i]]
            for i, b in enumerate(self.block_sizes)
        ]
        tab = render_table(
            ["Block", "fitness time (s)", "occupancy %", "limited by"],
            rows,
            title=(
                f"Block-size ablation: {self.total_threads} threads, "
                f"CDD n={self.n_jobs} (paper picks 192)"
            ),
        )
        footnote = _ablation_footnote(self.report)
        return f"{tab}\n\n{footnote}" if footnote else tab


def _blocksize_point_fn(instance, n: int, block: int, total_threads: int,
                        fault_plan, device_profile: str = DEFAULT_PROFILE):
    """Work-unit body of one block-size point."""

    def run() -> dict:
        profile = get_profile(device_profile)
        kernel = make_cdd_fitness_kernel()
        device = Device(spec=profile.spec, seed=1, fault_plan=fault_plan,
                        timing=profile.create_timing_model())
        data = DeviceProblemData(device, instance)
        seqs = device.malloc((total_threads, n), np.int32, "sequences")
        out = device.malloc(total_threads, np.float64, "fitness")
        rng = np.random.default_rng(7)
        device.memcpy_htod(
            seqs,
            np.argsort(rng.random((total_threads, n)), axis=1).astype(np.int32),
        )
        cfg = linear_config(total_threads, block)
        device.reset_clocks()
        device.launch(kernel, cfg, seqs, data.p, data.a, data.b, out)
        device.synchronize()
        occ = occupancy(
            profile.spec, block, kernel.registers_per_thread,
            kernel.shared_bytes_for(seqs, data.p, data.a, data.b, out),
        )
        return {
            "block": block,
            "kernel_time_s": float(device.profiler.kernel_time()),
            "occupancy_pct": float(occ.occupancy * 100.0),
            "limiter": occ.limiter,
        }

    return run


def run_blocksize_ablation(
    scale: ExperimentScale | None = None,
    total_threads: int = 768,
    runner: ResilientRunner | None = None,
    device_profile: str = DEFAULT_PROFILE,
) -> BlockSizeAblation:
    """Sweep the block size at a fixed total thread count."""
    scale = scale or get_scale()
    runner = runner or ResilientRunner()
    spec = get_profile(device_profile).spec
    n = scale.fig11_n
    instance = biskup_instance(n, 0.4, 1)
    sizes = tuple(
        b for b in scale.blocksize_candidates
        if b <= min(total_threads, spec.max_threads_per_block)
    )
    units = [
        WorkUnit(
            key=f"block{block}",
            run=_blocksize_point_fn(instance, n, block, total_threads,
                                    runner.fault_plan, device_profile),
        )
        for block in sizes
    ]
    suffix = "" if device_profile == DEFAULT_PROFILE else f"_{device_profile}"
    checkpoint = runner.checkpoint_for(
        f"ablation_blocksize_{scale.name}{suffix}"
    )
    report = runner.run_units(units, checkpoint)

    times = np.full(len(sizes), np.nan)
    occs = np.full(len(sizes), np.nan)
    limiters: list[str] = ["—"] * len(sizes)
    by_block = {o.payload["block"]: o.payload for o in report.completed}
    for i, block in enumerate(sizes):
        if block in by_block:
            times[i] = by_block[block]["kernel_time_s"]
            occs[i] = by_block[block]["occupancy_pct"]
            limiters[i] = by_block[block]["limiter"]
    return BlockSizeAblation(
        total_threads=total_threads,
        n_jobs=n,
        block_sizes=sizes,
        kernel_time_s=times,
        occupancy_pct=occs,
        limiter=limiters,
        report=report,
    )


# ----------------------------------------------------------------------
# Async vs sync
# ----------------------------------------------------------------------
@dataclass
class SyncAsyncAblation:
    """Final quality of the async and sync SA variants at equal budgets."""

    sizes: tuple[int, ...]
    async_objective: np.ndarray
    sync_objective: np.ndarray
    sync_premature_pct: np.ndarray  # % by which sync is worse
    report: RunReport | None = None

    def render(self) -> str:
        """Comparison table (positive last column = sync is worse)."""
        rows = [
            [
                n,
                self.async_objective[i],
                self.sync_objective[i],
                self.sync_premature_pct[i],
            ]
            for i, n in enumerate(self.sizes)
        ]
        tab = render_table(
            ["Jobs", "async obj", "sync obj", "sync worse by %"],
            rows,
            title="Async vs synchronous parallel SA (equal budgets)",
        )
        footnote = _ablation_footnote(self.report)
        return f"{tab}\n\n{footnote}" if footnote else tab


def _syncasync_point_fn(n: int, variant: str, replicates: int,
                        scale: ExperimentScale, backend):
    """Work-unit body: one SA variant's replicate mean at one size."""

    def run() -> dict:
        instance = biskup_instance(n, 0.4, 1)
        vals = []
        for r in range(replicates):
            seed = zlib.crc32(f"syncasync:{n}:{r}".encode()) & 0x7FFFFFFF
            vals.append(
                parallel_sa(
                    instance,
                    ParallelSAConfig(
                        iterations=scale.iterations_low,
                        grid_size=scale.grid_size,
                        block_size=scale.block_size,
                        variant=variant,
                        seed=seed,
                    ),
                    backend=backend,
                ).objective
            )
        return {"size": n, "variant": variant,
                "objective": float(np.mean(vals))}

    return run


def run_sync_vs_async(
    scale: ExperimentScale | None = None,
    replicates: int = 3,
    runner: ResilientRunner | None = None,
) -> SyncAsyncAblation:
    """Compare the two Ferreiro parallelization strategies."""
    scale = scale or get_scale()
    runner = runner or ResilientRunner()
    sizes = scale.sizes[: min(4, len(scale.sizes))]
    backend = runner.solver_backend(prefer="vectorized")
    units = [
        WorkUnit(
            key=f"n{n}|{variant}",
            run=_syncasync_point_fn(n, variant, replicates, scale, backend),
        )
        for n in sizes
        for variant in ("async", "sync")
    ]
    checkpoint = runner.checkpoint_for(f"ablation_syncasync_{scale.name}")
    report = runner.run_units(units, checkpoint)

    objs = {
        (o.payload["size"], o.payload["variant"]): o.payload["objective"]
        for o in report.completed
    }
    async_obj = np.array([objs.get((n, "async"), np.nan) for n in sizes])
    sync_obj = np.array([objs.get((n, "sync"), np.nan) for n in sizes])
    worse = (sync_obj - async_obj) / async_obj * 100.0
    return SyncAsyncAblation(
        sizes=tuple(sizes),
        async_objective=async_obj,
        sync_objective=sync_obj,
        sync_premature_pct=worse,
        report=report,
    )


# ----------------------------------------------------------------------
# Cooling rate
# ----------------------------------------------------------------------
@dataclass
class CoolingAblation:
    """Mean final objective per cooling rate."""

    n_jobs: int
    rates: tuple[float, ...]
    objective: np.ndarray
    report: RunReport | None = None

    def render(self) -> str:
        """Table of cooling rate vs mean objective (0.88 is the paper pick)."""
        rows = [[mu, self.objective[i]] for i, mu in enumerate(self.rates)]
        tab = render_table(
            ["mu", "mean objective"], rows,
            title=f"Cooling-rate ablation (CDD n={self.n_jobs})",
        )
        footnote = _ablation_footnote(self.report)
        return f"{tab}\n\n{footnote}" if footnote else tab


def _cooling_point_fn(instance, mu: float, replicates: int,
                      scale: ExperimentScale, backend):
    """Work-unit body of one cooling-rate point."""

    def run() -> dict:
        vals = []
        for r in range(replicates):
            seed = zlib.crc32(f"cooling:{mu}:{r}".encode()) & 0x7FFFFFFF
            vals.append(
                parallel_sa(
                    instance,
                    ParallelSAConfig(
                        iterations=scale.iterations_low,
                        grid_size=scale.grid_size,
                        block_size=scale.block_size,
                        cooling_rate=mu,
                        seed=seed,
                    ),
                    backend=backend,
                ).objective
            )
        return {"mu": mu, "objective": float(np.mean(vals))}

    return run


def run_cooling_ablation(
    scale: ExperimentScale | None = None,
    replicates: int = 3,
    runner: ResilientRunner | None = None,
) -> CoolingAblation:
    """Sweep the exponential cooling rate on a mid-size instance."""
    scale = scale or get_scale()
    runner = runner or ResilientRunner()
    n = scale.fig11_n
    instance = biskup_instance(n, 0.4, 1)
    backend = runner.solver_backend(prefer="vectorized")
    units = [
        WorkUnit(
            key=f"mu{mu}",
            run=_cooling_point_fn(instance, mu, replicates, scale, backend),
        )
        for mu in scale.cooling_rates
    ]
    checkpoint = runner.checkpoint_for(f"ablation_cooling_{scale.name}")
    report = runner.run_units(units, checkpoint)

    by_mu = {o.payload["mu"]: o.payload["objective"]
             for o in report.completed}
    objs = np.array([by_mu.get(mu, np.nan) for mu in scale.cooling_rates])
    return CoolingAblation(
        n_jobs=n, rates=scale.cooling_rates, objective=objs, report=report
    )


# ----------------------------------------------------------------------
# Texture memory (the paper's future-work item)
# ----------------------------------------------------------------------
@dataclass
class TextureAblation:
    """Modeled fitness time with and without the texture-cache path."""

    n_jobs: int
    plain_s: float
    texture_s: float
    report: RunReport | None = None

    @property
    def saving_pct(self) -> float:
        """Relative modeled saving of the texture path."""
        return 100.0 * (1.0 - self.texture_s / self.plain_s)

    def render(self) -> str:
        """Two-row comparison table."""
        tab = render_table(
            ["fitness kernel", "modeled time (ms)"],
            [["global-memory gathers", self.plain_s * 1e3],
             ["texture-cached gathers", self.texture_s * 1e3],
             ["saving", f"{self.saving_pct:.1f}%"]],
            title=(
                f"Texture-memory ablation (paper future work), CDD "
                f"n={self.n_jobs}, 768 threads"
            ),
        )
        footnote = _ablation_footnote(self.report)
        return f"{tab}\n\n{footnote}" if footnote else tab


def _texture_point_fn(instance, n: int, use_texture: bool,
                      total_threads: int, fault_plan,
                      device_profile: str = DEFAULT_PROFILE):
    """Work-unit body of one texture-path variant."""

    def run() -> dict:
        profile = get_profile(device_profile)
        device = Device(spec=profile.spec, seed=1, fault_plan=fault_plan,
                        timing=profile.create_timing_model())
        data = DeviceProblemData(device, instance)
        seqs = device.malloc((total_threads, n), np.int32, "sequences")
        out = device.malloc(total_threads, np.float64, "fitness")
        rng = np.random.default_rng(7)
        device.memcpy_htod(
            seqs,
            np.argsort(rng.random((total_threads, n)), axis=1).astype(np.int32),
        )
        kernel = make_cdd_fitness_kernel(use_texture)
        cfg = linear_config(total_threads, 192)
        device.reset_clocks()
        device.launch(kernel, cfg, seqs, data.p, data.a, data.b, out)
        device.synchronize()
        return {"use_texture": use_texture,
                "kernel_time_s": float(device.profiler.kernel_time())}

    return run


def run_texture_ablation(
    scale: ExperimentScale | None = None,
    total_threads: int = 768,
    runner: ResilientRunner | None = None,
    device_profile: str = DEFAULT_PROFILE,
) -> TextureAblation:
    """Compare the modeled fitness-kernel time with the texture path on."""
    scale = scale or get_scale()
    runner = runner or ResilientRunner()
    get_profile(device_profile)  # fail fast on unknown keys
    n = scale.fig11_n
    instance = biskup_instance(n, 0.4, 1)
    units = [
        WorkUnit(
            key="texture" if use_texture else "plain",
            run=_texture_point_fn(instance, n, use_texture, total_threads,
                                  runner.fault_plan, device_profile),
        )
        for use_texture in (False, True)
    ]
    suffix = "" if device_profile == DEFAULT_PROFILE else f"_{device_profile}"
    checkpoint = runner.checkpoint_for(
        f"ablation_texture_{scale.name}{suffix}"
    )
    report = runner.run_units(units, checkpoint)

    times = {o.payload["use_texture"]: o.payload["kernel_time_s"]
             for o in report.completed}
    return TextureAblation(
        n_jobs=n,
        plain_s=times.get(False, float("nan")),
        texture_s=times.get(True, float("nan")),
        report=report,
    )


# ----------------------------------------------------------------------
# DPSO coupling (async per the paper vs coupled-swarm extension)
# ----------------------------------------------------------------------
@dataclass
class CouplingAblation:
    """Final quality of the DPSO coupling spectrum (async/ring/coupled)."""

    sizes: tuple[int, ...]
    async_objective: np.ndarray
    ring_objective: np.ndarray
    coupled_objective: np.ndarray
    report: RunReport | None = None

    def render(self) -> str:
        """Comparison table; the async deficit is the paper's DPSO story."""
        rows = [
            [
                n,
                self.async_objective[i],
                self.ring_objective[i],
                self.coupled_objective[i],
                100.0
                * (self.async_objective[i] - self.coupled_objective[i])
                / self.coupled_objective[i],
            ]
            for i, n in enumerate(self.sizes)
        ]
        tab = render_table(
            ["Jobs", "async (paper)", "ring (lbest)", "coupled (gbest)",
             "async worse by %"],
            rows,
            title="DPSO coupling ablation (equal budgets)",
        )
        footnote = _ablation_footnote(self.report)
        return f"{tab}\n\n{footnote}" if footnote else tab


def _coupling_point_fn(n: int, coupling: str, replicates: int,
                       scale: ExperimentScale, backend):
    """Work-unit body: one DPSO coupling's replicate mean at one size."""

    def run() -> dict:
        from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso

        instance = biskup_instance(n, 0.4, 1)
        vals = []
        for r in range(replicates):
            seed = zlib.crc32(f"coupling:{n}:{r}".encode()) & 0x7FFFFFFF
            vals.append(
                parallel_dpso(
                    instance,
                    ParallelDPSOConfig(
                        iterations=scale.iterations_low,
                        grid_size=scale.grid_size,
                        block_size=scale.block_size,
                        coupling=coupling,
                        seed=seed,
                    ),
                    backend=backend,
                ).objective
            )
        return {"size": n, "coupling": coupling,
                "objective": float(np.mean(vals))}

    return run


def run_coupling_ablation(
    scale: ExperimentScale | None = None,
    replicates: int = 2,
    runner: ResilientRunner | None = None,
) -> CouplingAblation:
    """The DPSO coupling spectrum: isolated (paper) / ring / full swarm."""
    scale = scale or get_scale()
    runner = runner or ResilientRunner()
    sizes = scale.sizes[: min(4, len(scale.sizes))]
    couplings = ("async", "ring", "coupled")
    backend = runner.solver_backend(prefer="vectorized")
    units = [
        WorkUnit(
            key=f"n{n}|{coupling}",
            run=_coupling_point_fn(n, coupling, replicates, scale, backend),
        )
        for n in sizes
        for coupling in couplings
    ]
    checkpoint = runner.checkpoint_for(f"ablation_coupling_{scale.name}")
    report = runner.run_units(units, checkpoint)

    objs = {
        (o.payload["size"], o.payload["coupling"]): o.payload["objective"]
        for o in report.completed
    }
    series = {
        c: np.array([objs.get((n, c), np.nan) for n in sizes])
        for c in couplings
    }
    return CouplingAblation(
        sizes=tuple(sizes),
        async_objective=series["async"],
        ring_objective=series["ring"],
        coupled_objective=series["coupled"],
        report=report,
    )


# ----------------------------------------------------------------------
# Perturbation-position refresh cadence
# ----------------------------------------------------------------------
@dataclass
class RefreshAblation:
    """Final SA quality per position-refresh interval."""

    n_jobs: int
    intervals: tuple[int, ...]
    objective: np.ndarray
    report: RunReport | None = None

    def render(self) -> str:
        """Quality per refresh interval (1 = fresh positions each move)."""
        rows = [
            [itv, self.objective[i]] for i, itv in enumerate(self.intervals)
        ]
        tab = render_table(
            ["refresh interval", "mean objective"],
            rows,
            title=(
                f"Perturbation-position refresh ablation (CDD "
                f"n={self.n_jobs}; Section VI's ambiguous '10')"
            ),
        )
        footnote = _ablation_footnote(self.report)
        return f"{tab}\n\n{footnote}" if footnote else tab


def _refresh_point_fn(instance, itv: int, replicates: int,
                      scale: ExperimentScale, backend):
    """Work-unit body of one refresh-interval point."""

    def run() -> dict:
        vals = []
        for r in range(replicates):
            seed = zlib.crc32(f"refresh:{itv}:{r}".encode()) & 0x7FFFFFFF
            vals.append(
                parallel_sa(
                    instance,
                    ParallelSAConfig(
                        iterations=scale.iterations_low,
                        grid_size=scale.grid_size,
                        block_size=scale.block_size,
                        position_refresh=itv,
                        seed=seed,
                    ),
                    backend=backend,
                ).objective
            )
        return {"interval": itv, "objective": float(np.mean(vals))}

    return run


def run_refresh_ablation(
    scale: ExperimentScale | None = None,
    intervals: tuple[int, ...] = (1, 2, 5, 10, 25),
    replicates: int = 2,
    runner: ResilientRunner | None = None,
) -> RefreshAblation:
    """Sweep the refresh cadence of the SA perturbation positions."""
    scale = scale or get_scale()
    runner = runner or ResilientRunner()
    n = scale.fig11_n
    instance = biskup_instance(n, 0.4, 1)
    backend = runner.solver_backend(prefer="vectorized")
    units = [
        WorkUnit(
            key=f"interval{itv}",
            run=_refresh_point_fn(instance, itv, replicates, scale, backend),
        )
        for itv in intervals
    ]
    checkpoint = runner.checkpoint_for(f"ablation_refresh_{scale.name}")
    report = runner.run_units(units, checkpoint)

    by_itv = {o.payload["interval"]: o.payload["objective"]
              for o in report.completed}
    objs = np.array([by_itv.get(itv, np.nan) for itv in intervals])
    return RefreshAblation(n_jobs=n, intervals=intervals, objective=objs,
                           report=report)


# ----------------------------------------------------------------------
# Parallelization strategy (Section V: the three Ferreiro strategies)
# ----------------------------------------------------------------------
@dataclass
class StrategyAblation:
    """Final quality of the three SA parallelization strategies."""

    sizes: tuple[int, ...]
    async_objective: np.ndarray
    sync_objective: np.ndarray
    domain_objective: np.ndarray
    report: RunReport | None = None

    def render(self) -> str:
        """Per-size comparison; the paper keeps async and dismisses the rest."""
        rows = []
        for i, n in enumerate(self.sizes):
            a = self.async_objective[i]
            rows.append([
                n, a, self.sync_objective[i], self.domain_objective[i],
                100.0 * (self.domain_objective[i] - a) / a,
            ])
        tab = render_table(
            ["Jobs", "async (paper)", "sync", "domain decomp.",
             "domain vs async %"],
            rows,
            title=(
                "Parallelization-strategy ablation (Section V): multiple "
                "Markov chains vs domain decomposition"
            ),
        )
        footnote = _ablation_footnote(self.report)
        return f"{tab}\n\n{footnote}" if footnote else tab


def _strategy_point_fn(n: int, variant: str, replicates: int,
                       scale: ExperimentScale, backend):
    """Work-unit body: one parallelization strategy at one size."""

    def run() -> dict:
        instance = biskup_instance(n, 0.4, 1)
        vals = []
        for r in range(replicates):
            seed = zlib.crc32(
                f"strategy:{variant}:{n}:{r}".encode()
            ) & 0x7FFFFFFF
            vals.append(
                parallel_sa(
                    instance,
                    ParallelSAConfig(
                        iterations=scale.iterations_low,
                        grid_size=scale.grid_size,
                        block_size=scale.block_size,
                        variant=variant,
                        seed=seed,
                    ),
                    backend=backend,
                ).objective
            )
        return {"size": n, "variant": variant,
                "objective": float(np.mean(vals))}

    return run


def run_strategy_ablation(
    scale: ExperimentScale | None = None,
    replicates: int = 2,
    runner: ResilientRunner | None = None,
) -> StrategyAblation:
    """Async vs sync vs domain-decomposition parallel SA at equal budgets."""
    scale = scale or get_scale()
    runner = runner or ResilientRunner()
    sizes = tuple(n for n in scale.sizes if n >= 3)[: min(4, len(scale.sizes))]
    variants = ("async", "sync", "domain")
    backend = runner.solver_backend(prefer="vectorized")
    units = [
        WorkUnit(
            key=f"n{n}|{variant}",
            run=_strategy_point_fn(n, variant, replicates, scale, backend),
        )
        for n in sizes
        for variant in variants
    ]
    checkpoint = runner.checkpoint_for(f"ablation_strategy_{scale.name}")
    report = runner.run_units(units, checkpoint)

    objs = {
        (o.payload["size"], o.payload["variant"]): o.payload["objective"]
        for o in report.completed
    }
    series = {
        v: np.array([objs.get((n, v), np.nan) for n in sizes])
        for v in variants
    }
    return StrategyAblation(
        sizes=sizes,
        async_objective=series["async"],
        sync_objective=series["sync"],
        domain_objective=series["domain"],
        report=report,
    )
