"""Ablations for the design choices the paper discusses in prose.

* **Block size** (Section VIII): "after several experimental evaluations we
  observe that the best results for both the problems are achieved with a
  block size of 192" -- we sweep the block size at a fixed total thread
  count and report modeled generation time and occupancy.
* **Async vs sync SA** (Section VI): "The reason for choosing the
  asynchronous version over the synchronous SA is due to the premature
  convergence of the latter" -- we run both at equal budgets and compare
  final quality and population diversity.
* **Cooling rate** (Section VI): "The exponential cooling rate of 0.88 has
  been adopted in this work, which is inferred from our experiments over a
  range of cooling rates" -- we sweep mu.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.tables import render_table
from repro.gpusim.device import GEFORCE_GT_560M, Device
from repro.gpusim.launch import linear_config, occupancy
from repro.instances.biskup import biskup_instance
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import make_cdd_fitness_kernel

__all__ = [
    "BlockSizeAblation",
    "SyncAsyncAblation",
    "CoolingAblation",
    "run_blocksize_ablation",
    "run_sync_vs_async",
    "run_cooling_ablation",
    "TextureAblation",
    "run_texture_ablation",
    "CouplingAblation",
    "run_coupling_ablation",
    "RefreshAblation",
    "run_refresh_ablation",
    "StrategyAblation",
    "run_strategy_ablation",
]


# ----------------------------------------------------------------------
# Block size
# ----------------------------------------------------------------------
@dataclass
class BlockSizeAblation:
    """Per-block-size modeled fitness time and occupancy."""

    total_threads: int
    n_jobs: int
    block_sizes: tuple[int, ...]
    kernel_time_s: np.ndarray
    occupancy_pct: np.ndarray
    limiter: list[str]

    def render(self) -> str:
        """Table of block size vs modeled kernel time and occupancy."""
        rows = [
            [b, self.kernel_time_s[i], self.occupancy_pct[i], self.limiter[i]]
            for i, b in enumerate(self.block_sizes)
        ]
        return render_table(
            ["Block", "fitness time (s)", "occupancy %", "limited by"],
            rows,
            title=(
                f"Block-size ablation: {self.total_threads} threads, "
                f"CDD n={self.n_jobs} (paper picks 192)"
            ),
        )


def run_blocksize_ablation(
    scale: ExperimentScale | None = None,
    total_threads: int = 768,
) -> BlockSizeAblation:
    """Sweep the block size at a fixed total thread count."""
    scale = scale or get_scale()
    n = scale.fig11_n
    instance = biskup_instance(n, 0.4, 1)
    kernel = make_cdd_fitness_kernel()
    sizes = tuple(
        b for b in scale.blocksize_candidates
        if b <= min(total_threads, GEFORCE_GT_560M.max_threads_per_block)
    )
    times = np.zeros(len(sizes))
    occs = np.zeros(len(sizes))
    limiters: list[str] = []
    for i, block in enumerate(sizes):
        device = Device(seed=1)
        data = DeviceProblemData(device, instance)
        seqs = device.malloc((total_threads, n), np.int32, "sequences")
        out = device.malloc(total_threads, np.float64, "fitness")
        rng = np.random.default_rng(7)
        device.memcpy_htod(
            seqs,
            np.argsort(rng.random((total_threads, n)), axis=1).astype(np.int32),
        )
        cfg = linear_config(total_threads, block)
        device.reset_clocks()
        device.launch(kernel, cfg, seqs, data.p, data.a, data.b, out)
        device.synchronize()
        times[i] = device.profiler.kernel_time()
        occ = occupancy(
            GEFORCE_GT_560M, block, kernel.registers_per_thread,
            kernel.shared_bytes_for(seqs, data.p, data.a, data.b, out),
        )
        occs[i] = occ.occupancy * 100.0
        limiters.append(occ.limiter)
    return BlockSizeAblation(
        total_threads=total_threads,
        n_jobs=n,
        block_sizes=sizes,
        kernel_time_s=times,
        occupancy_pct=occs,
        limiter=limiters,
    )


# ----------------------------------------------------------------------
# Async vs sync
# ----------------------------------------------------------------------
@dataclass
class SyncAsyncAblation:
    """Final quality of the async and sync SA variants at equal budgets."""

    sizes: tuple[int, ...]
    async_objective: np.ndarray
    sync_objective: np.ndarray
    sync_premature_pct: np.ndarray  # % by which sync is worse

    def render(self) -> str:
        """Comparison table (positive last column = sync is worse)."""
        rows = [
            [
                n,
                self.async_objective[i],
                self.sync_objective[i],
                self.sync_premature_pct[i],
            ]
            for i, n in enumerate(self.sizes)
        ]
        return render_table(
            ["Jobs", "async obj", "sync obj", "sync worse by %"],
            rows,
            title="Async vs synchronous parallel SA (equal budgets)",
        )


def run_sync_vs_async(
    scale: ExperimentScale | None = None, replicates: int = 3
) -> SyncAsyncAblation:
    """Compare the two Ferreiro parallelization strategies."""
    scale = scale or get_scale()
    sizes = scale.sizes[: min(4, len(scale.sizes))]
    async_obj = np.zeros(len(sizes))
    sync_obj = np.zeros(len(sizes))
    for i, n in enumerate(sizes):
        instance = biskup_instance(n, 0.4, 1)
        a_vals, s_vals = [], []
        for r in range(replicates):
            seed = zlib.crc32(f"syncasync:{n}:{r}".encode()) & 0x7FFFFFFF
            base = dict(
                iterations=scale.iterations_low,
                grid_size=scale.grid_size,
                block_size=scale.block_size,
                seed=seed,
            )
            a_vals.append(
                parallel_sa(instance, ParallelSAConfig(**base)).objective
            )
            s_vals.append(
                parallel_sa(
                    instance, ParallelSAConfig(variant="sync", **base)
                ).objective
            )
        async_obj[i] = np.mean(a_vals)
        sync_obj[i] = np.mean(s_vals)
    worse = (sync_obj - async_obj) / async_obj * 100.0
    return SyncAsyncAblation(
        sizes=tuple(sizes),
        async_objective=async_obj,
        sync_objective=sync_obj,
        sync_premature_pct=worse,
    )


# ----------------------------------------------------------------------
# Cooling rate
# ----------------------------------------------------------------------
@dataclass
class CoolingAblation:
    """Mean final objective per cooling rate."""

    n_jobs: int
    rates: tuple[float, ...]
    objective: np.ndarray

    def render(self) -> str:
        """Table of cooling rate vs mean objective (0.88 is the paper pick)."""
        rows = [[mu, self.objective[i]] for i, mu in enumerate(self.rates)]
        return render_table(
            ["mu", "mean objective"], rows,
            title=f"Cooling-rate ablation (CDD n={self.n_jobs})",
        )


def run_cooling_ablation(
    scale: ExperimentScale | None = None, replicates: int = 3
) -> CoolingAblation:
    """Sweep the exponential cooling rate on a mid-size instance."""
    scale = scale or get_scale()
    n = scale.fig11_n
    instance = biskup_instance(n, 0.4, 1)
    objs = np.zeros(len(scale.cooling_rates))
    for i, mu in enumerate(scale.cooling_rates):
        vals = []
        for r in range(replicates):
            seed = zlib.crc32(f"cooling:{mu}:{r}".encode()) & 0x7FFFFFFF
            vals.append(
                parallel_sa(
                    instance,
                    ParallelSAConfig(
                        iterations=scale.iterations_low,
                        grid_size=scale.grid_size,
                        block_size=scale.block_size,
                        cooling_rate=mu,
                        seed=seed,
                    ),
                ).objective
            )
        objs[i] = np.mean(vals)
    return CoolingAblation(
        n_jobs=n, rates=scale.cooling_rates, objective=objs
    )


# ----------------------------------------------------------------------
# Texture memory (the paper's future-work item)
# ----------------------------------------------------------------------
@dataclass
class TextureAblation:
    """Modeled fitness time with and without the texture-cache path."""

    n_jobs: int
    plain_s: float
    texture_s: float

    @property
    def saving_pct(self) -> float:
        """Relative modeled saving of the texture path."""
        return 100.0 * (1.0 - self.texture_s / self.plain_s)

    def render(self) -> str:
        """Two-row comparison table."""
        return render_table(
            ["fitness kernel", "modeled time (ms)"],
            [["global-memory gathers", self.plain_s * 1e3],
             ["texture-cached gathers", self.texture_s * 1e3],
             ["saving", f"{self.saving_pct:.1f}%"]],
            title=(
                f"Texture-memory ablation (paper future work), CDD "
                f"n={self.n_jobs}, 768 threads"
            ),
        )


def run_texture_ablation(
    scale: ExperimentScale | None = None, total_threads: int = 768
) -> TextureAblation:
    """Compare the modeled fitness-kernel time with the texture path on."""
    scale = scale or get_scale()
    n = scale.fig11_n
    instance = biskup_instance(n, 0.4, 1)
    times = {}
    for use_texture in (False, True):
        device = Device(seed=1)
        data = DeviceProblemData(device, instance)
        seqs = device.malloc((total_threads, n), np.int32, "sequences")
        out = device.malloc(total_threads, np.float64, "fitness")
        rng = np.random.default_rng(7)
        device.memcpy_htod(
            seqs,
            np.argsort(rng.random((total_threads, n)), axis=1).astype(np.int32),
        )
        kernel = make_cdd_fitness_kernel(use_texture)
        cfg = linear_config(total_threads, 192)
        device.reset_clocks()
        device.launch(kernel, cfg, seqs, data.p, data.a, data.b, out)
        device.synchronize()
        times[use_texture] = device.profiler.kernel_time()
    return TextureAblation(
        n_jobs=n, plain_s=times[False], texture_s=times[True]
    )


# ----------------------------------------------------------------------
# DPSO coupling (async per the paper vs coupled-swarm extension)
# ----------------------------------------------------------------------
@dataclass
class CouplingAblation:
    """Final quality of the DPSO coupling spectrum (async/ring/coupled)."""

    sizes: tuple[int, ...]
    async_objective: np.ndarray
    ring_objective: np.ndarray
    coupled_objective: np.ndarray

    def render(self) -> str:
        """Comparison table; the async deficit is the paper's DPSO story."""
        rows = [
            [
                n,
                self.async_objective[i],
                self.ring_objective[i],
                self.coupled_objective[i],
                100.0
                * (self.async_objective[i] - self.coupled_objective[i])
                / self.coupled_objective[i],
            ]
            for i, n in enumerate(self.sizes)
        ]
        return render_table(
            ["Jobs", "async (paper)", "ring (lbest)", "coupled (gbest)",
             "async worse by %"],
            rows,
            title="DPSO coupling ablation (equal budgets)",
        )


def run_coupling_ablation(
    scale: ExperimentScale | None = None, replicates: int = 2
) -> CouplingAblation:
    """The DPSO coupling spectrum: isolated (paper) / ring / full swarm."""
    from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso

    scale = scale or get_scale()
    sizes = scale.sizes[: min(4, len(scale.sizes))]
    objs = {c: np.zeros(len(sizes)) for c in ("async", "ring", "coupled")}
    for i, n in enumerate(sizes):
        instance = biskup_instance(n, 0.4, 1)
        for coupling in objs:
            vals = []
            for r in range(replicates):
                seed = zlib.crc32(f"coupling:{n}:{r}".encode()) & 0x7FFFFFFF
                vals.append(
                    parallel_dpso(
                        instance,
                        ParallelDPSOConfig(
                            iterations=scale.iterations_low,
                            grid_size=scale.grid_size,
                            block_size=scale.block_size,
                            coupling=coupling,
                            seed=seed,
                        ),
                    ).objective
                )
            objs[coupling][i] = np.mean(vals)
    return CouplingAblation(
        sizes=tuple(sizes),
        async_objective=objs["async"],
        ring_objective=objs["ring"],
        coupled_objective=objs["coupled"],
    )


# ----------------------------------------------------------------------
# Perturbation-position refresh cadence
# ----------------------------------------------------------------------
@dataclass
class RefreshAblation:
    """Final SA quality per position-refresh interval."""

    n_jobs: int
    intervals: tuple[int, ...]
    objective: np.ndarray

    def render(self) -> str:
        """Quality per refresh interval (1 = fresh positions each move)."""
        rows = [
            [itv, self.objective[i]] for i, itv in enumerate(self.intervals)
        ]
        return render_table(
            ["refresh interval", "mean objective"],
            rows,
            title=(
                f"Perturbation-position refresh ablation (CDD "
                f"n={self.n_jobs}; Section VI's ambiguous '10')"
            ),
        )


def run_refresh_ablation(
    scale: ExperimentScale | None = None,
    intervals: tuple[int, ...] = (1, 2, 5, 10, 25),
    replicates: int = 2,
) -> RefreshAblation:
    """Sweep the refresh cadence of the SA perturbation positions."""
    scale = scale or get_scale()
    n = scale.fig11_n
    instance = biskup_instance(n, 0.4, 1)
    objs = np.zeros(len(intervals))
    for i, itv in enumerate(intervals):
        vals = []
        for r in range(replicates):
            seed = zlib.crc32(f"refresh:{itv}:{r}".encode()) & 0x7FFFFFFF
            vals.append(
                parallel_sa(
                    instance,
                    ParallelSAConfig(
                        iterations=scale.iterations_low,
                        grid_size=scale.grid_size,
                        block_size=scale.block_size,
                        position_refresh=itv,
                        seed=seed,
                    ),
                ).objective
            )
        objs[i] = np.mean(vals)
    return RefreshAblation(n_jobs=n, intervals=intervals, objective=objs)


# ----------------------------------------------------------------------
# Parallelization strategy (Section V: the three Ferreiro strategies)
# ----------------------------------------------------------------------
@dataclass
class StrategyAblation:
    """Final quality of the three SA parallelization strategies."""

    sizes: tuple[int, ...]
    async_objective: np.ndarray
    sync_objective: np.ndarray
    domain_objective: np.ndarray

    def render(self) -> str:
        """Per-size comparison; the paper keeps async and dismisses the rest."""
        rows = []
        for i, n in enumerate(self.sizes):
            a = self.async_objective[i]
            rows.append([
                n, a, self.sync_objective[i], self.domain_objective[i],
                100.0 * (self.domain_objective[i] - a) / a,
            ])
        return render_table(
            ["Jobs", "async (paper)", "sync", "domain decomp.",
             "domain vs async %"],
            rows,
            title=(
                "Parallelization-strategy ablation (Section V): multiple "
                "Markov chains vs domain decomposition"
            ),
        )


def run_strategy_ablation(
    scale: ExperimentScale | None = None, replicates: int = 2
) -> StrategyAblation:
    """Async vs sync vs domain-decomposition parallel SA at equal budgets."""
    scale = scale or get_scale()
    sizes = tuple(n for n in scale.sizes if n >= 3)[: min(4, len(scale.sizes))]
    objs = {v: np.zeros(len(sizes)) for v in ("async", "sync", "domain")}
    for i, n in enumerate(sizes):
        instance = biskup_instance(n, 0.4, 1)
        for variant in objs:
            vals = []
            for r in range(replicates):
                seed = zlib.crc32(
                    f"strategy:{variant}:{n}:{r}".encode()
                ) & 0x7FFFFFFF
                vals.append(
                    parallel_sa(
                        instance,
                        ParallelSAConfig(
                            iterations=scale.iterations_low,
                            grid_size=scale.grid_size,
                            block_size=scale.block_size,
                            variant=variant,
                            seed=seed,
                        ),
                    ).objective
                )
            objs[variant][i] = np.mean(vals)
    return StrategyAblation(
        sizes=sizes,
        async_objective=objs["async"],
        sync_objective=objs["sync"],
        domain_objective=objs["domain"],
    )
