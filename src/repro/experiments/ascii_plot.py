"""Minimal ASCII charts for reproducing the paper's figures in a terminal.

The repository ships no plotting dependency, so the figure benches render
bar charts (Figs 12/13/15/17), line plots (Figs 14/16) and a surface table
(Fig 11) as text.  The numeric series are also returned/printed so they can
be re-plotted with any tool.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "line_plot"]

_BAR = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str | None = None,
) -> str:
    """Horizontal bar chart; negative values render to the left marker."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    vmax = max((abs(v) for v in values if v == v), default=0.0) or 1.0
    lw = max((len(s) for s in labels), default=0)
    lines = [title] if title else []
    for lab, v in zip(labels, values):
        if v != v:  # NaN: a failed/missing cell renders as an em-dash bar
            lines.append(f"{lab.rjust(lw)} |— (no data)")
            continue
        n = int(round(abs(v) / vmax * width))
        sign = "-" if v < 0 else ""
        lines.append(f"{lab.rjust(lw)} |{sign}{_BAR * n} {v:g}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    title: str | None = None,
) -> str:
    """One bar block per group with a labelled bar per series."""
    vmax = max(
        (abs(v) for vals in series.values() for v in vals if v == v),
        default=0.0,
    ) or 1.0
    sw = max(len(s) for s in series)
    lines = [title] if title else []
    for gi, g in enumerate(groups):
        lines.append(f"{g}:")
        for name, vals in series.items():
            v = vals[gi]
            if v != v:  # NaN: a failed/missing cell
                lines.append(f"  {name.rjust(sw)} |— (no data)")
                continue
            n = int(round(abs(v) / vmax * width))
            sign = "-" if v < 0 else ""
            lines.append(f"  {name.rjust(sw)} |{sign}{_BAR * n} {v:g}")
    return "\n".join(lines)


def line_plot(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    height: int = 16,
    width: int = 64,
    title: str | None = None,
    logy: bool = False,
) -> str:
    """Scatter-style multi-series line plot on a character grid."""
    pts = [v for vals in series.values() for v in vals if v == v]
    if not pts:
        return title or ""
    ymin, ymax = min(pts), max(pts)
    if logy:
        if ymin <= 0:
            logy = False
        else:
            ymin, ymax = math.log10(ymin), math.log10(ymax)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(x), max(x)
    if xmax == xmin:
        xmax = xmin + 1.0
    grid = [[" "] * width for _ in range(height)]
    marks = "ox+*@%&"
    for si, (name, vals) in enumerate(series.items()):
        m = marks[si % len(marks)]
        for xv, yv in zip(x, vals):
            if yv != yv:
                continue
            y = math.log10(yv) if logy else yv
            col = int((xv - xmin) / (xmax - xmin) * (width - 1))
            row = int((y - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = m
    lines = [title] if title else []
    top = 10**ymax if logy else ymax
    bot = 10**ymin if logy else ymin
    lines.append(f"y: {bot:g} .. {top:g}" + ("  (log scale)" if logy else ""))
    lines.extend("|" + "".join(r) for r in grid)
    lines.append("+" + "-" * width)
    lines.append(f"x: {xmin:g} .. {xmax:g}")
    legend = "  ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
