"""Experiment scaling: smoke / quick / full workload grids.

The paper's full evaluation (768 threads, up to 1000 jobs, 40 instances per
size, 5000 generations) is far beyond a single-core Python budget, so every
experiment reads its workload from an :class:`ExperimentScale`:

* ``full``  -- the paper's grid verbatim;
* ``quick`` -- the default: the same *structure* (four algorithms, a 1:5
  iteration ratio, multiple sizes and replicates) at roughly 1/50 the
  compute, which preserves every qualitative shape the tables show;
* ``smoke`` -- minutes-long CI sanity scale.

Select with the ``REPRO_SCALE`` environment variable or pass a scale
explicitly to the experiment functions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """One workload grid for the whole experiment suite."""

    name: str
    sizes: tuple[int, ...]
    h_factors: tuple[float, ...]
    k_values: tuple[int, ...]
    iterations_low: int
    iterations_high: int
    grid_size: int
    block_size: int
    # Reference ("best known") budget: multi-restart serial SA playing the
    # role of the sequential implementations [7]/[8] the paper's deviations
    # are measured against.  The chain length is set to ~3x the strongest
    # tabulated parallel variant so the reference sits at a comparable
    # convergence level -- see EXPERIMENTS.md ("reference strength").
    bestknown_restarts: int
    bestknown_iterations: int
    fig11_thread_counts: tuple[int, ...]
    fig11_generations: tuple[int, ...]
    fig11_n: int
    blocksize_candidates: tuple[int, ...] = (32, 64, 96, 128, 192, 256, 384,
                                             512, 768, 1024)
    cooling_rates: tuple[float, ...] = (0.80, 0.84, 0.88, 0.92, 0.96, 0.99)
    seeds: tuple[int, ...] = (11,)

    @property
    def population(self) -> int:
        """Ensemble size (chains / particles)."""
        return self.grid_size * self.block_size

    @property
    def instances_per_size(self) -> int:
        """CDD instances aggregated per job size."""
        return len(self.h_factors) * len(self.k_values)

    def label_low(self) -> str:
        """Column label of the low-iteration variant (e.g. ``SA_1000``)."""
        return str(self.iterations_low)

    def label_high(self) -> str:
        """Column label of the high-iteration variant."""
        return str(self.iterations_high)


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        sizes=(10, 20),
        h_factors=(0.4,),
        k_values=(1,),
        iterations_low=60,
        iterations_high=300,
        grid_size=2,
        block_size=32,
        bestknown_restarts=4,
        bestknown_iterations=900,
        fig11_thread_counts=(64, 256, 1024),
        fig11_generations=(50, 100, 200),
        fig11_n=20,
    ),
    "quick": ExperimentScale(
        name="quick",
        sizes=(10, 20, 50, 100, 200),
        h_factors=(0.4, 0.8),
        k_values=(1, 2, 3),
        iterations_low=250,
        iterations_high=1250,
        grid_size=4,
        block_size=48,
        bestknown_restarts=6,
        bestknown_iterations=3750,
        fig11_thread_counts=(64, 128, 192, 384, 768, 1024),
        fig11_generations=(250, 500, 1000, 2000, 5000),
        fig11_n=100,
    ),
    "full": ExperimentScale(
        name="full",
        sizes=(10, 20, 50, 100, 200, 500, 1000),
        h_factors=(0.2, 0.4, 0.6, 0.8),
        k_values=tuple(range(1, 11)),
        iterations_low=1000,
        iterations_high=5000,
        grid_size=4,
        block_size=192,
        bestknown_restarts=6,
        bestknown_iterations=15000,
        fig11_thread_counts=(64, 128, 192, 384, 768, 1024, 2048),
        fig11_generations=(250, 500, 1000, 2000, 5000),
        fig11_n=500,
    ),
}


def get_scale(name: str | None = None) -> ExperimentScale:
    """Resolve a scale by name, ``REPRO_SCALE``, or the ``quick`` default."""
    resolved = name or os.environ.get("REPRO_SCALE", "quick")
    try:
        return SCALES[resolved]
    except KeyError:
        raise KeyError(
            f"unknown scale {resolved!r}; available: {sorted(SCALES)}"
        ) from None
