"""Solution-quality study: Tables II & IV / Figures 12 & 15.

For every job size the paper reports the average percentage deviation

    %delta = (Z - Z_best) / Z_best * 100

of the four parallel algorithms (SA and DPSO, each at a low and a high
generation budget in ratio 1:5) over 40 benchmark instances, where
``Z_best`` comes from the sequential CPU implementations.  This module
reproduces the study end to end: instances from the generators, ``Z_best``
from :mod:`repro.bestknown`, the four runs per instance on the simulated
device, and per-size aggregation.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.bestknown.compute import compute_best_known
from repro.bestknown.store import BestKnownStore
from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.experiments.ascii_plot import grouped_bar_chart
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.paper_data import (
    PAPER_ALGO_LABELS,
    TABLE2_CDD_DEVIATION,
    TABLE4_UCDDCP_DEVIATION,
)
from repro.experiments.tables import render_table
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["DeviationRun", "DeviationStudy", "run_deviation_study"]


@dataclass(frozen=True)
class DeviationRun:
    """One algorithm run on one instance."""

    instance: str
    size: int
    algorithm: str
    objective: float
    best_known: float
    deviation_pct: float
    wall_time_s: float
    modeled_device_time_s: float | None


@dataclass
class DeviationStudy:
    """Aggregated deviation study for one problem family."""

    problem: str
    scale: str
    labels: tuple[str, str, str, str]
    sizes: tuple[int, ...]
    # mean deviation per size per algorithm, shape (len(sizes), 4)
    mean_deviation: np.ndarray
    runs: list[DeviationRun] = field(default_factory=list)

    def significance_report(self) -> str:
        """Pairwise Wilcoxon comparisons over per-instance deviations."""
        from repro.analysis.stats import pairwise_report

        samples = {}
        for lab in self.labels:
            vals = [r.deviation_pct for r in self.runs if r.algorithm == lab]
            if vals:
                samples[lab] = np.asarray(vals)
        if len(samples) < 2:
            return "(not enough data for significance tests)"
        return pairwise_report(samples)

    def per_h_breakdown(self) -> str:
        """Mean deviation split by restriction factor (CDD only)."""
        if self.problem != "cdd":
            return ""
        rows = []
        h_values = sorted({r.instance.split("_h")[-1] for r in self.runs})
        for h in h_values:
            row = [f"h={h}"]
            for lab in self.labels:
                vals = [
                    r.deviation_pct
                    for r in self.runs
                    if r.algorithm == lab and r.instance.endswith(f"_h{h}")
                ]
                row.append(float(np.mean(vals)) if vals else float("nan"))
            rows.append(row)
        return render_table(
            ["h factor", *self.labels], rows,
            title="Per-restriction-factor mean %deviation (all sizes pooled)",
        )

    def render(self) -> str:
        """The table in the paper's layout, plus the published values."""
        paper = (
            TABLE2_CDD_DEVIATION if self.problem == "cdd"
            else TABLE4_UCDDCP_DEVIATION
        )
        rows = []
        for i, n in enumerate(self.sizes):
            rows.append([n, *self.mean_deviation[i]])
        ours = render_table(
            ["Jobs", *self.labels], rows,
            title=(
                f"Average %deviation vs best known ({self.problem.upper()}, "
                f"scale={self.scale})"
            ),
        )
        paper_rows = [[n, *paper[n]] for n in sorted(paper)]
        published = render_table(
            ["Jobs", *PAPER_ALGO_LABELS], paper_rows,
            title="Paper (Table II)" if self.problem == "cdd"
            else "Paper (Table IV)",
        )
        chart = grouped_bar_chart(
            [str(n) for n in self.sizes],
            {
                lab: self.mean_deviation[:, j].tolist()
                for j, lab in enumerate(self.labels)
            },
            title=(
                "Fig 12 analogue (CDD %deviation)" if self.problem == "cdd"
                else "Fig 15 analogue (UCDDCP %deviation)"
            ),
        )
        sections = [ours, published, chart,
                    "Significance (paired Wilcoxon over instances):\n"
                    + self.significance_report()]
        per_h = self.per_h_breakdown()
        if per_h:
            sections.append(per_h)
        return "\n\n".join(sections)

    def column(self, label: str) -> np.ndarray:
        """Mean-deviation series of one algorithm across sizes."""
        j = self.labels.index(label)
        return self.mean_deviation[:, j]


def _seed_for(name: str, algo: str) -> int:
    return zlib.crc32(f"{name}|{algo}".encode()) & 0x7FFFFFFF


def _instances_for_size(
    problem: str, n: int, scale: ExperimentScale
) -> list[CDDInstance | UCDDCPInstance]:
    if problem == "cdd":
        return [
            biskup_instance(n, h, k)
            for k in scale.k_values
            for h in scale.h_factors
        ]
    if problem == "ucddcp":
        return [ucddcp_instance(n, k) for k in scale.k_values]
    raise ValueError(f"unknown problem {problem!r}")


def _load_checkpoint(path: Path) -> dict[str, DeviationRun]:
    if not path.exists():
        return {}
    raw = json.loads(path.read_text())
    return {key: DeviationRun(**rec) for key, rec in raw.items()}


def _save_checkpoint(path: Path, done: dict[str, DeviationRun]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({k: asdict(r) for k, r in done.items()}, indent=0)
    )


def run_deviation_study(
    problem: str = "cdd",
    scale: ExperimentScale | None = None,
    store: BestKnownStore | None = None,
    progress: Callable[[str], None] | None = None,
    checkpoint_path: str | Path | None = None,
) -> DeviationStudy:
    """Run the full deviation study for ``problem`` at ``scale``.

    ``checkpoint_path`` enables incremental persistence: every completed
    (instance, algorithm) run is recorded in a JSON file and skipped on
    resume -- essential for the hours-long ``full`` scale, where a study
    can be interrupted and continued without losing work.
    """
    scale = scale or get_scale()
    store = store or BestKnownStore()
    labels = (
        f"SA_{scale.iterations_low}",
        f"SA_{scale.iterations_high}",
        f"DPSO_{scale.iterations_low}",
        f"DPSO_{scale.iterations_high}",
    )
    sizes = scale.sizes
    ckpt = Path(checkpoint_path) if checkpoint_path else None
    done = _load_checkpoint(ckpt) if ckpt else {}
    runs: list[DeviationRun] = []

    for n in sizes:
        instances = _instances_for_size(problem, n, scale)
        for inst in instances:
            z_best: float | None = None
            for j, (algo, iters) in enumerate(
                (
                    ("sa", scale.iterations_low),
                    ("sa", scale.iterations_high),
                    ("dpso", scale.iterations_low),
                    ("dpso", scale.iterations_high),
                )
            ):
                key = f"{inst.name}|{labels[j]}"
                if key in done:
                    runs.append(done[key])
                    continue
                if z_best is None:
                    z_best = compute_best_known(
                        inst, store,
                        restarts=scale.bestknown_restarts,
                        iterations=scale.bestknown_iterations,
                    )
                seed = _seed_for(inst.name, f"{algo}_{iters}")
                if algo == "sa":
                    result = parallel_sa(
                        inst,
                        ParallelSAConfig(
                            iterations=iters,
                            grid_size=scale.grid_size,
                            block_size=scale.block_size,
                            seed=seed,
                        ),
                    )
                else:
                    result = parallel_dpso(
                        inst,
                        ParallelDPSOConfig(
                            iterations=iters,
                            grid_size=scale.grid_size,
                            block_size=scale.block_size,
                            seed=seed,
                        ),
                    )
                dev = (result.objective - z_best) / z_best * 100.0
                run = DeviationRun(
                    instance=inst.name,
                    size=n,
                    algorithm=labels[j],
                    objective=result.objective,
                    best_known=z_best,
                    deviation_pct=dev,
                    wall_time_s=result.wall_time_s,
                    modeled_device_time_s=result.modeled_device_time_s,
                )
                runs.append(run)
                done[key] = run
            if ckpt:
                _save_checkpoint(ckpt, done)
            if progress:
                progress(f"{inst.name}: done")

    means = np.zeros((len(sizes), 4))
    for si, n in enumerate(sizes):
        for j, lab in enumerate(labels):
            vals = [r.deviation_pct for r in runs
                    if r.size == n and r.algorithm == lab]
            means[si, j] = float(np.mean(vals)) if vals else float("nan")

    return DeviationStudy(
        problem=problem,
        scale=scale.name,
        labels=labels,
        sizes=sizes,
        mean_deviation=means,
        runs=runs,
    )
