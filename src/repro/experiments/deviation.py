"""Solution-quality study: Tables II & IV / Figures 12 & 15.

For every job size the paper reports the average percentage deviation

    %delta = (Z - Z_best) / Z_best * 100

of the four parallel algorithms (SA and DPSO, each at a low and a high
generation budget in ratio 1:5) over 40 benchmark instances, where
``Z_best`` comes from the sequential CPU implementations.  This module
reproduces the study end to end: instances from the generators, ``Z_best``
from :mod:`repro.bestknown`, the four runs per instance on the simulated
device, and per-size aggregation.

The study is decomposed into explicit work units -- one
``(instance, algorithm, budget)`` cell each -- executed through a
:class:`repro.resilience.ResilientRunner`: transient device failures are
retried, completed cells are checkpointed crash-safely, a resumed run
replays them bit-identically, and permanently failed cells degrade to a
``—`` mark plus a footnote instead of killing the whole table.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import asdict, dataclass, field
from typing import Callable

import numpy as np

from repro.bestknown.compute import compute_best_known
from repro.bestknown.store import BestKnownStore
from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.experiments.ascii_plot import grouped_bar_chart
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.paper_data import (
    PAPER_ALGO_LABELS,
    TABLE2_CDD_DEVIATION,
    TABLE4_UCDDCP_DEVIATION,
)
from repro.experiments.tables import render_table
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance
from repro.resilience import ResilientRunner, RunReport, WorkUnit

__all__ = ["DeviationRun", "DeviationStudy", "run_deviation_study"]


@dataclass(frozen=True)
class DeviationRun:
    """One algorithm run on one instance."""

    instance: str
    size: int
    algorithm: str
    objective: float
    best_known: float
    deviation_pct: float
    wall_time_s: float
    modeled_device_time_s: float | None


@dataclass
class DeviationStudy:
    """Aggregated deviation study for one problem family."""

    problem: str
    scale: str
    labels: tuple[str, str, str, str]
    sizes: tuple[int, ...]
    # mean deviation per size per algorithm, shape (len(sizes), 4)
    mean_deviation: np.ndarray
    runs: list[DeviationRun] = field(default_factory=list)
    #: Resilience report of the run that produced this study (failed /
    #: skipped cells end up here and in the rendered footnote).
    report: RunReport | None = None

    def significance_report(self) -> str:
        """Pairwise Wilcoxon comparisons over per-instance deviations.

        Samples are paired per instance, so the comparison is restricted
        to instances every algorithm completed (failed cells of a
        degraded run drop that instance from the pairing, not the test).
        """
        from repro.analysis.stats import pairwise_report

        by_label: dict[str, dict[str, float]] = {
            lab: {} for lab in self.labels
        }
        for r in self.runs:
            by_label[r.algorithm][r.instance] = r.deviation_pct
        common = set.intersection(
            *(set(vals) for vals in by_label.values())
        ) if all(by_label.values()) else set()
        if not common:
            return "(not enough data for significance tests)"
        # Keep the canonical run order (clean runs stay byte-identical).
        order = [n for n in by_label[self.labels[0]] if n in common]
        samples = {
            lab: np.asarray([by_label[lab][name] for name in order])
            for lab in self.labels
        }
        return pairwise_report(samples)

    def per_h_breakdown(self) -> str:
        """Mean deviation split by restriction factor (CDD only)."""
        if self.problem != "cdd":
            return ""
        rows = []
        h_values = sorted({r.instance.split("_h")[-1] for r in self.runs})
        for h in h_values:
            row = [f"h={h}"]
            for lab in self.labels:
                vals = [
                    r.deviation_pct
                    for r in self.runs
                    if r.algorithm == lab and r.instance.endswith(f"_h{h}")
                ]
                row.append(float(np.mean(vals)) if vals else float("nan"))
            rows.append(row)
        return render_table(
            ["h factor", *self.labels], rows,
            title="Per-restriction-factor mean %deviation (all sizes pooled)",
        )

    def render(self) -> str:
        """The table in the paper's layout, plus the published values."""
        paper = (
            TABLE2_CDD_DEVIATION if self.problem == "cdd"
            else TABLE4_UCDDCP_DEVIATION
        )
        rows = []
        for i, n in enumerate(self.sizes):
            rows.append([
                n,
                *("—" if math.isnan(v) else float(v)
                  for v in self.mean_deviation[i]),
            ])
        ours = render_table(
            ["Jobs", *self.labels], rows,
            title=(
                f"Average %deviation vs best known ({self.problem.upper()}, "
                f"scale={self.scale})"
            ),
        )
        paper_rows = [[n, *paper[n]] for n in sorted(paper)]
        published = render_table(
            ["Jobs", *PAPER_ALGO_LABELS], paper_rows,
            title="Paper (Table II)" if self.problem == "cdd"
            else "Paper (Table IV)",
        )
        chart = grouped_bar_chart(
            [str(n) for n in self.sizes],
            {
                lab: self.mean_deviation[:, j].tolist()
                for j, lab in enumerate(self.labels)
            },
            title=(
                "Fig 12 analogue (CDD %deviation)" if self.problem == "cdd"
                else "Fig 15 analogue (UCDDCP %deviation)"
            ),
        )
        sections = [ours, published, chart,
                    "Significance (paired Wilcoxon over instances):\n"
                    + self.significance_report()]
        per_h = self.per_h_breakdown()
        if per_h:
            sections.append(per_h)
        if self.report is not None:
            footnote = self.report.footnote()
            if footnote:
                sections.append(footnote)
        return "\n\n".join(sections)

    def column(self, label: str) -> np.ndarray:
        """Mean-deviation series of one algorithm across sizes."""
        j = self.labels.index(label)
        return self.mean_deviation[:, j]


def _seed_for(name: str, algo: str) -> int:
    return zlib.crc32(f"{name}|{algo}".encode()) & 0x7FFFFFFF


def _instances_for_size(
    problem: str, n: int, scale: ExperimentScale
) -> list[CDDInstance | UCDDCPInstance]:
    if problem == "cdd":
        return [
            biskup_instance(n, h, k)
            for k in scale.k_values
            for h in scale.h_factors
        ]
    if problem == "ucddcp":
        return [ucddcp_instance(n, k) for k in scale.k_values]
    raise ValueError(f"unknown problem {problem!r}")


def _cell_fn(
    inst: CDDInstance | UCDDCPInstance,
    n: int,
    algo: str,
    iters: int,
    label: str,
    scale: ExperimentScale,
    store: BestKnownStore,
    backend,
) -> Callable[[], dict]:
    """The work-unit body of one (instance, algorithm, budget) cell."""

    def run() -> dict:
        z_best = compute_best_known(
            inst, store,
            restarts=scale.bestknown_restarts,
            iterations=scale.bestknown_iterations,
        )
        seed = _seed_for(inst.name, f"{algo}_{iters}")
        if algo == "sa":
            result = parallel_sa(
                inst,
                ParallelSAConfig(
                    iterations=iters,
                    grid_size=scale.grid_size,
                    block_size=scale.block_size,
                    seed=seed,
                ),
                backend=backend,
            )
        else:
            result = parallel_dpso(
                inst,
                ParallelDPSOConfig(
                    iterations=iters,
                    grid_size=scale.grid_size,
                    block_size=scale.block_size,
                    seed=seed,
                ),
                backend=backend,
            )
        dev = (result.objective - z_best) / z_best * 100.0
        return asdict(DeviationRun(
            instance=inst.name,
            size=n,
            algorithm=label,
            objective=float(result.objective),
            best_known=float(z_best),
            deviation_pct=float(dev),
            wall_time_s=float(result.wall_time_s),
            modeled_device_time_s=(
                None if result.modeled_device_time_s is None
                else float(result.modeled_device_time_s)
            ),
        ))

    return run


def run_deviation_study(
    problem: str = "cdd",
    scale: ExperimentScale | None = None,
    store: BestKnownStore | None = None,
    progress: Callable[[str], None] | None = None,
    runner: ResilientRunner | None = None,
) -> DeviationStudy:
    """Run the full deviation study for ``problem`` at ``scale``.

    ``runner`` supplies the resilience layer: retries, the checkpoint
    store (``--resume`` replays completed cells bit-identically), fault
    injection and the execution backend.  Without one, a default runner
    (no checkpointing) is used and failed cells still degrade gracefully.
    """
    scale = scale or get_scale()
    store = store or BestKnownStore()
    runner = runner or ResilientRunner(progress=progress)
    if progress is not None and runner.progress is None:
        runner.progress = progress
    labels = (
        f"SA_{scale.iterations_low}",
        f"SA_{scale.iterations_high}",
        f"DPSO_{scale.iterations_low}",
        f"DPSO_{scale.iterations_high}",
    )
    sizes = scale.sizes
    variants = (
        ("sa", scale.iterations_low),
        ("sa", scale.iterations_high),
        ("dpso", scale.iterations_low),
        ("dpso", scale.iterations_high),
    )
    # A quality table: modeled device timings are not the measurement, so
    # solve on the fast vectorized backend (same trajectories bit-for-bit)
    # unless the user pinned one with --backend.
    backend = runner.solver_backend(prefer="vectorized")

    units: list[WorkUnit] = []
    for n in sizes:
        for inst in _instances_for_size(problem, n, scale):
            for j, (algo, iters) in enumerate(variants):
                units.append(WorkUnit(
                    key=f"{inst.name}|{labels[j]}",
                    run=_cell_fn(inst, n, algo, iters, labels[j], scale,
                                 store, backend),
                ))

    checkpoint = runner.checkpoint_for(f"deviation_{problem}_{scale.name}")
    report = runner.run_units(units, checkpoint)
    runs = [
        DeviationRun(**outcome.payload) for outcome in report.completed
    ]

    means = np.zeros((len(sizes), 4))
    for si, n in enumerate(sizes):
        for j, lab in enumerate(labels):
            vals = [r.deviation_pct for r in runs
                    if r.size == n and r.algorithm == lab]
            means[si, j] = float(np.mean(vals)) if vals else float("nan")

    return DeviationStudy(
        problem=problem,
        scale=scale.name,
        labels=labels,
        sizes=sizes,
        mean_deviation=means,
        runs=runs,
        report=report,
    )
