"""Cross-generation speedup surface: the table the paper could not run.

The paper's speedup results are pinned to one device (the GT 560M).  With
the device-profile registry the modeled device is a parameter, so this
study sweeps the parallel SA over job sizes *and* GPU generations and
reports modeled runtime and speedup per (n, generation) cell -- the
speedup-vs-n-vs-generation surface.

Two invariants make the table meaningful (both are asserted in tests):

* **Quality is profile-independent** -- the search trajectory depends only
  on the seed and geometry, never on the timing model, so every
  generation's column reports the same objectives; only modeled runtimes
  move.
* **Internal consistency** -- within a column, speedup grows with n (the
  serial reference is O(n) per evaluation while the ensemble amortizes
  transfers and launch overhead).  Across columns the surface is honest
  about occupancy: transfers always improve with generation, but the
  paper's few-block launch cannot fill a 100+-SM part, so a wide
  datacenter GPU can model *slower* than a clocked-up gaming part at
  this geometry.  That underutilization effect is real (and pinned in
  ``tests/test_calibration.py``); filling the device is future work the
  table motivates.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.speedup import _serial_sa_time
from repro.experiments.tables import render_table
from repro.gpusim.profiles import get_profile
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.resilience import ResilientRunner, RunReport, WorkUnit

__all__ = [
    "SURFACE_PROFILES",
    "DeviceSurfaceCell",
    "DeviceSurfaceStudy",
    "run_device_surface_study",
]

#: Generations swept by default: the paper's device, the Kepler its text
#: claims, and two modern points (at least three generations, per the
#: study's purpose).
SURFACE_PROFILES = ("gt560m", "k20", "pascal", "ampere")


@dataclass(frozen=True)
class DeviceSurfaceCell:
    """One (size, generation) point of the surface."""

    size: int
    profile: str
    device_name: str
    objective: float
    serial_cpu_s: float
    modeled_gpu_s: float
    modeled_kernel_s: float
    modeled_memcpy_s: float

    @property
    def speedup(self) -> float:
        """Serial CPU time over this generation's modeled device time."""
        return self.serial_cpu_s / self.modeled_gpu_s


@dataclass
class DeviceSurfaceStudy:
    """The full speedup-vs-n-vs-generation surface for one problem."""

    problem: str
    scale: str
    iterations: int
    sizes: tuple[int, ...]
    profiles: tuple[str, ...]
    cells: dict[tuple[int, str], DeviceSurfaceCell] = field(
        default_factory=dict
    )
    report: RunReport | None = None

    def matrix(self, attr: str) -> np.ndarray:
        """``(len(sizes), len(profiles))`` matrix of a cell attribute."""
        out = np.full((len(self.sizes), len(self.profiles)), np.nan)
        for i, n in enumerate(self.sizes):
            for j, prof in enumerate(self.profiles):
                cell = self.cells.get((n, prof))
                if cell is not None:
                    out[i, j] = getattr(cell, attr)
        return out

    def _column_labels(self) -> list[str]:
        return [get_profile(p).spec.name for p in self.profiles]

    def render(self) -> str:
        """Speedup and modeled-runtime tables across generations."""
        labels = self._column_labels()
        speedup = self.matrix("speedup")
        gpu = self.matrix("modeled_gpu_s")
        t1 = render_table(
            ["Jobs", *labels],
            [[n, *speedup[i]] for i, n in enumerate(self.sizes)],
            title=(
                f"Modeled speedup vs serial CPU by GPU generation "
                f"({self.problem.upper()}, SA_{self.iterations}, "
                f"scale={self.scale})"
            ),
        )
        t2 = render_table(
            ["Jobs", *labels],
            [[n, *gpu[i]] for i, n in enumerate(self.sizes)],
            title="Modeled device runtime (seconds, transfers included)",
        )
        obj = self.matrix("objective")
        consistent = bool(np.all(
            np.nanmax(obj, axis=1) == np.nanmin(obj, axis=1)
        )) if obj.size else True
        note = (
            "Objectives identical across generations (timing-only model)."
            if consistent else
            "WARNING: objectives differ across generations -- the timing "
            "model leaked into the search trajectory."
        )
        sections = [t1, t2, note]
        if self.report is not None:
            footnote = self.report.footnote()
            if footnote:
                sections.append(footnote)
        return "\n\n".join(sections)


def _surface_cell_fn(
    instance,
    n: int,
    profile_key: str,
    iterations: int,
    scale: ExperimentScale,
    references: dict[int, float],
    backend,
):
    """Work-unit body of one (size, generation) cell."""

    def run() -> dict:
        if n not in references:
            references[n] = _serial_sa_time(
                instance, iterations, scale.population
            )
        result = parallel_sa(
            instance,
            ParallelSAConfig(
                iterations=iterations,
                grid_size=scale.grid_size,
                block_size=scale.block_size,
                seed=31,
                device_profile=profile_key,
            ),
            backend=backend,
        )
        assert result.modeled_device_time_s is not None
        return asdict(DeviceSurfaceCell(
            size=n,
            profile=profile_key,
            device_name=get_profile(profile_key).spec.name,
            objective=float(result.objective),
            serial_cpu_s=float(references[n]),
            modeled_gpu_s=float(result.modeled_device_time_s),
            modeled_kernel_s=float(result.modeled_kernel_time_s),
            modeled_memcpy_s=float(result.modeled_memcpy_time_s),
        ))

    return run


def run_device_surface_study(
    problem: str = "cdd",
    scale: ExperimentScale | None = None,
    runner: ResilientRunner | None = None,
    profiles: tuple[str, ...] = SURFACE_PROFILES,
) -> DeviceSurfaceStudy:
    """Sweep the parallel SA over job sizes x GPU generations.

    Every cell solves the identical instance with the identical seed --
    only the device profile changes -- so the columns differ purely in
    modeled time.  The serial CPU reference is measured once per size and
    shared by all generations, exactly as the speedup study pins one
    published CPU runtime per job count.
    """
    scale = scale or get_scale()
    for p in profiles:
        get_profile(p)  # fail fast, naming the unknown key
    runner = runner or ResilientRunner()
    iterations = scale.iterations_low
    study = DeviceSurfaceStudy(
        problem=problem, scale=scale.name, iterations=iterations,
        sizes=scale.sizes, profiles=tuple(profiles),
    )

    # The surface is *about* modeled timings: always solve on gpusim.
    backend = runner.solver_backend("gpusim")
    references: dict[int, float] = {}
    units: list[WorkUnit] = []
    for n in scale.sizes:
        instance = (
            biskup_instance(n, scale.h_factors[0], scale.k_values[0])
            if problem == "cdd"
            else ucddcp_instance(n, scale.k_values[0])
        )
        for prof in profiles:
            units.append(WorkUnit(
                key=f"{problem}_n{n}|{prof}",
                run=_surface_cell_fn(instance, n, prof, iterations, scale,
                                     references, backend),
            ))

    checkpoint = runner.checkpoint_for(
        f"device_surface_{problem}_{scale.name}"
    )
    report = runner.run_units(units, checkpoint)
    for outcome in report.completed:
        cell = DeviceSurfaceCell(**outcome.payload)
        study.cells[(cell.size, cell.profile)] = cell
    study.report = report
    return study
