"""CSV export of experiment data for external analysis/plotting.

The ASCII renders are for terminals; downstream users replotting the
figures want raw per-run data.  ``deviation_runs_csv`` and
``speedup_cells_csv`` serialize the studies; the benchmark suite drops the
CSVs next to the text reports in ``results/``.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.experiments.deviation import DeviationStudy
from repro.experiments.speedup import SpeedupStudy
from repro.resilience import atomic_write_text

__all__ = [
    "deviation_runs_csv",
    "speedup_cells_csv",
    "write_study_csvs",
]


def deviation_runs_csv(study: DeviationStudy) -> str:
    """Per-run rows of a deviation study as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([
        "instance", "size", "algorithm", "objective", "best_known",
        "deviation_pct", "wall_time_s", "modeled_device_time_s",
    ])
    for r in study.runs:
        writer.writerow([
            r.instance, r.size, r.algorithm, r.objective, r.best_known,
            f"{r.deviation_pct:.6f}", f"{r.wall_time_s:.6f}",
            "" if r.modeled_device_time_s is None
            else f"{r.modeled_device_time_s:.6f}",
        ])
    return buf.getvalue()


def speedup_cells_csv(study: SpeedupStudy) -> str:
    """Per-cell rows of a speedup study as CSV text."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow([
        "size", "algorithm", "iterations", "serial_cpu_s", "modeled_gpu_s",
        "measured_wall_s", "speedup_modeled", "speedup_measured",
    ])
    for n in study.sizes:
        for lab in study.labels:
            c = study.cells.get((n, lab))
            if c is None:  # failed cell: absent from the CSV, noted in render
                continue
            writer.writerow([
                c.size, c.algorithm, c.iterations,
                f"{c.serial_cpu_s:.6f}", f"{c.modeled_gpu_s:.6f}",
                f"{c.measured_wall_s:.6f}",
                f"{c.speedup_modeled:.4f}", f"{c.speedup_measured:.4f}",
            ])
    return buf.getvalue()


def write_study_csvs(
    study: DeviationStudy | SpeedupStudy,
    results_dir: Path | str = "results",
) -> Path:
    """Write the study's CSV next to the text reports; returns the path."""
    results = Path(results_dir)
    results.mkdir(parents=True, exist_ok=True)
    if isinstance(study, DeviationStudy):
        path = results / f"{study.problem}_deviation_runs.csv"
        atomic_write_text(path, deviation_runs_csv(study))
    else:
        path = results / f"{study.problem}_speedup_cells.csv"
        atomic_write_text(path, speedup_cells_csv(study))
    return path
