"""The paper's published numbers, verbatim, for side-by-side reporting.

Sources: Tables II--V and the explicitly quoted runtimes in Section VIII of
Awasthi et al., IPDPSW 2016.  The experiment renderers print our measured
values next to these so EXPERIMENTS.md can record paper-vs-measured for
every table and figure.
"""

from __future__ import annotations

__all__ = [
    "TABLE2_CDD_DEVIATION",
    "TABLE3_CDD_SPEEDUP_VS_7",
    "TABLE3_CDD_SPEEDUP_VS_18",
    "TABLE4_UCDDCP_DEVIATION",
    "TABLE5_UCDDCP_SPEEDUP",
    "PAPER_JOB_SIZES",
    "PAPER_RUNTIME_ANCHORS",
]

PAPER_JOB_SIZES = (10, 20, 50, 100, 200, 500, 1000)

# Table II: average %deviation, CDD, relative to Lässig et al. [7].
# Columns: SA_1000, SA_5000, DPSO_1000, DPSO_5000.
TABLE2_CDD_DEVIATION: dict[int, tuple[float, float, float, float]] = {
    10: (0.159, 0.0, 0.0, 0.0),
    20: (0.793, 0.392, 0.141, 0.033),
    50: (0.442, 0.243, 0.652, 0.146),
    100: (0.386, 0.307, 2.048, 0.463),
    200: (0.437, 0.388, 4.854, 1.148),
    500: (0.734, 0.354, 15.562, 3.807),
    1000: (1.904, 0.401, 32.376, 9.342),
}

# Table III: speedups of the four parallel algorithms for the CDD,
# relative to [7] (Lässig et al.) and [18] (Biskup & Feldmann).
TABLE3_CDD_SPEEDUP_VS_7: dict[int, tuple[float, float, float, float]] = {
    10: (1.9, 0.5, 1.2, 0.5),
    20: (3.8, 1.1, 1.9, 0.6),
    50: (11.8, 2.9, 4.8, 1.2),
    100: (40.6, 9.2, 12.7, 3.0),
    200: (47.7, 10.4, 14.2, 3.1),
    500: (94.7, 19.7, 23.6, 5.4),
    1000: (111.2, 21.9, 24.6, 5.6),
}

TABLE3_CDD_SPEEDUP_VS_18: dict[int, tuple[float, float, float, float]] = {
    10: (4.7, 1.3, 2.9, 1.2),
    20: (227.6, 65.4, 113.8, 36.7),
    50: (264.5, 65.1, 107.7, 28.0),
    100: (619.3, 141.7, 195.1, 46.6),
    200: (1137.1, 248.7, 338.7, 75.6),
    500: (1971.4, 410.2, 492.2, 113.5),
    1000: (3214.8, 635.1, 711.8, 164.2),
}

# Table IV: average %deviation, UCDDCP, relative to Awasthi et al. [8]
# (negative = improvement over the best known solution).
TABLE4_UCDDCP_DEVIATION: dict[int, tuple[float, float, float, float]] = {
    10: (0.0, 0.0, 0.0, 0.0),
    20: (1.233, 0.151, -0.094, -0.083),
    50: (0.105, -0.142, 0.005, -0.382),
    100: (0.131, -0.191, 1.705, 0.048),
    200: (0.356, -0.136, 5.472, 1.153),
    500: (1.465, -0.777, 17.514, 3.544),
    1000: (6.801, 0.265, 36.015, 10.928),
}

# Table V: speedups, UCDDCP, relative to [8].
TABLE5_UCDDCP_SPEEDUP: dict[int, tuple[float, float, float, float]] = {
    10: (0.459, 0.119, 0.436, 0.189),
    20: (1.225, 0.289, 1.043, 0.327),
    50: (3.701, 0.841, 2.480, 0.642),
    100: (9.226, 2.012, 5.229, 1.247),
    200: (23.600, 5.039, 11.866, 2.662),
    500: (43.060, 8.981, 18.494, 4.138),
    1000: (47.383, 9.721, 18.38, 4.167),
}

# Explicit runtime anchors quoted in the text (seconds), used to calibrate
# the device cost model:
#   - CDD, n=1000: SA_5000 ~ 17.26 s on the GT 560M; CPU [7] ~ 379.36 s.
#   - UCDDCP, n=50: SA_1000 ~ 0.67 s (3.7x faster than CPU [8]).
PAPER_RUNTIME_ANCHORS: dict[str, float] = {
    "cdd_sa5000_n1000_gpu_s": 17.26,
    "cdd_cpu7_n1000_s": 379.36,
    "ucddcp_sa1000_n50_gpu_s": 0.67,
}

PAPER_ALGO_LABELS = ("SA_1000", "SA_5000", "DPSO_1000", "DPSO_5000")
