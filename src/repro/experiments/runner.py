"""Experiment dispatch: run any table/figure by id and print its report.

Every experiment accepts an optional :class:`repro.resilience.ResilientRunner`
which supplies retries, checkpoint/resume and fault injection; without one
each study builds a default runner (no checkpointing, same results).  The
``device_profile`` argument selects the modeled GPU generation for the
studies whose measurement *is* the modeled timing (speedup/runtime); the
quality studies (deviation, ablations) ignore it -- their results are
profile-independent by construction.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.ablation import (
    run_blocksize_ablation,
    run_cooling_ablation,
    run_coupling_ablation,
    run_refresh_ablation,
    run_strategy_ablation,
    run_sync_vs_async,
    run_texture_ablation,
)
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.deviation import run_deviation_study
from repro.experiments.device_surface import run_device_surface_study
from repro.experiments.runtime import run_runtime_curves, run_runtime_surface
from repro.experiments.speedup import run_speedup_study
from repro.gpusim.profiles import DEFAULT_PROFILE
from repro.resilience import ResilientRunner

__all__ = ["EXPERIMENTS", "run_experiment"]

_Runner = ResilientRunner | None


def _table2(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_deviation_study("cdd", scale, runner=runner).render()


def _table3(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_speedup_study(
        "cdd", scale, runner=runner, device_profile=profile
    ).render()


def _table4(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_deviation_study("ucddcp", scale, runner=runner).render()


def _table5(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_speedup_study(
        "ucddcp", scale, runner=runner, device_profile=profile
    ).render()


def _fig11(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_runtime_surface(scale, runner=runner).render()


def _fig14(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_runtime_curves("cdd", scale, runner=runner).render()


def _fig16(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_runtime_curves("ucddcp", scale, runner=runner).render()


def _device_surface(
    scale: ExperimentScale, runner: _Runner, profile: str
) -> str:
    # The surface sweeps *all* generations by definition; the single
    # --device-profile flag is meaningless here and ignored.
    return run_device_surface_study("cdd", scale, runner=runner).render()


def _blocksize(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_blocksize_ablation(scale, runner=runner).render()


def _sync(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_sync_vs_async(scale, runner=runner).render()


def _cooling(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_cooling_ablation(scale, runner=runner).render()


def _texture(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_texture_ablation(scale, runner=runner).render()


def _coupling(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_coupling_ablation(scale, runner=runner).render()


def _refresh(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_refresh_ablation(scale, runner=runner).render()


def _strategy(scale: ExperimentScale, runner: _Runner, profile: str) -> str:
    return run_strategy_ablation(scale, runner=runner).render()


EXPERIMENTS: dict[
    str, Callable[[ExperimentScale, _Runner, str], str]
] = {
    "table2": _table2,
    "fig12": _table2,  # Figure 12 is the bar chart of Table II
    "table3": _table3,
    "fig13": _table3,  # Figure 13 is the bar chart of Table III
    "table4": _table4,
    "fig15": _table4,  # Figure 15 is the bar chart of Table IV
    "table5": _table5,
    "fig17": _table5,  # Figure 17 is the bar chart of Table V
    "fig11": _fig11,
    "fig14": _fig14,
    "fig16": _fig16,
    "device_surface": _device_surface,
    "blocksize": _blocksize,
    "sync": _sync,
    "cooling": _cooling,
    "texture": _texture,
    "coupling": _coupling,
    "refresh": _refresh,
    "strategy": _strategy,
}


def run_experiment(
    name: str,
    scale: ExperimentScale | None = None,
    runner: ResilientRunner | None = None,
    device_profile: str = DEFAULT_PROFILE,
) -> str:
    """Run experiment ``name`` and return its rendered report."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(scale or get_scale(), runner, device_profile)
