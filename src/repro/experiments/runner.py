"""Experiment dispatch: run any table/figure by id and print its report."""

from __future__ import annotations

from typing import Callable

from repro.experiments.ablation import (
    run_blocksize_ablation,
    run_cooling_ablation,
    run_coupling_ablation,
    run_refresh_ablation,
    run_strategy_ablation,
    run_sync_vs_async,
    run_texture_ablation,
)
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.deviation import run_deviation_study
from repro.experiments.runtime import run_runtime_curves, run_runtime_surface
from repro.experiments.speedup import run_speedup_study

__all__ = ["EXPERIMENTS", "run_experiment"]


def _table2(scale: ExperimentScale) -> str:
    return run_deviation_study("cdd", scale).render()


def _table3(scale: ExperimentScale) -> str:
    return run_speedup_study("cdd", scale).render()


def _table4(scale: ExperimentScale) -> str:
    return run_deviation_study("ucddcp", scale).render()


def _table5(scale: ExperimentScale) -> str:
    return run_speedup_study("ucddcp", scale).render()


def _fig11(scale: ExperimentScale) -> str:
    return run_runtime_surface(scale).render()


def _fig14(scale: ExperimentScale) -> str:
    return run_runtime_curves("cdd", scale).render()


def _fig16(scale: ExperimentScale) -> str:
    return run_runtime_curves("ucddcp", scale).render()


def _blocksize(scale: ExperimentScale) -> str:
    return run_blocksize_ablation(scale).render()


def _sync(scale: ExperimentScale) -> str:
    return run_sync_vs_async(scale).render()


def _cooling(scale: ExperimentScale) -> str:
    return run_cooling_ablation(scale).render()


def _texture(scale: ExperimentScale) -> str:
    return run_texture_ablation(scale).render()


def _coupling(scale: ExperimentScale) -> str:
    return run_coupling_ablation(scale).render()


def _refresh(scale: ExperimentScale) -> str:
    return run_refresh_ablation(scale).render()


def _strategy(scale: ExperimentScale) -> str:
    return run_strategy_ablation(scale).render()


EXPERIMENTS: dict[str, Callable[[ExperimentScale], str]] = {
    "table2": _table2,
    "fig12": _table2,  # Figure 12 is the bar chart of Table II
    "table3": _table3,
    "fig13": _table3,  # Figure 13 is the bar chart of Table III
    "table4": _table4,
    "fig15": _table4,  # Figure 15 is the bar chart of Table IV
    "table5": _table5,
    "fig17": _table5,  # Figure 17 is the bar chart of Table V
    "fig11": _fig11,
    "fig14": _fig14,
    "fig16": _fig16,
    "blocksize": _blocksize,
    "sync": _sync,
    "cooling": _cooling,
    "texture": _texture,
    "coupling": _coupling,
    "refresh": _refresh,
    "strategy": _strategy,
}


def run_experiment(name: str, scale: ExperimentScale | None = None) -> str:
    """Run experiment ``name`` and return its rendered report."""
    try:
        fn = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return fn(scale or get_scale())
