"""Runtime studies: the Figure 11 surface and the Figure 14/16 curves.

Figure 11 plots the runtime of the parallel UCDDCP fitness evaluations as a
function of the thread count (population) and the number of generations.
The surface is regenerated from the device model directly: one fitness
launch per thread count gives the per-generation kernel duration (including
the stepwise block-wave behaviour as threads exceed what the SMs co-run),
which scales linearly in the generation count.

Figures 14/16 (runtime of the four parallel variants and the serial CPU
implementation versus job size) reuse the measurement pass of
:mod:`repro.experiments.speedup`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.ascii_plot import line_plot
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.speedup import SpeedupStudy, run_speedup_study
from repro.experiments.tables import render_table
from repro.gpusim.device import Device
from repro.gpusim.launch import linear_config
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import make_ucddcp_fitness_kernel

__all__ = [
    "RuntimeSurface",
    "RuntimeCurves",
    "run_runtime_surface",
    "run_runtime_curves",
]


@dataclass
class RuntimeSurface:
    """Figure 11 data: modeled seconds per (thread count, generations)."""

    n_jobs: int
    thread_counts: tuple[int, ...]
    generations: tuple[int, ...]
    seconds: np.ndarray  # shape (len(thread_counts), len(generations))
    per_launch_s: np.ndarray  # shape (len(thread_counts),)

    def render(self) -> str:
        """The surface as a table plus per-thread-count launch durations."""
        rows = [
            [t, *self.seconds[i]] for i, t in enumerate(self.thread_counts)
        ]
        tab = render_table(
            ["Threads \\ Gens", *self.generations], rows,
            title=(
                f"Fig 11 analogue: modeled fitness-evaluation time (s), "
                f"UCDDCP n={self.n_jobs}"
            ),
        )
        series = {
            f"{g} gens": self.seconds[:, j].tolist()
            for j, g in enumerate(self.generations)
        }
        fig = line_plot(
            list(self.thread_counts), series, logy=True,
            title="runtime vs threads (one line per generation count)",
        )
        return "\n\n".join((tab, fig))


def run_runtime_surface(
    scale: ExperimentScale | None = None,
    block_size: int = 192,
) -> RuntimeSurface:
    """Regenerate the Figure 11 surface at the scale's grid."""
    scale = scale or get_scale()
    n = scale.fig11_n
    instance = ucddcp_instance(n, 1)
    thread_counts = scale.fig11_thread_counts
    generations = scale.fig11_generations

    per_launch = np.zeros(len(thread_counts))
    kernel = make_ucddcp_fitness_kernel()
    for i, threads in enumerate(thread_counts):
        device = Device(seed=1)
        data = DeviceProblemData(device, instance)
        seqs = device.malloc((threads, n), np.int32, "sequences")
        out = device.malloc(threads, np.float64, "fitness")
        rng = np.random.default_rng(7)
        device.memcpy_htod(
            seqs, np.argsort(rng.random((threads, n)), axis=1).astype(np.int32)
        )
        cfg = linear_config(threads, min(block_size, threads))
        device.reset_clocks()  # isolate the kernel from the staging cost
        device.launch(kernel, cfg, seqs, data.p, data.m, data.a, data.b,
                      data.g, out)
        device.synchronize()
        per_launch[i] = device.profiler.kernel_time()

    seconds = per_launch[:, None] * np.asarray(generations)[None, :]
    return RuntimeSurface(
        n_jobs=n,
        thread_counts=thread_counts,
        generations=generations,
        seconds=seconds,
        per_launch_s=per_launch,
    )


@dataclass
class RuntimeCurves:
    """Figure 14/16 data, derived from a :class:`SpeedupStudy`."""

    study: SpeedupStudy

    def render(self) -> str:
        """Runtime table + ASCII figure."""
        return self.study.render_runtime_curves()


def run_runtime_curves(
    problem: str = "cdd", scale: ExperimentScale | None = None
) -> RuntimeCurves:
    """Regenerate the Figure 14 (CDD) or 16 (UCDDCP) curves."""
    return RuntimeCurves(study=run_speedup_study(problem, scale))
