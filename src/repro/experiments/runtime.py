"""Runtime studies: the Figure 11 surface and the Figure 14/16 curves.

Figure 11 plots the runtime of the parallel UCDDCP fitness evaluations as a
function of the thread count (population) and the number of generations.
The surface is regenerated from the device model directly: one fitness
launch per thread count gives the per-generation kernel duration (including
the stepwise block-wave behaviour as threads exceed what the SMs co-run),
which scales linearly in the generation count.

Figures 14/16 (runtime of the four parallel variants and the serial CPU
implementation versus job size) reuse the measurement pass of
:mod:`repro.experiments.speedup`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.ascii_plot import line_plot
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.speedup import SpeedupStudy, run_speedup_study
from repro.experiments.tables import render_table
from repro.gpusim.device import Device
from repro.gpusim.launch import linear_config
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import make_ucddcp_fitness_kernel
from repro.resilience import ResilientRunner, RunReport, WorkUnit

__all__ = [
    "RuntimeSurface",
    "RuntimeCurves",
    "run_runtime_surface",
    "run_runtime_curves",
]


@dataclass
class RuntimeSurface:
    """Figure 11 data: modeled seconds per (thread count, generations)."""

    n_jobs: int
    thread_counts: tuple[int, ...]
    generations: tuple[int, ...]
    seconds: np.ndarray  # shape (len(thread_counts), len(generations))
    per_launch_s: np.ndarray  # shape (len(thread_counts),)
    #: Resilience report of the measurement pass (failed thread counts are
    #: NaN rows, listed in the rendered footnote).
    report: RunReport | None = None

    def render(self) -> str:
        """The surface as a table plus per-thread-count launch durations."""
        rows = [
            [t, *self.seconds[i]] for i, t in enumerate(self.thread_counts)
        ]
        tab = render_table(
            ["Threads \\ Gens", *self.generations], rows,
            title=(
                f"Fig 11 analogue: modeled fitness-evaluation time (s), "
                f"UCDDCP n={self.n_jobs}"
            ),
        )
        series = {
            f"{g} gens": self.seconds[:, j].tolist()
            for j, g in enumerate(self.generations)
        }
        fig = line_plot(
            list(self.thread_counts), series, logy=True,
            title="runtime vs threads (one line per generation count)",
        )
        sections = [tab, fig]
        if self.report is not None:
            footnote = self.report.footnote()
            if footnote:
                sections.append(footnote)
        return "\n\n".join(sections)


def _surface_point_fn(instance, n: int, threads: int, block_size: int,
                      fault_plan):
    """Work-unit body of one thread-count point of the Fig 11 surface."""

    def run() -> dict:
        kernel = make_ucddcp_fitness_kernel()
        device = Device(seed=1, fault_plan=fault_plan)
        data = DeviceProblemData(device, instance)
        seqs = device.malloc((threads, n), np.int32, "sequences")
        out = device.malloc(threads, np.float64, "fitness")
        rng = np.random.default_rng(7)
        device.memcpy_htod(
            seqs, np.argsort(rng.random((threads, n)), axis=1).astype(np.int32)
        )
        cfg = linear_config(threads, min(block_size, threads))
        device.reset_clocks()  # isolate the kernel from the staging cost
        device.launch(kernel, cfg, seqs, data.p, data.m, data.a, data.b,
                      data.g, out)
        device.synchronize()
        return {
            "threads": threads,
            "per_launch_s": float(device.profiler.kernel_time()),
        }

    return run


def run_runtime_surface(
    scale: ExperimentScale | None = None,
    block_size: int = 192,
    runner: ResilientRunner | None = None,
) -> RuntimeSurface:
    """Regenerate the Figure 11 surface at the scale's grid.

    Each thread count is one work unit of ``runner``; a failed point
    leaves a NaN row in the surface instead of aborting the figure.
    """
    scale = scale or get_scale()
    runner = runner or ResilientRunner()
    n = scale.fig11_n
    instance = ucddcp_instance(n, 1)
    thread_counts = scale.fig11_thread_counts
    generations = scale.fig11_generations

    units = [
        WorkUnit(
            key=f"ucddcp_n{n}|threads{threads}",
            run=_surface_point_fn(instance, n, threads, block_size,
                                  runner.fault_plan),
        )
        for threads in thread_counts
    ]
    checkpoint = runner.checkpoint_for(f"runtime_surface_{scale.name}")
    report = runner.run_units(units, checkpoint)

    per_launch = np.full(len(thread_counts), np.nan)
    by_threads = {
        o.payload["threads"]: o.payload["per_launch_s"]
        for o in report.completed
    }
    for i, threads in enumerate(thread_counts):
        if threads in by_threads:
            per_launch[i] = by_threads[threads]

    seconds = per_launch[:, None] * np.asarray(generations)[None, :]
    return RuntimeSurface(
        n_jobs=n,
        thread_counts=thread_counts,
        generations=generations,
        seconds=seconds,
        per_launch_s=per_launch,
        report=report,
    )


@dataclass
class RuntimeCurves:
    """Figure 14/16 data, derived from a :class:`SpeedupStudy`."""

    study: SpeedupStudy

    def render(self) -> str:
        """Runtime table + ASCII figure."""
        return self.study.render_runtime_curves()


def run_runtime_curves(
    problem: str = "cdd",
    scale: ExperimentScale | None = None,
    runner: ResilientRunner | None = None,
) -> RuntimeCurves:
    """Regenerate the Figure 14 (CDD) or 16 (UCDDCP) curves."""
    return RuntimeCurves(study=run_speedup_study(problem, scale,
                                                 runner=runner))
