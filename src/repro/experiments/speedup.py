"""Speedup study: Tables III & V / Figures 13 & 17 (and data for 14 & 16).

The paper defines speedup as CPU-implementation wall time divided by the
total parallel runtime *including all host<->device transfers*.  Our CPU
reference (see DESIGN.md) is the matched-work serial baseline: the identical
ensemble (population x generations sequence evaluations plus operator
overhead) executed as straightforward sequential pure-Python code -- the
honest stand-in for the sequential implementations of [7]/[8]/[18] whose
testbeds are unavailable.  Two speedups are reported per algorithm:

* ``modeled``  -- serial CPU time / modeled device time (GT 560M by
  default; any registered profile via ``device_profile``);
* ``measured`` -- serial CPU time / measured wall time of the vectorized
  ensemble on this host (no device model involved).

The serial baseline is *measured* (a calibration segment of the actual
serial algorithm is timed and scaled linearly to the full budget -- the
per-iteration cost of SA/DPSO is constant).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.parallel_dpso import ParallelDPSOConfig, parallel_dpso
from repro.core.parallel_sa import ParallelSAConfig, parallel_sa
from repro.core.sa import SerialSAConfig, sa_serial
from repro.experiments.ascii_plot import grouped_bar_chart, line_plot
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.paper_data import (
    PAPER_ALGO_LABELS,
    TABLE3_CDD_SPEEDUP_VS_7,
    TABLE5_UCDDCP_SPEEDUP,
)
from repro.experiments.tables import render_table
from repro.gpusim.profiles import DEFAULT_PROFILE, get_profile
from repro.instances.biskup import biskup_instance
from repro.instances.ucddcp_gen import ucddcp_instance
from repro.resilience import ResilientRunner, RunReport, WorkUnit

__all__ = ["SpeedupCell", "SpeedupStudy", "run_speedup_study"]

_CALIBRATION_ITERS = 150


@dataclass(frozen=True)
class SpeedupCell:
    """Timing results of one (size, algorithm) combination."""

    size: int
    algorithm: str
    iterations: int
    serial_cpu_s: float
    modeled_gpu_s: float
    measured_wall_s: float

    @property
    def speedup_modeled(self) -> float:
        """Serial CPU time over modeled device time."""
        return self.serial_cpu_s / self.modeled_gpu_s

    @property
    def speedup_measured(self) -> float:
        """Serial CPU time over measured vectorized wall time."""
        return self.serial_cpu_s / self.measured_wall_s


@dataclass
class SpeedupStudy:
    """All timing cells for one problem family."""

    problem: str
    scale: str
    labels: tuple[str, str, str, str]
    sizes: tuple[int, ...]
    #: Registered profile key of the modeled device and its display name.
    device_profile: str = DEFAULT_PROFILE
    device_name: str = "GeForce GT 560M"
    cells: dict[tuple[int, str], SpeedupCell] = field(default_factory=dict)
    #: Resilience report of the measurement pass (failed cells are NaN in
    #: the matrices and listed in the rendered footnote).
    report: RunReport | None = None

    def matrix(self, attr: str) -> np.ndarray:
        """``(len(sizes), 4)`` matrix of a cell attribute (NaN = failed)."""
        out = np.full((len(self.sizes), len(self.labels)), np.nan)
        for i, n in enumerate(self.sizes):
            for j, lab in enumerate(self.labels):
                cell = self.cells.get((n, lab))
                if cell is not None:
                    out[i, j] = getattr(cell, attr)
        return out

    def render(self) -> str:
        """Speedup tables (modeled + measured) next to the paper's table."""
        paper = (
            TABLE3_CDD_SPEEDUP_VS_7 if self.problem == "cdd"
            else TABLE5_UCDDCP_SPEEDUP
        )
        modeled = self.matrix("speedup_modeled")
        measured = self.matrix("speedup_measured")
        t1 = render_table(
            ["Jobs", *self.labels],
            [[n, *modeled[i]] for i, n in enumerate(self.sizes)],
            title=(
                f"Speedup, serial CPU vs modeled {self.device_name} "
                f"({self.problem.upper()}, scale={self.scale})"
            ),
        )
        t2 = render_table(
            ["Jobs", *self.labels],
            [[n, *measured[i]] for i, n in enumerate(self.sizes)],
            title="Speedup, serial CPU vs measured vectorized ensemble",
        )
        paper_rows = [[n, *paper[n]] for n in sorted(paper)]
        t3 = render_table(
            ["Jobs", *PAPER_ALGO_LABELS], paper_rows,
            title=(
                "Paper (Table III, vs [7])" if self.problem == "cdd"
                else "Paper (Table V, vs [8])"
            ),
        )
        chart = grouped_bar_chart(
            [str(n) for n in self.sizes],
            {lab: modeled[:, j].tolist() for j, lab in enumerate(self.labels)},
            title=(
                "Fig 13 analogue (CDD speedups)" if self.problem == "cdd"
                else "Fig 17 analogue (UCDDCP speedups)"
            ),
        )
        sections = [t1, t2, t3, chart]
        if self.report is not None:
            footnote = self.report.footnote()
            if footnote:
                sections.append(footnote)
        return "\n\n".join(sections)

    def render_runtime_curves(self) -> str:
        """Figure 14/16 analogue: runtimes of the four variants + CPU."""
        gpu = self.matrix("modeled_gpu_s")
        # The CPU curve of Figs 14/16: the serial reference at the high
        # iteration budget (NaN where that cell failed).
        cpu = np.array([
            c.serial_cpu_s if (c := self.cells.get((n, self.labels[1])))
            else np.nan
            for n in self.sizes
        ])
        series = {
            lab: gpu[:, j].tolist() for j, lab in enumerate(self.labels)
        }
        series["CPU serial"] = cpu.tolist()
        fig = line_plot(
            list(self.sizes), series, logy=True,
            title=(
                "Fig 14 analogue (CDD runtimes, s)" if self.problem == "cdd"
                else "Fig 16 analogue (UCDDCP runtimes, s)"
            ),
        )
        tab = render_table(
            ["Jobs", *self.labels, "CPU serial"],
            [
                [n, *gpu[i], cpu[i]] for i, n in enumerate(self.sizes)
            ],
            title="Runtime (seconds)",
        )
        return "\n\n".join((tab, fig))


def _serial_sa_time(instance, iterations: int, population: int) -> float:
    """Matched-work serial SA time, measured and linearly scaled."""
    calib = min(iterations, _CALIBRATION_ITERS)
    result = sa_serial(
        instance,
        SerialSAConfig(iterations=calib, seed=97, backend="python", t0=1.0),
    )
    per_iter = result.wall_time_s / calib
    return per_iter * iterations * population


_STUDY_CACHE: dict[tuple[str, str, str], SpeedupStudy] = {}


def _speedup_cell_fn(
    instance,
    n: int,
    algo: str,
    iters: int,
    label: str,
    scale: ExperimentScale,
    references: dict[int, float],
    backend,
    device_profile: str = DEFAULT_PROFILE,
):
    """Work-unit body of one (size, algorithm) timing cell.

    One *common, fixed* CPU reference per size, mirroring the paper:
    Table III/V divide a single published CPU runtime per job count
    ([7]/[8]) by each variant's GPU time.  We pin the reference to the
    matched-work serial SA at the *low* budget -- so the high-budget
    columns come out ~5x smaller and the DPSO columns shrink by exactly
    how much slower the DPSO kernels are, as in the paper.  The reference
    is measured once per size and shared by the size's four cells.
    """

    def run() -> dict:
        if n not in references:
            references[n] = _serial_sa_time(
                instance, scale.iterations_low, scale.population
            )
        cpu_reference = references[n]
        start = time.perf_counter()
        if algo == "sa":
            result = parallel_sa(
                instance,
                ParallelSAConfig(
                    iterations=iters,
                    grid_size=scale.grid_size,
                    block_size=scale.block_size,
                    seed=31,
                    device_profile=device_profile,
                ),
                backend=backend,
            )
        else:
            result = parallel_dpso(
                instance,
                ParallelDPSOConfig(
                    iterations=iters,
                    grid_size=scale.grid_size,
                    block_size=scale.block_size,
                    seed=31,
                    device_profile=device_profile,
                ),
                backend=backend,
            )
        wall = time.perf_counter() - start
        assert result.modeled_device_time_s is not None
        return asdict(SpeedupCell(
            size=n,
            algorithm=label,
            iterations=iters,
            serial_cpu_s=float(cpu_reference),
            modeled_gpu_s=float(result.modeled_device_time_s),
            measured_wall_s=float(wall),
        ))

    return run


def run_speedup_study(
    problem: str = "cdd",
    scale: ExperimentScale | None = None,
    use_cache: bool = True,
    runner: ResilientRunner | None = None,
    device_profile: str = DEFAULT_PROFILE,
) -> SpeedupStudy:
    """Collect timing cells for all sizes and the four algorithm variants.

    Results are memoized per (problem, scale, device_profile) within the
    process so the table and figure benches can share one measurement
    pass.  ``device_profile`` selects the modeled generation (timings
    change; objectives do not).  ``runner`` adds the resilience layer
    (retries, checkpoints, fault injection); note that checkpointed cells
    replay their originally *measured* timings verbatim -- restored wall
    times describe the interrupted run, as any timing log would.
    """
    scale = scale or get_scale()
    profile = get_profile(device_profile)
    key = (problem, scale.name, device_profile)
    if use_cache and key in _STUDY_CACHE:
        return _STUDY_CACHE[key]
    runner = runner or ResilientRunner()

    labels = (
        f"SA_{scale.iterations_low}",
        f"SA_{scale.iterations_high}",
        f"DPSO_{scale.iterations_low}",
        f"DPSO_{scale.iterations_high}",
    )
    study = SpeedupStudy(
        problem=problem, scale=scale.name, labels=labels, sizes=scale.sizes,
        device_profile=device_profile, device_name=profile.spec.name,
    )
    # Speedups are *about* the modeled device: always solve on gpusim.
    backend = runner.solver_backend("gpusim")
    references: dict[int, float] = {}
    variants = (
        ("sa", scale.iterations_low),
        ("sa", scale.iterations_high),
        ("dpso", scale.iterations_low),
        ("dpso", scale.iterations_high),
    )

    units: list[WorkUnit] = []
    for n in scale.sizes:
        instance = (
            biskup_instance(n, scale.h_factors[0], scale.k_values[0])
            if problem == "cdd"
            else ucddcp_instance(n, scale.k_values[0])
        )
        for j, (algo, iters) in enumerate(variants):
            units.append(WorkUnit(
                key=f"{problem}_n{n}|{labels[j]}",
                run=_speedup_cell_fn(instance, n, algo, iters, labels[j],
                                     scale, references, backend,
                                     device_profile),
            ))

    # Non-default profiles checkpoint separately; the default keeps the
    # historical name so existing checkpoints keep resuming.
    suffix = "" if device_profile == DEFAULT_PROFILE else f"_{device_profile}"
    checkpoint = runner.checkpoint_for(
        f"speedup_{problem}_{scale.name}{suffix}"
    )
    report = runner.run_units(units, checkpoint)
    for outcome in report.completed:
        cell = SpeedupCell(**outcome.payload)
        study.cells[(cell.size, cell.algorithm)] = cell
    study.report = report

    if use_cache:
        _STUDY_CACHE[key] = study
    return study
