"""Plain-text table rendering for the experiment reports."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_value"]


def format_value(v: Any) -> str:
    """Compact cell formatting (3 decimals for floats)."""
    if isinstance(v, float):
        if v != v:  # NaN
            return "-"
        if abs(v) >= 1000:
            return f"{v:.0f}"
        return f"{v:.3f}"
    return str(v)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
