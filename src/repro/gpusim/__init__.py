"""A simulated CUDA device: the GPGPU substrate of this reproduction.

The paper runs its metaheuristics on a GeForce GT 560M via CUDA.  No GPU is
available here, so this subpackage implements a faithful *model* of the CUDA
execution environment:

* :mod:`~repro.gpusim.device` -- device specifications (SM count, warp size,
  registers, shared memory, clocks, bandwidths; a GT 560M preset) and the
  :class:`~repro.gpusim.device.Device` object tying everything together.
* :mod:`~repro.gpusim.launch` -- ``dim3`` grids/blocks, launch validation and
  the occupancy calculator.
* :mod:`~repro.gpusim.memory` -- global/constant/shared memory with capacity
  accounting and host<->device transfer costs.
* :mod:`~repro.gpusim.kernel` -- the kernel abstraction.  Numerically a
  kernel executes *vectorized over the thread axis* (every thread runs the
  same program on its own data -- SIMT); its wall-clock cost on the modeled
  device is computed from an explicit cost model (cycles and bytes per
  thread, block waves per SM, occupancy, compute-vs-bandwidth roofline).
* :mod:`~repro.gpusim.stream` -- asynchronous kernel queues and device
  synchronization semantics.
* :mod:`~repro.gpusim.rng` -- a cuRAND stand-in: counter-based, per-thread
  reproducible random streams.
* :mod:`~repro.gpusim.reduction` -- atomic-minimum reduction with an L2
  serialization cost.
* :mod:`~repro.gpusim.profiler` -- an nvprof-like event recorder with
  per-timing-component attribution.
* :mod:`~repro.gpusim.timing` -- the pluggable analytic timing models
  (launch overhead, roofline execution, PCIe transfer, atomics) bundled
  into a :class:`~repro.gpusim.timing.TimingModel`.
* :mod:`~repro.gpusim.profiles` -- the named device-profile registry
  (GT 560M, generic Fermi, K20, Pascal, Ampere).

The split keeps *algorithmic results* exact (pure NumPy math, identical to
what each CUDA thread would compute) while *runtimes* come from the device
model; see DESIGN.md for the substitution rationale.
"""

from repro.gpusim.device import (
    GEFORCE_GT_560M,
    GENERIC_FERMI,
    TESLA_K20,
    Device,
    DeviceSpec,
)
from repro.gpusim.events import Event, elapsed_time, record_event
from repro.gpusim.errors import (
    CudaError,
    DeviceAllocationError,
    InvalidLaunchError,
)
from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel
from repro.gpusim.launch import (
    Dim3,
    LaunchConfig,
    Occupancy,
    linear_config,
    occupancy,
)
from repro.gpusim.memory import ConstantMemory, DeviceBuffer, GlobalMemory
from repro.gpusim.profiler import ProfileEvent, Profiler
from repro.gpusim.profiles import (
    DEFAULT_PROFILE,
    DeviceProfile,
    get_profile,
    profile_names,
    register_profile,
)
from repro.gpusim.rng import DeviceRNG
from repro.gpusim.stream import Stream
from repro.gpusim.timing import KernelTiming, TimingModel

__all__ = [
    "Device",
    "DeviceSpec",
    "GEFORCE_GT_560M",
    "GENERIC_FERMI",
    "TESLA_K20",
    "CudaError",
    "DeviceAllocationError",
    "InvalidLaunchError",
    "Kernel",
    "KernelCost",
    "ThreadContext",
    "kernel",
    "Dim3",
    "linear_config",
    "LaunchConfig",
    "Occupancy",
    "occupancy",
    "DeviceBuffer",
    "GlobalMemory",
    "ConstantMemory",
    "Profiler",
    "ProfileEvent",
    "TimingModel",
    "KernelTiming",
    "DeviceProfile",
    "DEFAULT_PROFILE",
    "register_profile",
    "get_profile",
    "profile_names",
    "DeviceRNG",
    "Stream",
    "Event",
    "record_event",
    "elapsed_time",
]
