"""Device specifications and the :class:`Device` runtime object.

The timing model charges each launch

    duration = launch_overhead
             + waves * max(compute_time_per_wave, memory_time_per_wave)
             + serialized_atomic_time

where ``waves = ceil(num_blocks / (num_sms * blocks_per_sm))`` comes from the
occupancy calculation (Section VIII of the paper reasons exactly in these
terms: "loading several threads within a block results in serial processing
of the blocks through the SM"), ``compute_time_per_wave`` converts the cost
model's per-thread cycles into SM-core time, and ``memory_time_per_wave``
charges the global-memory traffic against the device bandwidth (a roofline:
the slower of the two dominates).  Host<->device copies are charged PCIe
latency plus bytes/bandwidth, and run synchronously like ``cudaMemcpy``.

Presets: the paper's **GeForce GT 560M** (a Fermi-class mobile part -- the
paper's text calls it a "Kepler device", but the GT 560M is GF116 silicon;
we model the Fermi limits), a generic desktop Fermi, and a Tesla K20 for
contrast in the ablation benches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.gpusim.errors import CudaError, InvalidHandleError
from repro.gpusim.kernel import Kernel, ThreadContext
from repro.gpusim.launch import LaunchConfig, occupancy
from repro.gpusim.memory import (
    ConstantMemory,
    DeviceBuffer,
    GlobalMemory,
    transfer_time,
)
from repro.gpusim.profiler import Profiler
from repro.gpusim.rng import DeviceRNG
from repro.gpusim.stream import Stream

__all__ = [
    "DeviceSpec",
    "Device",
    "GEFORCE_GT_560M",
    "GENERIC_FERMI",
    "TESLA_K20",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU."""

    name: str
    compute_capability: tuple[int, int]
    num_sms: int
    cores_per_sm: int
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int
    shared_mem_per_block: int
    constant_mem_bytes: int
    global_mem_bytes: int
    core_clock_hz: float
    mem_bandwidth_bytes_per_s: float
    pcie_bandwidth_bytes_per_s: float
    pcie_latency_s: float
    kernel_launch_overhead_s: float
    atomic_op_s: float
    instructions_per_cycle: float = 1.0
    # Warps an SM needs resident to hide pipeline/memory latency; fewer
    # resident warps scale the issue rate down proportionally.
    latency_hiding_warps: int = 6
    # Fixed cost of scheduling one thread block onto an SM.
    block_dispatch_overhead_s: float = 0.3e-6
    max_block_dim: tuple[int, int, int] = (1024, 1024, 64)
    max_grid_dim: tuple[int, int, int] = (65535, 65535, 65535)

    @property
    def total_cores(self) -> int:
        """CUDA cores across all SMs."""
        return self.num_sms * self.cores_per_sm

    def with_overrides(self, **kwargs: Any) -> "DeviceSpec":
        """A copy of this spec with fields replaced (for ablations)."""
        return replace(self, **kwargs)


GEFORCE_GT_560M = DeviceSpec(
    name="GeForce GT 560M",
    compute_capability=(2, 1),
    num_sms=4,
    cores_per_sm=48,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    registers_per_sm=32768,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    constant_mem_bytes=64 * 1024,
    global_mem_bytes=2 * 1024**3,
    core_clock_hz=1.55e9,
    mem_bandwidth_bytes_per_s=60e9,
    pcie_bandwidth_bytes_per_s=6e9,  # PCIe 2.0 x16, effective
    pcie_latency_s=10e-6,
    kernel_launch_overhead_s=6e-6,
    atomic_op_s=40e-9,
)

GENERIC_FERMI = GEFORCE_GT_560M.with_overrides(
    name="Generic Fermi (desktop)",
    num_sms=8,
    core_clock_hz=1.4e9,
    mem_bandwidth_bytes_per_s=120e9,
)

TESLA_K20 = DeviceSpec(
    name="Tesla K20",
    compute_capability=(3, 5),
    num_sms=13,
    cores_per_sm=192,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    constant_mem_bytes=64 * 1024,
    global_mem_bytes=5 * 1024**3,
    core_clock_hz=0.705e9,
    mem_bandwidth_bytes_per_s=208e9,
    pcie_bandwidth_bytes_per_s=6e9,
    pcie_latency_s=10e-6,
    kernel_launch_overhead_s=5e-6,
    atomic_op_s=25e-9,
)


class Device:
    """A simulated CUDA device instance.

    Parameters
    ----------
    spec:
        Hardware description (use a preset or a customized copy).
    seed:
        Seed for the device RNG (the cuRAND stand-in).
    profile:
        Record every activity in :attr:`profiler`.
    fault_plan:
        Optional :class:`repro.resilience.FaultPlan`: deterministically
        raises a chosen :class:`CudaError` on the N-th launch/allocation,
        so the resilient execution layer can be tested against realistic
        device failures.
    """

    def __init__(
        self, spec: DeviceSpec = GEFORCE_GT_560M, seed: int = 0,
        profile: bool = True, fault_plan: Any | None = None,
    ) -> None:
        self.spec = spec
        self.fault_plan = fault_plan
        self.global_mem = GlobalMemory(spec.global_mem_bytes)
        self.constant_mem = ConstantMemory(spec.constant_mem_bytes)
        self.rng = DeviceRNG(seed)
        self.profiler = Profiler(enabled=profile)
        self.stream = Stream()
        self._host_time = 0.0
        self._syncthreads_count = 0
        self._launch_count = 0

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    @property
    def host_time(self) -> float:
        """Simulated host wall clock (advances on sync operations)."""
        return self._host_time

    @property
    def device_busy_until(self) -> float:
        """Simulated time when all queued device work completes."""
        return self.stream.tail_time

    def advance_host(self, seconds: float) -> None:
        """Charge host-side (CPU) work to the simulated wall clock."""
        if seconds < 0:
            raise ValueError("cannot rewind the host clock")
        self._host_time += seconds

    def synchronize(self) -> float:
        """Block the host until the device is idle; returns host time."""
        start = self._host_time
        self._host_time = self.stream.wait(self._host_time)
        self.profiler.record(
            "cudaDeviceSynchronize", "sync", start, self._host_time - start
        )
        return self._host_time

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def malloc(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        label: str = "",
    ) -> DeviceBuffer:
        """Allocate device global memory (see :class:`GlobalMemory`)."""
        if self.fault_plan is not None:
            self.fault_plan.record("malloc")
        return self.global_mem.alloc(shape, dtype, label)

    def memcpy_htod(self, buf: DeviceBuffer, host: np.ndarray) -> None:
        """Synchronous host-to-device copy; charges PCIe transfer time."""
        self._check_buffer(buf)
        host_arr = np.asarray(host)
        if host_arr.shape != buf.shape:
            raise ValueError(
                f"shape mismatch: host {host_arr.shape} vs device {buf.shape}"
            )
        buf.array[...] = host_arr
        self._charge_transfer("memcpy_htod", buf)

    def memcpy_dtoh(self, buf: DeviceBuffer) -> np.ndarray:
        """Synchronous device-to-host copy; returns a host-owned array."""
        self._check_buffer(buf)
        # D2H must wait for queued kernels that may still write the buffer.
        self.synchronize()
        out = buf.array.copy()
        self._charge_transfer("memcpy_dtoh", buf)
        return out

    def upload_constant(self, name: str, value: np.ndarray | float | int) -> None:
        """Place a symbol in constant memory (with its transfer charged)."""
        self.constant_mem.upload(name, value)
        nbytes = np.asarray(value).nbytes
        duration = transfer_time(
            nbytes, self.spec.pcie_bandwidth_bytes_per_s, self.spec.pcie_latency_s
        )
        self.profiler.record(
            f"constant:{name}", "memcpy_htod", self._host_time, duration,
            bytes=nbytes,
        )
        self._host_time += duration

    def _charge_transfer(self, kind: str, buf: DeviceBuffer) -> None:
        duration = transfer_time(
            buf.nbytes, self.spec.pcie_bandwidth_bytes_per_s,
            self.spec.pcie_latency_s,
        )
        self.profiler.record(
            f"{kind}:{buf.label or 'buffer'}", kind, self._host_time, duration,
            bytes=buf.nbytes,
        )
        self._host_time += duration
        # cudaMemcpy is synchronous: it also implies the device caught up.
        self._host_time = self.stream.wait(self._host_time)

    def _check_buffer(self, buf: DeviceBuffer) -> None:
        buf.check_alive()
        if not self.global_mem.owns(buf):
            raise InvalidHandleError("buffer belongs to a different device")

    # ------------------------------------------------------------------
    # Kernel launch
    # ------------------------------------------------------------------
    def launch(
        self, kern: Kernel, config: LaunchConfig, *args: Any
    ) -> ThreadContext:
        """Execute ``kern`` over the launch geometry and charge its cost.

        The kernel body runs immediately (vectorized); the modeled duration
        is enqueued on the stream (asynchronous semantics -- the host clock
        does not advance until a synchronizing call).
        """
        if self.fault_plan is not None:
            # Counted before any work, so an injected fault prevents the
            # launch exactly as a driver error would (nothing enqueued).
            self.fault_plan.record("launch")
        config.validate(self.spec)
        shared = kern.shared_bytes_for(*args) + config.shared_mem_bytes
        if shared > self.spec.shared_mem_per_block:
            raise CudaError(
                f"kernel {kern.name!r} needs {shared} B shared memory per "
                f"block; device limit is {self.spec.shared_mem_per_block} B"
            )
        occ = occupancy(
            self.spec, config.threads_per_block,
            kern.registers_per_thread, shared,
        )

        ctx = ThreadContext(
            config=config, constant=self.constant_mem,
            rng=self.rng, device=self,
        )
        for a in args:
            if isinstance(a, DeviceBuffer):
                self._check_buffer(a)
        kern.fn(ctx, *args)
        cost = kern.cost_model(ctx, *args)

        duration = self._model_duration(kern, config, occ.blocks_per_sm, cost,
                                        shared)
        start, _ = self.stream.enqueue(self._host_time, duration)
        self.profiler.record(
            kern.name, "kernel", start, duration,
            grid=config.grid.as_tuple(), block=config.block.as_tuple(),
            occupancy=occ.occupancy, limiter=occ.limiter,
            waves=self._waves(config.num_blocks, occ.blocks_per_sm),
            cycles_per_thread=cost.cycles_per_thread,
            bytes_per_thread=cost.global_bytes_per_thread,
            atomics=cost.atomic_ops,
        )
        self._launch_count += 1
        return ctx

    def _waves(self, num_blocks: int, blocks_per_sm: int) -> int:
        per_sm_blocks = math.ceil(num_blocks / self.spec.num_sms)
        return math.ceil(per_sm_blocks / blocks_per_sm)

    def _model_duration(
        self,
        kern: Kernel,
        config: LaunchConfig,
        blocks_per_sm: int,
        cost: "KernelCost",
        shared_bytes: int,
    ) -> float:
        """Roofline duration of one launch (see module docstring).

        The busiest SM processes ``ceil(num_blocks / num_sms)`` blocks over
        the kernel's lifetime; its total thread-cycles divided by the SM's
        issue rate give the compute time.  When fewer warps are resident
        than the latency-hiding depth, the issue rate degrades
        proportionally.  Global traffic is charged against the device
        bandwidth, shared-memory staging once per block, and each block
        pays a fixed dispatch cost -- which is what makes needlessly small
        blocks (duplicated staging, more dispatches) and needlessly large
        blocks (idle SMs) both lose to the paper's 192-thread sweet spot.
        """
        spec = self.spec
        tpb = config.threads_per_block
        per_sm_blocks = math.ceil(config.num_blocks / spec.num_sms)

        warps_per_block = math.ceil(tpb / spec.warp_size)
        resident_warps = min(per_sm_blocks, blocks_per_sm) * warps_per_block
        efficiency = min(1.0, resident_warps / spec.latency_hiding_warps)

        compute = (
            cost.cycles_per_thread * per_sm_blocks * tpb
            / (spec.cores_per_sm * spec.instructions_per_cycle)
            / spec.core_clock_hz
        ) / efficiency
        memory = (
            cost.global_bytes_per_thread * config.total_threads
            / spec.mem_bandwidth_bytes_per_s
        )
        # Shared-memory staging per block at ~4x global bandwidth (on-chip).
        staging = (
            cost.shared_bytes_per_block * config.num_blocks
            / (4.0 * spec.mem_bandwidth_bytes_per_s)
        )
        dispatch = config.num_blocks * spec.block_dispatch_overhead_s
        atomic_time = cost.atomic_ops * spec.atomic_op_s
        return (
            spec.kernel_launch_overhead_s
            + max(compute, memory)
            + staging
            + dispatch
            + atomic_time
        )

    # ------------------------------------------------------------------
    # Introspection hooks
    # ------------------------------------------------------------------
    def _note_syncthreads(self) -> None:
        self._syncthreads_count += 1

    @property
    def syncthreads_count(self) -> int:
        """How many block barriers kernels have executed (test hook)."""
        return self._syncthreads_count

    @property
    def launch_count(self) -> int:
        """Total kernels launched on this device."""
        return self._launch_count

    def reset_clocks(self) -> None:
        """Zero the simulated clocks and profiler (memory is kept)."""
        self._host_time = 0.0
        self.stream = Stream()
        self.profiler.reset()
