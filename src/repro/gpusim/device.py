"""Device specifications and the :class:`Device` runtime object.

The device charges time through an injected :class:`~repro.gpusim.timing.
TimingModel` bundle (launch overhead, the waves x max(compute, memory)
roofline, PCIe transfers, serialized atomics); the analytic math lives in
:mod:`repro.gpusim.timing`, the *hardware numbers* in a
:class:`DeviceSpec`, and named generations in the
:mod:`repro.gpusim.profiles` registry.  ``waves = ceil(num_blocks /
(num_sms * blocks_per_sm))`` comes from the occupancy calculation
(Section VIII of the paper reasons exactly in these terms: "loading
several threads within a block results in serial processing of the
blocks through the SM").  Host<->device copies are charged PCIe latency
plus bytes/bandwidth, and run synchronously like ``cudaMemcpy``.

Presets: the paper's **GeForce GT 560M** (a Fermi-class mobile part -- the
paper's text calls it a "Kepler device", but the GT 560M is GF116 silicon;
we model the Fermi limits), a generic desktop Fermi, and a Tesla K20 for
contrast in the ablation benches.  Newer generations (Pascal, Ampere) live
only in the profile registry -- prefer ``get_profile(name).spec`` over
importing these module constants directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.gpusim.errors import CudaError, InvalidHandleError
from repro.gpusim.kernel import Kernel, ThreadContext
from repro.gpusim.launch import LaunchConfig, occupancy
from repro.gpusim.memory import (
    ConstantMemory,
    DeviceBuffer,
    GlobalMemory,
)
from repro.gpusim.profiler import Profiler
from repro.gpusim.rng import DeviceRNG
from repro.gpusim.stream import Stream
from repro.gpusim.timing import TimingModel, waves

__all__ = [
    "DeviceSpec",
    "Device",
    "GEFORCE_GT_560M",
    "GENERIC_FERMI",
    "TESLA_K20",
]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU."""

    name: str
    compute_capability: tuple[int, int]
    num_sms: int
    cores_per_sm: int
    warp_size: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    registers_per_sm: int
    shared_mem_per_sm: int
    shared_mem_per_block: int
    constant_mem_bytes: int
    global_mem_bytes: int
    core_clock_hz: float
    mem_bandwidth_bytes_per_s: float
    pcie_bandwidth_bytes_per_s: float
    pcie_latency_s: float
    kernel_launch_overhead_s: float
    atomic_op_s: float
    instructions_per_cycle: float = 1.0
    # Warps an SM needs resident to hide pipeline/memory latency; fewer
    # resident warps scale the issue rate down proportionally.
    latency_hiding_warps: int = 6
    # Fixed cost of scheduling one thread block onto an SM.
    block_dispatch_overhead_s: float = 0.3e-6
    max_block_dim: tuple[int, int, int] = (1024, 1024, 64)
    max_grid_dim: tuple[int, int, int] = (65535, 65535, 65535)

    # Field groups for construction-time validation (names must stay in
    # sync with the dataclass fields above).
    _POSITIVE_INTS = (
        "num_sms", "cores_per_sm", "warp_size", "max_threads_per_block",
        "max_threads_per_sm", "max_blocks_per_sm", "registers_per_sm",
        "shared_mem_per_sm", "shared_mem_per_block", "constant_mem_bytes",
        "global_mem_bytes", "latency_hiding_warps",
    )
    _POSITIVE_FLOATS = (
        "core_clock_hz", "mem_bandwidth_bytes_per_s",
        "pcie_bandwidth_bytes_per_s", "instructions_per_cycle",
    )
    _NON_NEGATIVE_FLOATS = (
        "pcie_latency_s", "kernel_launch_overhead_s", "atomic_op_s",
        "block_dispatch_overhead_s",
    )

    def __post_init__(self) -> None:
        self._validate()

    def _fail(self, field: str, requirement: str, value: Any) -> None:
        raise ValueError(
            f"device spec {self.name!r}: field {field!r} {requirement} "
            f"(got {value!r})"
        )

    def _validate(self) -> None:
        """Reject physically meaningless specs at construction time.

        Mirrors the loader-side style of
        :func:`repro.instances.validate.validate_job_fields`: every
        violation names the spec and the offending field, so a typo in a
        new profile fails at registration instead of surfacing as a
        nonsense modeled runtime three layers downstream.
        """
        if not self.name:
            raise ValueError("device spec must have a non-empty name")
        for field in self._POSITIVE_INTS:
            v = getattr(self, field)
            if not isinstance(v, int) or v < 1:
                self._fail(field, "must be a positive integer", v)
        for field in self._POSITIVE_FLOATS:
            v = getattr(self, field)
            if not math.isfinite(v) or v <= 0:
                self._fail(field, "must be a positive finite number", v)
        for field in self._NON_NEGATIVE_FLOATS:
            v = getattr(self, field)
            if not math.isfinite(v) or v < 0:
                self._fail(field, "must be a non-negative finite number", v)
        if self.warp_size & (self.warp_size - 1):
            self._fail("warp_size", "must be a power of two", self.warp_size)
        if self.shared_mem_per_block > self.shared_mem_per_sm:
            self._fail(
                "shared_mem_per_block",
                f"must not exceed shared_mem_per_sm "
                f"({self.shared_mem_per_sm})",
                self.shared_mem_per_block,
            )
        if self.max_threads_per_block > self.max_threads_per_sm:
            self._fail(
                "max_threads_per_block",
                f"must not exceed max_threads_per_sm "
                f"({self.max_threads_per_sm})",
                self.max_threads_per_block,
            )
        if self.warp_size > self.max_threads_per_block:
            self._fail(
                "warp_size",
                f"must not exceed max_threads_per_block "
                f"({self.max_threads_per_block})",
                self.warp_size,
            )
        for field in ("compute_capability", "max_block_dim", "max_grid_dim"):
            dims = getattr(self, field)
            if any(not isinstance(d, int) or d < 0 for d in dims):
                self._fail(field, "must hold non-negative integers", dims)

    @property
    def total_cores(self) -> int:
        """CUDA cores across all SMs."""
        return self.num_sms * self.cores_per_sm

    def with_overrides(self, **kwargs: Any) -> "DeviceSpec":
        """A copy of this spec with fields replaced (for ablations)."""
        return replace(self, **kwargs)


GEFORCE_GT_560M = DeviceSpec(
    name="GeForce GT 560M",
    compute_capability=(2, 1),
    num_sms=4,
    cores_per_sm=48,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    registers_per_sm=32768,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    constant_mem_bytes=64 * 1024,
    global_mem_bytes=2 * 1024**3,
    core_clock_hz=1.55e9,
    mem_bandwidth_bytes_per_s=60e9,
    pcie_bandwidth_bytes_per_s=6e9,  # PCIe 2.0 x16, effective
    pcie_latency_s=10e-6,
    kernel_launch_overhead_s=6e-6,
    atomic_op_s=40e-9,
)

GENERIC_FERMI = GEFORCE_GT_560M.with_overrides(
    name="Generic Fermi (desktop)",
    num_sms=8,
    core_clock_hz=1.4e9,
    mem_bandwidth_bytes_per_s=120e9,
)

TESLA_K20 = DeviceSpec(
    name="Tesla K20",
    compute_capability=(3, 5),
    num_sms=13,
    cores_per_sm=192,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    registers_per_sm=65536,
    shared_mem_per_sm=48 * 1024,
    shared_mem_per_block=48 * 1024,
    constant_mem_bytes=64 * 1024,
    global_mem_bytes=5 * 1024**3,
    core_clock_hz=0.705e9,
    mem_bandwidth_bytes_per_s=208e9,
    pcie_bandwidth_bytes_per_s=6e9,
    pcie_latency_s=10e-6,
    kernel_launch_overhead_s=5e-6,
    atomic_op_s=25e-9,
)


class Device:
    """A simulated CUDA device instance.

    Parameters
    ----------
    spec:
        Hardware description (use a preset or a customized copy).
    seed:
        Seed for the device RNG (the cuRAND stand-in).
    profile:
        Record every activity in :attr:`profiler`.
    fault_plan:
        Optional :class:`repro.resilience.FaultPlan`: deterministically
        raises a chosen :class:`CudaError` on the N-th launch/allocation,
        so the resilient execution layer can be tested against realistic
        device failures.
    timing:
        The :class:`~repro.gpusim.timing.TimingModel` bundle all durations
        are charged through; ``None`` uses the calibrated analytic default
        (bit-identical to the pre-refactor inline model).
    """

    def __init__(
        self, spec: DeviceSpec = GEFORCE_GT_560M, seed: int = 0,
        profile: bool = True, fault_plan: Any | None = None,
        timing: TimingModel | None = None,
    ) -> None:
        self.spec = spec
        self.timing = timing if timing is not None else TimingModel.default()
        self.fault_plan = fault_plan
        self.global_mem = GlobalMemory(spec.global_mem_bytes)
        self.constant_mem = ConstantMemory(spec.constant_mem_bytes)
        self.rng = DeviceRNG(seed)
        self.profiler = Profiler(enabled=profile)
        self.stream = Stream()
        self._host_time = 0.0
        self._syncthreads_count = 0
        self._launch_count = 0

    # ------------------------------------------------------------------
    # Clocks
    # ------------------------------------------------------------------
    @property
    def host_time(self) -> float:
        """Simulated host wall clock (advances on sync operations)."""
        return self._host_time

    @property
    def device_busy_until(self) -> float:
        """Simulated time when all queued device work completes."""
        return self.stream.tail_time

    def advance_host(self, seconds: float) -> None:
        """Charge host-side (CPU) work to the simulated wall clock."""
        if seconds < 0:
            raise ValueError("cannot rewind the host clock")
        self._host_time += seconds

    def synchronize(self) -> float:
        """Block the host until the device is idle; returns host time."""
        start = self._host_time
        self._host_time = self.stream.wait(self._host_time)
        self.profiler.record(
            "cudaDeviceSynchronize", "sync", start, self._host_time - start
        )
        return self._host_time

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def malloc(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        label: str = "",
    ) -> DeviceBuffer:
        """Allocate device global memory (see :class:`GlobalMemory`)."""
        if self.fault_plan is not None:
            self.fault_plan.record("malloc")
        return self.global_mem.alloc(shape, dtype, label)

    def memcpy_htod(self, buf: DeviceBuffer, host: np.ndarray) -> None:
        """Synchronous host-to-device copy; charges PCIe transfer time."""
        self._check_buffer(buf)
        host_arr = np.asarray(host)
        if host_arr.shape != buf.shape:
            raise ValueError(
                f"shape mismatch: host {host_arr.shape} vs device {buf.shape}"
            )
        buf.array[...] = host_arr
        self._charge_transfer("memcpy_htod", buf)

    def memcpy_dtoh(self, buf: DeviceBuffer) -> np.ndarray:
        """Synchronous device-to-host copy; returns a host-owned array."""
        self._check_buffer(buf)
        # D2H must wait for queued kernels that may still write the buffer.
        self.synchronize()
        out = buf.array.copy()
        self._charge_transfer("memcpy_dtoh", buf)
        return out

    def upload_constant(self, name: str, value: np.ndarray | float | int) -> None:
        """Place a symbol in constant memory (with its transfer charged)."""
        self.constant_mem.upload(name, value)
        nbytes = np.asarray(value).nbytes
        duration = self.timing.transfer_time(self.spec, nbytes)
        self.profiler.record(
            f"constant:{name}", "memcpy_htod", self._host_time, duration,
            bytes=nbytes,
        )
        self._host_time += duration

    def _charge_transfer(self, kind: str, buf: DeviceBuffer) -> None:
        duration = self.timing.transfer_time(self.spec, buf.nbytes)
        self.profiler.record(
            f"{kind}:{buf.label or 'buffer'}", kind, self._host_time, duration,
            bytes=buf.nbytes,
        )
        self._host_time += duration
        # cudaMemcpy is synchronous: it also implies the device caught up.
        self._host_time = self.stream.wait(self._host_time)

    def _check_buffer(self, buf: DeviceBuffer) -> None:
        buf.check_alive()
        if not self.global_mem.owns(buf):
            raise InvalidHandleError("buffer belongs to a different device")

    # ------------------------------------------------------------------
    # Kernel launch
    # ------------------------------------------------------------------
    def launch(
        self, kern: Kernel, config: LaunchConfig, *args: Any
    ) -> ThreadContext:
        """Execute ``kern`` over the launch geometry and charge its cost.

        The kernel body runs immediately (vectorized); the modeled duration
        is enqueued on the stream (asynchronous semantics -- the host clock
        does not advance until a synchronizing call).
        """
        if self.fault_plan is not None:
            # Counted before any work, so an injected fault prevents the
            # launch exactly as a driver error would (nothing enqueued).
            self.fault_plan.record("launch")
        config.validate(self.spec)
        shared = kern.shared_bytes_for(*args) + config.shared_mem_bytes
        if shared > self.spec.shared_mem_per_block:
            raise CudaError(
                f"kernel {kern.name!r} needs {shared} B shared memory per "
                f"block; device limit is {self.spec.shared_mem_per_block} B"
            )
        occ = occupancy(
            self.spec, config.threads_per_block,
            kern.registers_per_thread, shared,
        )

        ctx = ThreadContext(
            config=config, constant=self.constant_mem,
            rng=self.rng, device=self,
        )
        for a in args:
            if isinstance(a, DeviceBuffer):
                self._check_buffer(a)
        kern.fn(ctx, *args)
        cost = kern.cost_model(ctx, *args)

        timing = self.timing.kernel_timing(
            self.spec, config, occ.blocks_per_sm, cost
        )
        duration = timing.total_s
        start, _ = self.stream.enqueue(self._host_time, duration)
        self.profiler.record(
            kern.name, "kernel", start, duration,
            grid=config.grid.as_tuple(), block=config.block.as_tuple(),
            occupancy=occ.occupancy, limiter=occ.limiter,
            waves=waves(self.spec, config.num_blocks, occ.blocks_per_sm),
            cycles_per_thread=cost.cycles_per_thread,
            bytes_per_thread=cost.global_bytes_per_thread,
            atomics=cost.atomic_ops,
            roofline_limiter=timing.limiter,
            components=timing.components(),
        )
        self._launch_count += 1
        return ctx

    # ------------------------------------------------------------------
    # Introspection hooks
    # ------------------------------------------------------------------
    def _note_syncthreads(self) -> None:
        self._syncthreads_count += 1

    @property
    def syncthreads_count(self) -> int:
        """How many block barriers kernels have executed (test hook)."""
        return self._syncthreads_count

    @property
    def launch_count(self) -> int:
        """Total kernels launched on this device."""
        return self._launch_count

    def reset_clocks(self) -> None:
        """Zero the simulated clocks and profiler (memory is kept)."""
        self._host_time = 0.0
        self.stream = Stream()
        self.profiler.reset()
