"""Error hierarchy of the simulated CUDA runtime.

Mirrors the spirit of the CUDA driver error codes: configuration problems
surface at launch time, allocation problems at ``malloc`` time, and misuse of
handles (freed buffers, foreign-device buffers) raises immediately rather
than corrupting state.
"""

from __future__ import annotations

__all__ = [
    "CudaError",
    "InvalidLaunchError",
    "DeviceAllocationError",
    "InvalidHandleError",
    "ConstantMemoryError",
    "DeviceUnavailableError",
    "LaunchTimeoutError",
]


class CudaError(RuntimeError):
    """Base class for all simulated CUDA runtime errors."""


class InvalidLaunchError(CudaError):
    """Launch configuration violates a device limit.

    Corresponds to ``cudaErrorInvalidConfiguration`` (e.g. more threads per
    block than the device supports, zero-sized dimensions, or a block using
    more shared memory or registers than available).
    """


class DeviceAllocationError(CudaError):
    """Global-memory allocation failed (``cudaErrorMemoryAllocation``)."""


class InvalidHandleError(CudaError):
    """A device buffer handle is stale or belongs to a different device."""


class ConstantMemoryError(CudaError):
    """Constant-memory capacity exceeded or unknown symbol referenced."""


class DeviceUnavailableError(CudaError):
    """The device is momentarily unusable (``cudaErrorDevicesUnavailable``).

    On real hardware this is a co-tenancy/driver condition that clears on
    its own; the resilient execution layer classifies it as *transient*
    and retries with backoff.
    """


class LaunchTimeoutError(CudaError):
    """A launch exceeded the watchdog (``cudaErrorLaunchTimeout``).

    Display-attached devices kill long kernels; a retry (possibly after
    the display load subsides) can succeed, so this is also *transient*.
    """
