"""Error hierarchy of the simulated CUDA runtime — and the shared
transient/fatal taxonomy.

Mirrors the spirit of the CUDA driver error codes: configuration problems
surface at launch time, allocation problems at ``malloc`` time, and misuse of
handles (freed buffers, foreign-device buffers) raises immediately rather
than corrupting state.

This module is also the home of the resilience layer's error taxonomy.
Every failure domain (the simulated device here, the process pool in
:mod:`repro.pool.errors`) registers its *transient* error types via
:func:`register_transient`; :func:`classify_error` then sorts any
exception into ``"transient"`` (a retry can plausibly clear it) or
``"fatal"`` (it cannot).  The registry lives at the bottom of the import
graph so leaf modules can self-register without circular imports.
"""

from __future__ import annotations

__all__ = [
    "CudaError",
    "InvalidLaunchError",
    "DeviceAllocationError",
    "InvalidHandleError",
    "ConstantMemoryError",
    "DeviceUnavailableError",
    "LaunchTimeoutError",
    "register_transient",
    "transient_types",
    "classify_error",
]


class CudaError(RuntimeError):
    """Base class for all simulated CUDA runtime errors."""


class InvalidLaunchError(CudaError):
    """Launch configuration violates a device limit.

    Corresponds to ``cudaErrorInvalidConfiguration`` (e.g. more threads per
    block than the device supports, zero-sized dimensions, or a block using
    more shared memory or registers than available).
    """


class DeviceAllocationError(CudaError):
    """Global-memory allocation failed (``cudaErrorMemoryAllocation``)."""


class InvalidHandleError(CudaError):
    """A device buffer handle is stale or belongs to a different device."""


class ConstantMemoryError(CudaError):
    """Constant-memory capacity exceeded or unknown symbol referenced."""


class DeviceUnavailableError(CudaError):
    """The device is momentarily unusable (``cudaErrorDevicesUnavailable``).

    On real hardware this is a co-tenancy/driver condition that clears on
    its own; the resilient execution layer classifies it as *transient*
    and retries with backoff.
    """


class LaunchTimeoutError(CudaError):
    """A launch exceeded the watchdog (``cudaErrorLaunchTimeout``).

    Display-attached devices kill long kernels; a retry (possibly after
    the display load subsides) can succeed, so this is also *transient*.
    """


# ---------------------------------------------------------------------------
# The transient/fatal taxonomy registry
# ---------------------------------------------------------------------------

_TRANSIENT_REGISTRY: list[type[BaseException]] = []


def register_transient(*error_types: type[BaseException]) -> None:
    """Register error types a retry can plausibly clear.

    Called at import time by each failure domain (device errors below,
    pool transport errors in :mod:`repro.pool.errors`).  Registration is
    idempotent and subclass-aware: registering a base type makes every
    subclass transient too.
    """
    for tp in error_types:
        if tp not in _TRANSIENT_REGISTRY:
            _TRANSIENT_REGISTRY.append(tp)


def transient_types() -> tuple[type[BaseException], ...]:
    """All currently registered transient error types (a snapshot)."""
    return tuple(_TRANSIENT_REGISTRY)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"fatal"`` per the registered taxonomy.

    Anything unregistered — ``DeviceAllocationError`` (an oversized
    instance will not fit on the second try either), configuration
    errors, and all ordinary Python exceptions — is fatal.
    """
    return (
        "transient" if isinstance(exc, tuple(_TRANSIENT_REGISTRY)) else "fatal"
    )


register_transient(DeviceUnavailableError, LaunchTimeoutError)
