"""CUDA-event style timing on the simulated device.

Real CUDA code measures kernel sections with ``cudaEventRecord`` /
``cudaEventElapsedTime``: an event enqueued on a stream is "complete" when
all prior work on that stream has finished.  The simulated analogue records
the stream's tail time at enqueue, so elapsed times between two events
measure exactly the modeled device-side duration of the work between them
-- the instrument the experiment harness uses to time kernel sections
without host synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import Device

__all__ = ["Event", "record_event", "elapsed_time"]


@dataclass
class Event:
    """A device event; complete when previously queued work finishes."""

    device: "Device" = field(repr=False)
    timestamp: float | None = None

    @property
    def recorded(self) -> bool:
        """Whether the event has been recorded."""
        return self.timestamp is not None

    def record(self) -> None:
        """Capture the completion time of all currently queued device work."""
        self.timestamp = self.device.device_busy_until

    def synchronize(self) -> float:
        """Block the host until the event completes; returns host time."""
        if self.timestamp is None:
            raise RuntimeError("event was never recorded")
        self.device._host_time = max(self.device._host_time, self.timestamp)
        return self.device.host_time


def record_event(device: "Device") -> Event:
    """Create and immediately record an event (``cudaEventRecord``)."""
    ev = Event(device=device)
    ev.record()
    return ev


def elapsed_time(start: Event, end: Event) -> float:
    """Seconds of modeled device time between two recorded events."""
    if start.timestamp is None or end.timestamp is None:
        raise RuntimeError("both events must be recorded")
    if start.device is not end.device:
        raise ValueError("events belong to different devices")
    return end.timestamp - start.timestamp
