"""Kernel abstraction of the simulated device.

A kernel is a Python function with SIMT semantics: conceptually every thread
executes the same program on its own data.  Numerically we exploit exactly
that -- the kernel body receives a :class:`ThreadContext` describing all
launched threads and computes the whole ensemble with vectorized NumPy (one
row per thread).  The result is bit-for-bit what a per-thread scalar loop
would produce, obtained at array speed (see the HPC guide: vectorize the hot
loop over the independent axis).

Costing: real kernels take wall-clock time; simulated ones must charge it
explicitly.  Each kernel carries a *cost model* returning a
:class:`KernelCost` -- arithmetic cycles per thread, global-memory traffic
per thread, and serialized atomic operations.  The device turns this into a
duration via occupancy, block waves and a compute/bandwidth roofline (see
:meth:`repro.gpusim.device.Device.launch`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import Device
    from repro.gpusim.launch import LaunchConfig
    from repro.gpusim.memory import ConstantMemory
    from repro.gpusim.rng import DeviceRNG

__all__ = ["Kernel", "KernelCost", "ThreadContext", "kernel"]


@dataclass(frozen=True)
class KernelCost:
    """Per-launch resource consumption reported by a kernel's cost model.

    Attributes
    ----------
    cycles_per_thread:
        Arithmetic/issue cycles one thread spends (instruction count / ILP).
    global_bytes_per_thread:
        Bytes of global-memory traffic one thread generates (reads+writes;
        coalesced traffic should be counted once per transaction set).
    shared_bytes_per_block:
        Dynamic shared-memory staging traffic per block (charged once per
        block at shared-memory bandwidth; usually negligible).
    atomic_ops:
        Total serialized atomic operations for the launch (charged at the
        device's L2 atomic latency, sequentially -- "the full process results
        in a sequential execution order", Section VI-D).
    """

    cycles_per_thread: float
    global_bytes_per_thread: float
    shared_bytes_per_block: float = 0.0
    atomic_ops: int = 0


@dataclass
class ThreadContext:
    """Everything a kernel body may query about its launch.

    The arrays are laid out linearly over the launch: global thread ``i``
    belongs to block ``i // threads_per_block`` at block-local position
    ``i % threads_per_block`` (the paper uses 1-D grids and blocks
    throughout).
    """

    config: "LaunchConfig"
    constant: "ConstantMemory"
    rng: "DeviceRNG"
    device: "Device"

    @property
    def total_threads(self) -> int:
        """Number of launched threads."""
        return self.config.total_threads

    @property
    def thread_ids(self) -> np.ndarray:
        """Global thread indices ``0..total_threads-1``."""
        return np.arange(self.config.total_threads)

    @property
    def block_ids(self) -> np.ndarray:
        """Block index of each thread."""
        return self.thread_ids // self.config.threads_per_block

    @property
    def thread_in_block(self) -> np.ndarray:
        """Block-local thread index of each thread."""
        return self.thread_ids % self.config.threads_per_block

    @property
    def lane_ids(self) -> np.ndarray:
        """Warp-lane index of each thread."""
        return self.thread_in_block % self.device.spec.warp_size

    def syncthreads(self) -> None:
        """Block-level barrier.

        In the vectorized execution model all writes of a program phase
        complete before the next phase reads them, so the barrier is a
        semantic no-op -- but kernels still call it where real CUDA code
        must (after staging shared memory), and the call is recorded so
        tests can assert the protocol is followed.
        """
        self.device._note_syncthreads()


# A cost model maps (ctx, *kernel args) -> KernelCost.
CostModel = Callable[..., KernelCost]


@dataclass
class Kernel:
    """A launchable kernel: body + static resources + cost model."""

    name: str
    fn: Callable[..., Any]
    registers_per_thread: int
    cost_model: CostModel
    shared_mem_bytes: Callable[..., int] | int = 0
    doc: str = field(default="", repr=False)

    def shared_bytes_for(self, *args: Any) -> int:
        """Static or argument-dependent per-block shared memory demand."""
        if callable(self.shared_mem_bytes):
            return int(self.shared_mem_bytes(*args))
        return int(self.shared_mem_bytes)


def kernel(
    name: str,
    *,
    registers: int,
    cost: CostModel,
    shared_mem: Callable[..., int] | int = 0,
) -> Callable[[Callable[..., Any]], Kernel]:
    """Decorator turning a vectorized function into a :class:`Kernel`.

    Example
    -------
    >>> @kernel("axpy", registers=16, cost=lambda ctx, *a: KernelCost(8, 24))
    ... def axpy(ctx, x, y, alpha):
    ...     y.array[:] += alpha * x.array
    """

    def wrap(fn: Callable[..., Any]) -> Kernel:
        return Kernel(
            name=name,
            fn=fn,
            registers_per_thread=registers,
            cost_model=cost,
            shared_mem_bytes=shared_mem,
            doc=fn.__doc__ or "",
        )

    return wrap
