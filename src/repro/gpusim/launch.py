"""Launch geometry: ``dim3`` grids/blocks, validation and occupancy.

The paper uses linear configurations ``G = (ceil(N / N_B), 1, 1)`` and
``B = (N_B, 1, 1)`` with a block size of 192 threads and a grid of 4 blocks
(768 threads total).  This module provides the general three-dimensional
geometry with the same semantics as CUDA, plus the occupancy calculation
that the results section reasons about ("loading several threads within a
block results in serial processing of the blocks through the SM", "increasing
the block size offers less registers which a thread can use").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.gpusim.errors import InvalidLaunchError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import DeviceSpec

__all__ = ["Dim3", "LaunchConfig", "Occupancy", "occupancy", "linear_config"]


@dataclass(frozen=True)
class Dim3:
    """A CUDA ``dim3``: extents in x, y, z (all at least 1)."""

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for axis in ("x", "y", "z"):
            v = getattr(self, axis)
            if not isinstance(v, int) or v < 1:
                raise InvalidLaunchError(
                    f"dim3.{axis} must be a positive integer, got {v!r}"
                )

    @property
    def count(self) -> int:
        """Total number of elements ``x * y * z``."""
        return self.x * self.y * self.z

    def as_tuple(self) -> tuple[int, int, int]:
        """The ``(x, y, z)`` tuple."""
        return (self.x, self.y, self.z)


@dataclass(frozen=True)
class LaunchConfig:
    """A validated grid/block pair plus per-block dynamic shared memory."""

    grid: Dim3
    block: Dim3
    shared_mem_bytes: int = 0

    @property
    def num_blocks(self) -> int:
        """Total number of thread blocks in the grid."""
        return self.grid.count

    @property
    def threads_per_block(self) -> int:
        """Threads in one block."""
        return self.block.count

    @property
    def total_threads(self) -> int:
        """Total threads launched (``num_blocks * threads_per_block``)."""
        return self.num_blocks * self.threads_per_block

    def validate(self, spec: "DeviceSpec") -> None:
        """Raise :class:`InvalidLaunchError` on any device-limit violation."""
        b, g = self.block, self.grid
        if b.count > spec.max_threads_per_block:
            raise InvalidLaunchError(
                f"{b.count} threads per block exceeds device limit "
                f"{spec.max_threads_per_block}"
            )
        if b.x > spec.max_block_dim[0] or b.y > spec.max_block_dim[1] or (
            b.z > spec.max_block_dim[2]
        ):
            raise InvalidLaunchError(
                f"block {b.as_tuple()} exceeds per-axis limits {spec.max_block_dim}"
            )
        if g.x > spec.max_grid_dim[0] or g.y > spec.max_grid_dim[1] or (
            g.z > spec.max_grid_dim[2]
        ):
            raise InvalidLaunchError(
                f"grid {g.as_tuple()} exceeds per-axis limits {spec.max_grid_dim}"
            )
        if self.shared_mem_bytes > spec.shared_mem_per_block:
            raise InvalidLaunchError(
                f"{self.shared_mem_bytes} B dynamic shared memory exceeds the "
                f"per-block limit {spec.shared_mem_per_block} B"
            )
        if self.shared_mem_bytes < 0:
            raise InvalidLaunchError("shared memory size must be non-negative")


def linear_config(
    total_threads: int, block_size: int, shared_mem_bytes: int = 0
) -> LaunchConfig:
    """The paper's 1-D configuration: ``ceil(N / N_B)`` blocks of ``N_B``.

    Chosen "to avoid race-conditions" when staging penalties into shared
    memory (Section VI-A): a linear layout gives each thread a unique slot.
    """
    if total_threads < 1 or block_size < 1:
        raise InvalidLaunchError("total_threads and block_size must be positive")
    grid = Dim3(x=math.ceil(total_threads / block_size))
    return LaunchConfig(grid=grid, block=Dim3(x=block_size),
                        shared_mem_bytes=shared_mem_bytes)


@dataclass(frozen=True)
class Occupancy:
    """Result of the occupancy calculation for one kernel launch."""

    blocks_per_sm: int
    active_threads_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    limiter: str

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.blocks_per_sm} block(s)/SM, "
            f"{self.active_warps_per_sm} warps/SM "
            f"({self.occupancy:.0%} occupancy, limited by {self.limiter})"
        )


def occupancy(
    spec: "DeviceSpec",
    threads_per_block: int,
    registers_per_thread: int,
    shared_mem_per_block: int,
) -> Occupancy:
    """How many blocks of a kernel co-reside on one SM, and what limits it.

    Follows the standard CUDA occupancy calculation: the resident block
    count is the minimum over the thread, register, shared-memory and
    hardware block-slot constraints (warp-granular thread accounting).
    """
    if threads_per_block < 1:
        raise InvalidLaunchError("threads_per_block must be positive")
    warps_per_block = math.ceil(threads_per_block / spec.warp_size)
    max_warps_per_sm = spec.max_threads_per_sm // spec.warp_size

    limits = {
        "thread slots": max_warps_per_sm // warps_per_block,
        "block slots": spec.max_blocks_per_sm,
    }
    if registers_per_thread > 0:
        regs_per_block = registers_per_thread * warps_per_block * spec.warp_size
        limits["registers"] = spec.registers_per_sm // regs_per_block
    if shared_mem_per_block > 0:
        limits["shared memory"] = spec.shared_mem_per_sm // shared_mem_per_block

    limiter = min(limits, key=lambda k: limits[k])
    blocks = max(0, limits[limiter])
    if blocks == 0:
        raise InvalidLaunchError(
            f"kernel cannot run: one block exceeds SM resources ({limiter})"
        )
    active_warps = blocks * warps_per_block
    return Occupancy(
        blocks_per_sm=blocks,
        active_threads_per_sm=min(blocks * threads_per_block,
                                  spec.max_threads_per_sm),
        active_warps_per_sm=active_warps,
        occupancy=min(1.0, active_warps / max_warps_per_sm),
        limiter=limiter,
    )
