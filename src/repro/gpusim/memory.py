"""Memory spaces of the simulated device.

* :class:`GlobalMemory` -- an allocator with capacity accounting handing out
  :class:`DeviceBuffer` handles.  Buffers are backed by NumPy arrays (the
  "device-side" storage the vectorized kernels operate on); host arrays are
  copied in/out explicitly, never aliased, so the host/device separation of
  real CUDA is preserved (a host-side mutation after ``memcpy_htod`` does not
  leak into device state, and vice versa).
* :class:`ConstantMemory` -- a 64 KiB read-only symbol store with broadcast
  semantics, used for the due date and job count exactly as in the paper.
* Transfer-cost helpers modelling the PCIe link (latency + bytes/bandwidth),
  used by the device to charge ``memcpy`` time -- the paper's speedups
  explicitly include "all the memory transfers between the host and the
  device".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.gpusim.errors import (
    ConstantMemoryError,
    DeviceAllocationError,
    InvalidHandleError,
)

__all__ = ["DeviceBuffer", "GlobalMemory", "ConstantMemory", "transfer_time"]


def transfer_time(nbytes: int, bandwidth_bytes_per_s: float, latency_s: float) -> float:
    """Modeled duration of a host<->device copy of ``nbytes`` bytes."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return latency_s + nbytes / bandwidth_bytes_per_s


@dataclass(eq=False)
class DeviceBuffer:
    """A handle to an allocation in simulated device global memory.

    The backing :attr:`array` is device-side state: kernels read and write it
    directly; host code should only move data through the device's
    ``memcpy_htod`` / ``memcpy_dtoh``.
    """

    array: np.ndarray
    owner: "GlobalMemory"
    label: str = ""
    _alive: bool = field(default=True, repr=False)

    @property
    def nbytes(self) -> int:
        """Size of the allocation in bytes."""
        return int(self.array.nbytes)

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the device array."""
        return self.array.shape

    @property
    def dtype(self) -> np.dtype:
        """Dtype of the device array."""
        return self.array.dtype

    def check_alive(self) -> None:
        """Raise if this handle was freed."""
        if not self._alive:
            raise InvalidHandleError(
                f"use of freed device buffer {self.label or hex(id(self))}"
            )

    def free(self) -> None:
        """Release the allocation back to the device."""
        self.owner.free(self)


class GlobalMemory:
    """Capacity-tracked allocator for device global memory."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0
        self._buffers: set[int] = set()

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes currently available."""
        return self.capacity_bytes - self._used

    def alloc(
        self,
        shape: tuple[int, ...] | int,
        dtype: np.dtype | type = np.float64,
        label: str = "",
    ) -> DeviceBuffer:
        """Allocate a zero-initialized device array.

        Raises
        ------
        DeviceAllocationError
            If the allocation does not fit in the remaining capacity.
        """
        arr = np.zeros(shape, dtype=dtype)
        if arr.nbytes > self.free_bytes:
            raise DeviceAllocationError(
                f"cannot allocate {arr.nbytes} B ({label or 'unnamed'}): "
                f"{self.free_bytes} B free of {self.capacity_bytes} B"
            )
        buf = DeviceBuffer(array=arr, owner=self, label=label)
        self._used += arr.nbytes
        self._buffers.add(id(buf))
        return buf

    def free(self, buf: DeviceBuffer) -> None:
        """Release ``buf``; double frees raise."""
        if id(buf) not in self._buffers:
            raise InvalidHandleError("buffer does not belong to this device or was freed")
        self._buffers.discard(id(buf))
        self._used -= buf.nbytes
        buf._alive = False

    def owns(self, buf: DeviceBuffer) -> bool:
        """Whether ``buf`` is a live allocation of this memory."""
        return id(buf) in self._buffers


class ConstantMemory:
    """The 64 KiB constant-memory symbol store.

    Symbols are uploaded once and read by every thread through the broadcast
    path ("the due date d and the number of jobs n are transferred to the
    constant memory of the device to benefit from its broadcast mechanism").
    Values are returned as read-only views.
    """

    def __init__(self, capacity_bytes: int = 64 * 1024) -> None:
        self.capacity_bytes = int(capacity_bytes)
        self._symbols: dict[str, np.ndarray] = {}

    @property
    def used_bytes(self) -> int:
        """Bytes consumed by all uploaded symbols."""
        return sum(v.nbytes for v in self._symbols.values())

    def upload(self, name: str, value: np.ndarray | float | int) -> None:
        """Store ``value`` under ``name`` (replacing any previous value)."""
        arr = np.asarray(value)
        new_total = self.used_bytes - (
            self._symbols[name].nbytes if name in self._symbols else 0
        ) + arr.nbytes
        if new_total > self.capacity_bytes:
            raise ConstantMemoryError(
                f"constant memory overflow: {new_total} B > {self.capacity_bytes} B"
            )
        stored = arr.copy()
        stored.setflags(write=False)
        self._symbols[name] = stored

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._symbols[name]
        except KeyError:
            raise ConstantMemoryError(f"unknown constant symbol {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self) -> Iterator[str]:
        return iter(self._symbols)
