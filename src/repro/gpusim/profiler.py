"""An nvprof-like profiler for the simulated device.

Records every kernel launch, memory transfer and synchronization with its
simulated start time and duration, and renders the familiar summary table
(time share, call count, average/total duration per activity).  The paper
reports using the Nvidia CUDA profiler to optimize performance and memory
usage; the experiment harness uses this module the same way -- e.g. to show
where the SA generation loop spends modeled time and to account the
host<->device transfers included in the speedup figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = ["ProfileEvent", "Profiler"]


@dataclass(frozen=True)
class ProfileEvent:
    """One recorded device activity."""

    name: str
    kind: str  # "kernel" | "memcpy_htod" | "memcpy_dtoh" | "sync"
    start: float
    duration: float
    details: dict[str, Any] = field(default_factory=dict, compare=False)

    @property
    def end(self) -> float:
        """Simulated end time of the activity."""
        return self.start + self.duration


class Profiler:
    """Collects :class:`ProfileEvent` records and renders summaries."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[ProfileEvent] = []

    def record(
        self,
        name: str,
        kind: str,
        start: float,
        duration: float,
        **details: Any,
    ) -> None:
        """Append one event (no-op when disabled)."""
        if self.enabled:
            self.events.append(
                ProfileEvent(name=name, kind=kind, start=start,
                             duration=duration, details=dict(details))
            )

    def reset(self) -> None:
        """Drop all recorded events."""
        self.events.clear()

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def total_time(self, kinds: Iterable[str] | None = None) -> float:
        """Summed duration over events, optionally filtered by kind."""
        wanted = set(kinds) if kinds is not None else None
        return sum(
            e.duration for e in self.events
            if wanted is None or e.kind in wanted
        )

    def kernel_time(self) -> float:
        """Total modeled time spent in kernels."""
        return self.total_time(["kernel"])

    def memcpy_time(self) -> float:
        """Total modeled time spent in host<->device transfers."""
        return self.total_time(["memcpy_htod", "memcpy_dtoh"])

    def component_totals(self) -> dict[str, float]:
        """Kernel time attributed to timing-model components.

        Sums the per-launch ``components`` breakdown the device records
        (overhead / compute / memory / staging / dispatch / atomic; the
        losing roofline leg is attributed zero, so the totals sum to
        :meth:`kernel_time`).
        """
        totals: dict[str, float] = {}
        for e in self.events:
            if e.kind != "kernel":
                continue
            for comp, t in e.details.get("components", {}).items():
                totals[comp] = totals.get(comp, 0.0) + t
        return totals

    def component_summary(self) -> str:
        """Textual attribution of kernel time to model components."""
        totals = self.component_totals()
        if not totals:
            return "No kernel component attribution recorded."
        total = sum(totals.values())
        denom = total or 1.0
        lines = [f"{'Time(%)':>8} {'Time':>12}  Component"]
        for comp, t in sorted(totals.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"{100.0 * t / denom:7.2f}% {_fmt_s(t):>12}  {comp}"
            )
        lines.append(f"Total attributed kernel time: {_fmt_s(total)}")
        return "\n".join(lines)

    def by_name(self) -> dict[str, list[ProfileEvent]]:
        """Events grouped by activity name."""
        groups: dict[str, list[ProfileEvent]] = {}
        for e in self.events:
            groups.setdefault(e.name, []).append(e)
        return groups

    def summary(self) -> str:
        """nvprof-style textual summary, activities sorted by total time."""
        groups = self.by_name()
        total = self.total_time() or 1.0
        rows = []
        for name, evs in groups.items():
            t = sum(e.duration for e in evs)
            rows.append((t, 100.0 * t / total, len(evs), t / len(evs), name))
        rows.sort(reverse=True)
        lines = [
            f"{'Time(%)':>8} {'Time':>12} {'Calls':>7} {'Avg':>12}  Name",
        ]
        for t, pct, calls, avg, name in rows:
            lines.append(
                f"{pct:7.2f}% {_fmt_s(t):>12} {calls:7d} {_fmt_s(avg):>12}  {name}"
            )
        lines.append(
            f"Total modeled device time: {_fmt_s(total if self.events else 0.0)}"
        )
        return "\n".join(lines)


def _fmt_s(seconds: float) -> str:
    """Human-friendly duration (s / ms / us / ns)."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f}us"
    return f"{seconds * 1e9:.1f}ns"
