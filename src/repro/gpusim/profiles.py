"""Named device profiles: a registry of GPU generations for gpusim.

The paper's speedup tables are pinned to one device -- a Fermi-class
GeForce GT 560M (the text says "Kepler device", but the GT 560M is GF116
silicon; see ``docs/paper_mapping.md``).  This registry makes the device
a *parameter*: each :class:`DeviceProfile` pairs a validated
:class:`~repro.gpusim.device.DeviceSpec` with the
:class:`~repro.gpusim.timing.TimingModel` bundle it charges time
through, so experiments can sweep the modeled speedup surface across
generations (``repro experiment device_surface``).

Profiles (see ``docs/device_profiles.md`` for the full table):

* ``gt560m`` -- the paper's mobile Fermi (default everywhere);
* ``fermi``  -- a generic desktop Fermi for contrast;
* ``k20``    -- Tesla K20, the Kepler the paper's text *claims*;
* ``pascal`` -- a GTX 1080-class Pascal part;
* ``ampere`` -- an A100-class datacenter Ampere part.

Register additional generations with :func:`register_profile`; the spec
validates itself at construction, so a typo'd profile fails loudly at
import time rather than producing nonsense modeled runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.gpusim.device import (
    GEFORCE_GT_560M,
    GENERIC_FERMI,
    TESLA_K20,
    DeviceSpec,
)
from repro.gpusim.timing import TimingModel

__all__ = [
    "DeviceProfile",
    "DEFAULT_PROFILE",
    "register_profile",
    "get_profile",
    "profile_names",
    "PASCAL_GTX_1080",
    "AMPERE_A100",
]

#: The profile every config/CLI flag defaults to -- the paper's device.
DEFAULT_PROFILE = "gt560m"


@dataclass(frozen=True)
class DeviceProfile:
    """One registered GPU generation: hardware numbers plus timing model.

    The spec is *data* (validated hardware limits and rates) and the
    timing model is *behaviour* (how those rates turn into charged
    seconds); keeping them together means a profile fully determines
    modeled runtimes, which is what makes cross-generation speedup
    tables meaningful.
    """

    key: str
    generation: str
    year: int
    spec: DeviceSpec
    notes: str = ""
    timing_factory: Callable[[], TimingModel] = field(
        default=TimingModel.default, compare=False
    )

    def create_timing_model(self) -> TimingModel:
        """The timing bundle launches on this profile charge through."""
        return self.timing_factory()


PASCAL_GTX_1080 = DeviceSpec(
    name="GeForce GTX 1080",
    compute_capability=(6, 1),
    num_sms=20,
    cores_per_sm=128,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    shared_mem_per_sm=96 * 1024,
    shared_mem_per_block=48 * 1024,
    constant_mem_bytes=64 * 1024,
    global_mem_bytes=8 * 1024**3,
    core_clock_hz=1.607e9,
    mem_bandwidth_bytes_per_s=320e9,
    pcie_bandwidth_bytes_per_s=12e9,  # PCIe 3.0 x16, effective
    pcie_latency_s=8e-6,
    kernel_launch_overhead_s=4e-6,
    atomic_op_s=10e-9,
    latency_hiding_warps=8,
    block_dispatch_overhead_s=0.15e-6,
)

AMPERE_A100 = DeviceSpec(
    name="A100-SXM4-40GB",
    compute_capability=(8, 0),
    num_sms=108,
    cores_per_sm=64,
    warp_size=32,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    registers_per_sm=65536,
    shared_mem_per_sm=164 * 1024,
    shared_mem_per_block=163 * 1024,
    constant_mem_bytes=64 * 1024,
    global_mem_bytes=40 * 1024**3,
    core_clock_hz=1.41e9,
    mem_bandwidth_bytes_per_s=1555e9,
    pcie_bandwidth_bytes_per_s=25e9,  # PCIe 4.0 x16, effective
    pcie_latency_s=5e-6,
    kernel_launch_overhead_s=3e-6,
    atomic_op_s=4e-9,
    latency_hiding_warps=10,
    block_dispatch_overhead_s=0.1e-6,
)


_REGISTRY: dict[str, DeviceProfile] = {}


def register_profile(profile: DeviceProfile) -> DeviceProfile:
    """Add a profile to the registry (rejects duplicate keys)."""
    if profile.key in _REGISTRY:
        raise ValueError(
            f"device profile {profile.key!r} is already registered "
            f"(as {_REGISTRY[profile.key].spec.name!r})"
        )
    _REGISTRY[profile.key] = profile  # repro-lint: disable=RPL006 -- import-time registration: built-ins register below at module load, so every worker process rebuilds the identical registry deterministically on import
    return profile


def get_profile(name: str) -> DeviceProfile:
    """Look up a profile by key, with the registry listed on miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(
            f"unknown device profile {name!r}; registered profiles: {known}"
        ) from None


def profile_names() -> tuple[str, ...]:
    """Registered profile keys in registration order."""
    return tuple(_REGISTRY)


register_profile(DeviceProfile(
    key="gt560m",
    generation="Fermi (GF116)",
    year=2011,
    spec=GEFORCE_GT_560M,
    notes=(
        "The paper's device.  Its text calls it a 'Kepler device', but "
        "the GT 560M is Fermi-class GF116 silicon; we model the Fermi "
        "limits (cc 2.1, 4 SMs)."
    ),
))
register_profile(DeviceProfile(
    key="fermi",
    generation="Fermi (desktop)",
    year=2010,
    spec=GENERIC_FERMI,
    notes="Generic desktop Fermi: twice the SMs, double the bandwidth.",
))
register_profile(DeviceProfile(
    key="k20",
    generation="Kepler (GK110)",
    year=2012,
    spec=TESLA_K20,
    notes="The Kepler the paper's text claims; used in ablation benches.",
))
register_profile(DeviceProfile(
    key="pascal",
    generation="Pascal (GP104)",
    year=2016,
    spec=PASCAL_GTX_1080,
    notes="GTX 1080-class: 20 SMs, GDDR5X, PCIe 3.0.",
))
register_profile(DeviceProfile(
    key="ampere",
    generation="Ampere (GA100)",
    year=2020,
    spec=AMPERE_A100,
    notes="A100-class: 108 SMs, HBM2 at ~1.5 TB/s, PCIe 4.0.",
))
