"""Atomic-minimum reduction over per-thread values.

The paper's fourth kernel finds the best solution among all threads with an
atomic minimization in L2 cache ("provides a good performance although the
full process results in a sequential execution order").  Numerically this is
``min``/``argmin``; the cost side is modeled as one serialized atomic per
*contending* thread, which the device charges at its L2 atomic latency.

For the deviation experiments only the value/argmin matter; for the runtime
experiments the serialization term is what makes very large ensembles pay a
visible reduction cost, matching the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AtomicMinResult", "atomic_min"]


@dataclass(frozen=True)
class AtomicMinResult:
    """Outcome of an atomic-min sweep."""

    value: float
    index: int
    contended_ops: int


def atomic_min(values: np.ndarray) -> AtomicMinResult:
    """Minimum, argmin and the number of serialized atomic updates.

    Every thread issues ``atomicMin``; hardware serializes them.  The number
    of updates that actually *write* depends on arrival order; the model
    charges the worst-case bound of one serialized L2 transaction per thread
    (all threads contend on one address), which is also what makes the
    reduction's modeled cost linear in the ensemble size.

    Ties resolve to the lowest thread index, matching a deterministic
    serialization order.
    """
    v = np.asarray(values, dtype=np.float64)
    if v.ndim != 1 or v.size == 0:
        raise ValueError("values must be a non-empty 1-D array")
    idx = int(np.argmin(v))
    return AtomicMinResult(value=float(v[idx]), index=idx, contended_ops=v.size)
