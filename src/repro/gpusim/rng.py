"""Counter-based per-thread random numbers: the cuRAND stand-in.

cuRAND gives every CUDA thread an independent, reproducible random stream.
We model this with a *stateless counter-based* generator (in the spirit of
Philox/`curand_init(seed, subsequence=tid, offset)`): the ``k``-th draw of
thread ``t`` under seed ``s`` is a fixed avalanche hash ``h(s, t, k)``,
evaluated vectorized over all threads at once.  Properties this buys us:

* *Reproducibility* -- identical seeds yield identical streams regardless of
  how many threads run or in which order the kernels were vectorized.
* *Independence* -- streams of different threads never overlap by
  construction (no shared mutable state).
* *Integer-first output* -- like cuRAND, the primitive output is an unsigned
  integer; uniforms in ``[0, 1)`` are obtained by explicit normalization
  ("since cuRand provides only integer values, a normalization is carried
  out", Section VI-B).

The mixing function is SplitMix64 (Steele et al.), a well-tested 64-bit
finalizer; statistical sanity is covered by the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DeviceRNG", "OffsetRNG", "splitmix64"]

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_STREAM_SALT = np.uint64(0xD6E8FEB86659FD93)


def splitmix64(z: np.ndarray | np.uint64) -> np.ndarray | np.uint64:
    """The SplitMix64 finalizer, elementwise over uint64 input.

    Modular 2^64 wraparound is the intended arithmetic, so NumPy's overflow
    warning is silenced locally.
    """
    with np.errstate(over="ignore"):
        z = (np.asarray(z, dtype=np.uint64) + _GOLDEN).astype(np.uint64)
        z = ((z ^ (z >> np.uint64(30))) * _MIX1).astype(np.uint64)
        z = ((z ^ (z >> np.uint64(27))) * _MIX2).astype(np.uint64)
        return z ^ (z >> np.uint64(31))


class DeviceRNG:
    """Per-thread counter-based random streams.

    Parameters
    ----------
    seed:
        Global seed, analogous to the seed handed to ``curand_init``.

    Each generating call advances a global draw counter; thread ``t``'s
    value for draw ``k`` is ``splitmix64(mix(seed, t, k))``, so the sequence
    seen by a thread does not depend on the ensemble size.
    """

    def __init__(self, seed: int) -> None:
        self._seed = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)
        self._counter = np.uint64(0)

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return int(self._seed)

    @property
    def counter(self) -> int:
        """Number of draw rounds issued so far."""
        return int(self._counter)

    def _advance(self) -> np.uint64:
        c = self._counter
        self._counter = np.uint64(self._counter + np.uint64(1))
        return c

    def raw(self, thread_ids: np.ndarray) -> np.ndarray:
        """One uint64 per thread for the next draw round."""
        tids = np.asarray(thread_ids, dtype=np.uint64)
        c = self._advance()
        with np.errstate(over="ignore"):
            base = (self._seed ^ splitmix64(c * _GOLDEN + _STREAM_SALT)).astype(
                np.uint64
            )
            mixed = (base + tids * _GOLDEN).astype(np.uint64)
        return splitmix64(mixed)

    def uniform(self, thread_ids: np.ndarray) -> np.ndarray:
        """One float in ``[0, 1)`` per thread (integer draw + normalization)."""
        bits32 = (self.raw(thread_ids) >> np.uint64(32)).astype(np.float64)
        return bits32 / 4294967296.0  # 2**32

    def randint(
        self, thread_ids: np.ndarray, low: int, high: int
    ) -> np.ndarray:
        """One integer in ``[low, high)`` per thread.

        Uses the multiply-shift range reduction on the high 32 bits --
        negligible modulo bias for the small ranges used by the operators
        (range << 2^32).
        """
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        span = np.uint64(high - low)
        hi32 = self.raw(thread_ids) >> np.uint64(32)
        return (low + ((hi32 * span) >> np.uint64(32)).astype(np.int64)).astype(
            np.int64
        )

    def uniform_matrix(self, thread_ids: np.ndarray, draws: int) -> np.ndarray:
        """``(len(thread_ids), draws)`` uniforms; column ``k`` is draw round k."""
        cols = [self.uniform(thread_ids) for _ in range(draws)]
        return np.stack(cols, axis=1)

    def spawn(self, salt: int) -> "DeviceRNG":
        """A statistically independent generator derived from this seed."""
        with np.errstate(over="ignore"):
            salted = self._seed ^ (np.uint64(salt & 0xFFFFFFFFFFFFFFFF) * _GOLDEN)
        child_seed = int(splitmix64(salted))
        return DeviceRNG(child_seed)


class OffsetRNG:
    """A :class:`DeviceRNG` view whose thread ids are shifted by a constant.

    A sharded ensemble runs chains ``[offset, offset + s)`` of the global
    population in a worker whose *local* thread ids are ``[0, s)``.  Because
    thread ``t``'s stream depends only on ``(seed, t, k)``, wrapping the
    worker's generator so that local id ``t`` draws as global id
    ``t + offset`` reproduces exactly the numbers those chains would have
    drawn in the unsharded run -- the foundation of the multiprocess
    backend's bit-identity contract (see docs/parallel.md).
    """

    __slots__ = ("_inner", "_offset")

    def __init__(self, inner: DeviceRNG, offset: int) -> None:
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        self._inner = inner
        self._offset = np.uint64(offset)

    @property
    def seed(self) -> int:
        return self._inner.seed

    @property
    def counter(self) -> int:
        return self._inner.counter

    @property
    def offset(self) -> int:
        """The global thread id of this view's local thread 0."""
        return int(self._offset)

    def _shift(self, thread_ids: np.ndarray) -> np.ndarray:
        with np.errstate(over="ignore"):
            return (
                np.asarray(thread_ids, dtype=np.uint64) + self._offset
            ).astype(np.uint64)

    def raw(self, thread_ids: np.ndarray) -> np.ndarray:
        return self._inner.raw(self._shift(thread_ids))

    def uniform(self, thread_ids: np.ndarray) -> np.ndarray:
        return self._inner.uniform(self._shift(thread_ids))

    def randint(
        self, thread_ids: np.ndarray, low: int, high: int
    ) -> np.ndarray:
        return self._inner.randint(self._shift(thread_ids), low, high)

    def uniform_matrix(self, thread_ids: np.ndarray, draws: int) -> np.ndarray:
        return self._inner.uniform_matrix(self._shift(thread_ids), draws)

    def spawn(self, salt: int) -> DeviceRNG:
        return self._inner.spawn(salt)
