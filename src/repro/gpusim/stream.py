"""Asynchronous execution semantics: streams and device synchronization.

CUDA kernel launches are asynchronous with respect to the host: they join a
queue and the CPU runs ahead until an explicit synchronization ("all kernel
calls are asynchronous and inside a queue ... the synchronization operation
is performed by the CPU", Section VI-D).  The simulated :class:`Stream`
reproduces this with two clocks:

* the *device clock* advances as queued work (kernels, copies) executes
  back-to-back in issue order;
* the *host clock* advances only by host-side work and by waiting in
  ``synchronize()`` until the device clock catches up.

The experiment harness reads total runtimes off these clocks, so a pipeline
that forgets to synchronize before reading results back is charged (and
caught by tests) just like real CUDA code would be wrong.
"""

from __future__ import annotations

__all__ = ["Stream"]


class Stream:
    """A single in-order work queue with a simulated completion clock."""

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._tail = 0.0  # device time at which all queued work is done
        self._ops = 0

    @property
    def tail_time(self) -> float:
        """Device time when the last enqueued operation completes."""
        return self._tail

    @property
    def queued_ops(self) -> int:
        """Number of operations enqueued so far (monotone counter)."""
        return self._ops

    def enqueue(self, earliest_start: float, duration: float) -> tuple[float, float]:
        """Queue an operation; returns its simulated ``(start, end)`` times.

        The operation starts when both the stream is free and
        ``earliest_start`` (e.g. the host clock at issue time) has passed.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self._tail, earliest_start)
        self._tail = start + duration
        self._ops += 1
        return start, self._tail

    def wait(self, host_time: float) -> float:
        """Host-side synchronize: returns the new host clock."""
        return max(host_time, self._tail)
