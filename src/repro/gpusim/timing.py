"""Pluggable analytic timing models for the simulated device.

Until this module existed the timing math lived inline in
:meth:`Device._model_duration`; it is now factored behind four small
interfaces (the shape of rtos_sim's ``IOverheadModel`` /
``IExecutionTimeModel``), so a device generation is *data* (a
:class:`~repro.gpusim.device.DeviceSpec`) plus a *model bundle*
(:class:`TimingModel`) and either can be swapped independently:

* :class:`LaunchOverheadModel` -- fixed launch cost plus per-block
  dispatch scheduling cost;
* :class:`ExecutionTimeModel` -- the kernel-lifetime roofline:
  ``waves x max(compute, memory)`` with latency-hiding efficiency and
  shared-memory staging;
* :class:`TransferTimeModel` -- host<->device copies over the PCIe link
  (absorbing :func:`repro.gpusim.memory.transfer_time`);
* :class:`AtomicSerializationModel` -- serialized atomic updates at the
  L2 latency.

The default bundle (:meth:`TimingModel.default`) reproduces the
pre-refactor inline math **bit-identically**: one launch charges

    overhead + max(compute, memory) + staging + dispatch + atomic

summed in exactly that (left-associative) order -- the golden-timing
tests in ``tests/test_engine_backends.py`` and
``tests/test_timing_model_properties.py`` pin this byte-for-byte.

:class:`KernelTiming` keeps the per-component breakdown alongside the
total, which is what the profiler's nvprof-style component attribution
(``Profiler.component_summary``) reports.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.gpusim.memory import transfer_time

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpusim.device import DeviceSpec
    from repro.gpusim.kernel import KernelCost
    from repro.gpusim.launch import LaunchConfig

__all__ = [
    "KernelTiming",
    "LaunchOverheadModel",
    "ConstantLaunchOverheadModel",
    "ExecutionTimeModel",
    "RooflineExecutionTimeModel",
    "TransferTimeModel",
    "PcieTransferModel",
    "AtomicSerializationModel",
    "SerializedAtomicModel",
    "TimingModel",
    "waves",
]


def waves(spec: "DeviceSpec", num_blocks: int, blocks_per_sm: int) -> int:
    """Block waves the busiest SM processes over a kernel's lifetime.

    ``ceil(num_blocks / num_sms)`` blocks land on the busiest SM; it runs
    them ``blocks_per_sm`` (the occupancy result) at a time.
    """
    per_sm_blocks = math.ceil(num_blocks / spec.num_sms)
    return math.ceil(per_sm_blocks / blocks_per_sm)


@dataclass(frozen=True)
class KernelTiming:
    """Per-component breakdown of one modeled kernel launch.

    The components are kept separate (not pre-summed) so profiler
    attribution can break a launch out into overhead vs compute vs memory
    vs atomics; :attr:`total_s` reassembles them in the exact summation
    order of the pre-refactor inline model, preserving bit-identity.
    """

    overhead_s: float
    compute_s: float
    memory_s: float
    staging_s: float
    dispatch_s: float
    atomic_s: float

    @property
    def roofline_s(self) -> float:
        """The charged roofline leg: the slower of compute and memory."""
        return max(self.compute_s, self.memory_s)

    @property
    def limiter(self) -> str:
        """Which roofline leg dominates this launch."""
        return "compute" if self.compute_s >= self.memory_s else "memory"

    @property
    def total_s(self) -> float:
        """Total modeled duration of the launch."""
        # Exact term order of the original Device._model_duration return
        # expression -- do not regroup (floating-point addition order is
        # part of the bit-identity contract).
        return (
            self.overhead_s
            + max(self.compute_s, self.memory_s)
            + self.staging_s
            + self.dispatch_s
            + self.atomic_s
        )

    def components(self) -> dict[str, float]:
        """Attribution of the total to named components (sums to total).

        The losing roofline leg is attributed zero time -- it is hidden
        behind the winning one, exactly as on hardware.
        """
        compute_charged = self.roofline_s if self.limiter == "compute" else 0.0
        memory_charged = self.roofline_s if self.limiter == "memory" else 0.0
        return {
            "overhead": self.overhead_s,
            "compute": compute_charged,
            "memory": memory_charged,
            "staging": self.staging_s,
            "dispatch": self.dispatch_s,
            "atomic": self.atomic_s,
        }


class LaunchOverheadModel(ABC):
    """Fixed costs of getting a kernel onto the device."""

    @abstractmethod
    def launch_overhead(
        self, spec: "DeviceSpec", config: "LaunchConfig"
    ) -> float:
        """One-time driver/runtime cost of issuing the launch."""

    @abstractmethod
    def dispatch_time(
        self, spec: "DeviceSpec", config: "LaunchConfig"
    ) -> float:
        """Cost of scheduling the grid's blocks onto the SMs."""


class ConstantLaunchOverheadModel(LaunchOverheadModel):
    """The default: constant launch cost + linear per-block dispatch."""

    def launch_overhead(
        self, spec: "DeviceSpec", config: "LaunchConfig"
    ) -> float:
        return spec.kernel_launch_overhead_s

    def dispatch_time(
        self, spec: "DeviceSpec", config: "LaunchConfig"
    ) -> float:
        return config.num_blocks * spec.block_dispatch_overhead_s


class ExecutionTimeModel(ABC):
    """The in-flight cost of a kernel's thread work."""

    @abstractmethod
    def compute_time(
        self,
        spec: "DeviceSpec",
        config: "LaunchConfig",
        blocks_per_sm: int,
        cost: "KernelCost",
    ) -> float:
        """SM-issue time of the busiest SM's thread-cycles."""

    @abstractmethod
    def memory_time(
        self, spec: "DeviceSpec", config: "LaunchConfig", cost: "KernelCost"
    ) -> float:
        """Global-memory traffic charged against device bandwidth."""

    @abstractmethod
    def staging_time(
        self, spec: "DeviceSpec", config: "LaunchConfig", cost: "KernelCost"
    ) -> float:
        """Per-block shared-memory staging traffic."""


class RooflineExecutionTimeModel(ExecutionTimeModel):
    """The default waves x max(compute, memory) roofline.

    The busiest SM processes ``ceil(num_blocks / num_sms)`` blocks over
    the kernel's lifetime; its total thread-cycles divided by the SM's
    issue rate give the compute time.  When fewer warps are resident
    than the latency-hiding depth, the issue rate degrades
    proportionally.  Global traffic is charged against the device
    bandwidth, shared-memory staging once per block at on-chip bandwidth
    -- which is what makes needlessly small blocks (duplicated staging,
    more dispatches) and needlessly large blocks (idle SMs) both lose to
    the paper's 192-thread sweet spot.
    """

    #: Shared-memory staging bandwidth relative to global memory (on-chip).
    STAGING_BANDWIDTH_RATIO = 4.0

    def compute_time(
        self,
        spec: "DeviceSpec",
        config: "LaunchConfig",
        blocks_per_sm: int,
        cost: "KernelCost",
    ) -> float:
        tpb = config.threads_per_block
        per_sm_blocks = math.ceil(config.num_blocks / spec.num_sms)
        warps_per_block = math.ceil(tpb / spec.warp_size)
        resident_warps = min(per_sm_blocks, blocks_per_sm) * warps_per_block
        efficiency = min(1.0, resident_warps / spec.latency_hiding_warps)
        return (
            cost.cycles_per_thread * per_sm_blocks * tpb
            / (spec.cores_per_sm * spec.instructions_per_cycle)
            / spec.core_clock_hz
        ) / efficiency

    def memory_time(
        self, spec: "DeviceSpec", config: "LaunchConfig", cost: "KernelCost"
    ) -> float:
        return (
            cost.global_bytes_per_thread * config.total_threads
            / spec.mem_bandwidth_bytes_per_s
        )

    def staging_time(
        self, spec: "DeviceSpec", config: "LaunchConfig", cost: "KernelCost"
    ) -> float:
        return (
            cost.shared_bytes_per_block * config.num_blocks
            / (self.STAGING_BANDWIDTH_RATIO * spec.mem_bandwidth_bytes_per_s)
        )


class TransferTimeModel(ABC):
    """Host<->device copy cost."""

    @abstractmethod
    def transfer_time(self, spec: "DeviceSpec", nbytes: int) -> float:
        """Modeled duration of copying ``nbytes`` over the link."""


class PcieTransferModel(TransferTimeModel):
    """The default: PCIe latency plus bytes over link bandwidth."""

    def transfer_time(self, spec: "DeviceSpec", nbytes: int) -> float:
        return transfer_time(
            nbytes, spec.pcie_bandwidth_bytes_per_s, spec.pcie_latency_s
        )


class AtomicSerializationModel(ABC):
    """Serialized-atomic cost of a launch."""

    @abstractmethod
    def atomic_time(self, spec: "DeviceSpec", cost: "KernelCost") -> float:
        """Total serialized time of the launch's atomic operations."""


class SerializedAtomicModel(AtomicSerializationModel):
    """The default: every contending atomic pays the L2 latency in turn."""

    def atomic_time(self, spec: "DeviceSpec", cost: "KernelCost") -> float:
        return cost.atomic_ops * spec.atomic_op_s


@dataclass(frozen=True)
class TimingModel:
    """The model bundle a :class:`~repro.gpusim.device.Device` charges
    time through.

    Compose custom bundles for what-if studies (e.g. a zero-overhead
    launch model, a different staging bandwidth); :meth:`default` is the
    calibrated analytic bundle every profile ships with.
    """

    launch: LaunchOverheadModel
    execution: ExecutionTimeModel
    transfer: TransferTimeModel
    atomics: AtomicSerializationModel

    @classmethod
    def default(cls) -> "TimingModel":
        """The calibrated analytic bundle (pre-refactor math, bit-exact)."""
        return cls(
            launch=ConstantLaunchOverheadModel(),
            execution=RooflineExecutionTimeModel(),
            transfer=PcieTransferModel(),
            atomics=SerializedAtomicModel(),
        )

    def kernel_timing(
        self,
        spec: "DeviceSpec",
        config: "LaunchConfig",
        blocks_per_sm: int,
        cost: "KernelCost",
    ) -> KernelTiming:
        """Component breakdown of one launch under this bundle."""
        return KernelTiming(
            overhead_s=self.launch.launch_overhead(spec, config),
            compute_s=self.execution.compute_time(
                spec, config, blocks_per_sm, cost
            ),
            memory_s=self.execution.memory_time(spec, config, cost),
            staging_s=self.execution.staging_time(spec, config, cost),
            dispatch_s=self.launch.dispatch_time(spec, config),
            atomic_s=self.atomics.atomic_time(spec, cost),
        )

    def transfer_time(self, spec: "DeviceSpec", nbytes: int) -> float:
        """Host<->device copy duration under this bundle."""
        return self.transfer.transfer_time(spec, nbytes)
