"""Initial-population construction for the metaheuristics.

The paper only notes that "the initial configuration for the algorithm can
be the same or different for all chains"; the faithful default is a uniform
random permutation per chain.  As an extension this module also provides
**random V-shaped** initialization: every chain starts from a sequence that
already respects the V-shape optimality structure (early block ordered by
``alpha/p`` ascending toward the due date, tardy block by ``p/beta``
ascending) around a randomized early/tardy split -- a much better starting
point whose diversity across chains comes from the random split and
membership.  The reproduction study (EXPERIMENTS.md, "reference strength")
measures how far initialization alone can close the budget gap.
"""

from __future__ import annotations

import numpy as np

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["random_population", "vshape_population", "initial_population"]


def random_population(
    n: int, size: int, rng: np.random.Generator
) -> np.ndarray:
    """``(size, n)`` uniform random permutations."""
    return np.argsort(rng.random((size, n)), axis=1)


def vshape_sequence(
    instance: CDDInstance | UCDDCPInstance, rng: np.random.Generator
) -> np.ndarray:
    """One random V-shaped sequence.

    Jobs are considered in random order and greedily assigned to the early
    block while it fits before a randomized fraction of the due date; the
    blocks are then ordered by the V-shape ratio rules.
    """
    n = instance.n
    p = instance.processing
    a = instance.alpha
    b = instance.beta
    d = instance.due_date

    order = rng.permutation(n)
    target = d * rng.uniform(0.7, 1.0)
    selected = np.zeros(n, dtype=bool)
    total = 0.0
    for j in order:
        if total + p[j] <= target:
            selected[j] = True
            total += p[j]
    early = np.flatnonzero(selected)
    tardy = np.flatnonzero(~selected)
    # Ratio rules; zero beta pushes a job to the end of the tardy block.
    early = early[np.argsort(a[early] / p[early], kind="stable")]
    with np.errstate(divide="ignore"):
        tardy_key = np.where(b[tardy] > 0,
                             p[tardy] / np.where(b[tardy] > 0, b[tardy], 1.0),
                             np.inf)
    tardy = tardy[np.argsort(tardy_key, kind="stable")]
    return np.concatenate((early, tardy)).astype(np.intp)


def vshape_population(
    instance: CDDInstance | UCDDCPInstance,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``(size, n)`` independent random V-shaped sequences."""
    return np.vstack([vshape_sequence(instance, rng) for _ in range(size)])


def initial_population(
    instance: CDDInstance | UCDDCPInstance,
    size: int,
    rng: np.random.Generator,
    init: str = "random",
) -> np.ndarray:
    """Dispatch on the ``init`` policy (``"random"`` or ``"vshape"``)."""
    if init == "random":
        return random_population(instance.n, size, rng)
    if init == "vshape":
        return vshape_population(instance, size, rng)
    raise ValueError(f"unknown init policy {init!r}")
