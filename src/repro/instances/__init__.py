"""Benchmark instances: generators and OR-library file I/O.

The paper evaluates on the OR-library CDD set (Biskup & Feldmann) and the
UCDDCP set of Awasthi et al. [8].  Neither file set can be downloaded here,
so :mod:`~repro.instances.biskup` regenerates instances from the published
Biskup--Feldmann recipe with deterministic seeds, and
:mod:`~repro.instances.ucddcp_gen` extends it with compression fields the
way [8] constructs its set (see DESIGN.md, substitution table).
:mod:`~repro.instances.orlib` parses/writes the OR-library ``sch`` format so
the genuine files can be dropped in when available.
"""

from repro.instances.digest import (
    canonical_json,
    instance_digest,
    mapping_digest,
    sha256_bytes,
    sha256_hex,
)
from repro.instances.biskup import (
    BISKUP_H_FACTORS,
    BISKUP_JOB_SIZES,
    biskup_benchmark_suite,
    biskup_instance,
)
from repro.instances.orlib import parse_sch, write_sch
from repro.instances.registry import benchmark_set, registry_names
from repro.instances.ucddcp_gen import ucddcp_benchmark_suite, ucddcp_instance

__all__ = [
    "BISKUP_H_FACTORS",
    "BISKUP_JOB_SIZES",
    "biskup_instance",
    "biskup_benchmark_suite",
    "ucddcp_instance",
    "ucddcp_benchmark_suite",
    "parse_sch",
    "write_sch",
    "benchmark_set",
    "registry_names",
    "canonical_json",
    "instance_digest",
    "mapping_digest",
    "sha256_bytes",
    "sha256_hex",
]
