"""Biskup--Feldmann style CDD benchmark instances.

The OR-library ``sch`` benchmark (Biskup & Feldmann 2003, [18] of the
paper) draws, independently and uniformly at random,

* processing times   ``P_i  ~ U{1, ..., 20}``,
* earliness penalties ``alpha_i ~ U{1, ..., 10}``,
* tardiness penalties ``beta_i  ~ U{1, ..., 15}``,

with ``k = 1..10`` instances per job count ``n`` in {10, 20, 50, 100, 200,
500, 1000}, and evaluates each instance at the four restrictive due dates
``d = floor(h * sum(P))`` for ``h`` in {0.2, 0.4, 0.6, 0.8} -- i.e. 40
(instance, h) combinations per ``n``, which is exactly the "average over 40
different instances for each job size" the paper's Tables II/III report.

This module regenerates the set deterministically: instance ``(n, k)``
always produces the same data for a fixed ``base_seed``, regardless of
generation order.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.instances.validate import validate_job_fields
from repro.problems.cdd import CDDInstance

__all__ = [
    "BISKUP_JOB_SIZES",
    "BISKUP_H_FACTORS",
    "BISKUP_K_RANGE",
    "biskup_instance",
    "biskup_benchmark_suite",
]

BISKUP_JOB_SIZES: tuple[int, ...] = (10, 20, 50, 100, 200, 500, 1000)
BISKUP_H_FACTORS: tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)
BISKUP_K_RANGE: tuple[int, ...] = tuple(range(1, 11))

_P_LOW, _P_HIGH = 1, 20
_ALPHA_LOW, _ALPHA_HIGH = 1, 10
_BETA_LOW, _BETA_HIGH = 1, 15


def _instance_seed(base_seed: int, n: int, k: int) -> np.random.Generator:
    """Deterministic per-(n, k) generator, independent of call order."""
    ss = np.random.SeedSequence(entropy=base_seed, spawn_key=(n, k))
    return np.random.default_rng(ss)


def biskup_instance(
    n: int, h: float, k: int = 1, base_seed: int = 20160523
) -> CDDInstance:
    """One Biskup--Feldmann style instance.

    Parameters
    ----------
    n:
        Number of jobs.
    h:
        Restriction factor; the due date is ``floor(h * sum(P))``.
    k:
        Instance replicate index (1-based, matching the OR-library naming).
        The job data of ``(n, k)`` is shared across all ``h`` values, as in
        the original benchmark.
    base_seed:
        Base entropy; the default pins the distributed benchmark set.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if k < 1:
        raise ValueError("k is 1-based")
    if not (0.0 < h):
        raise ValueError("h must be positive")
    rng = _instance_seed(base_seed, n, k)
    p = rng.integers(_P_LOW, _P_HIGH + 1, n).astype(np.float64)
    a = rng.integers(_ALPHA_LOW, _ALPHA_HIGH + 1, n).astype(np.float64)
    b = rng.integers(_BETA_LOW, _BETA_HIGH + 1, n).astype(np.float64)
    name = f"biskup_n{n}_k{k}_h{h:g}"
    validate_job_fields(name, p, alpha=a, beta=b)
    d = float(np.floor(h * p.sum()))
    return CDDInstance(
        processing=p, alpha=a, beta=b, due_date=d, name=name,
    )


def biskup_benchmark_suite(
    sizes: tuple[int, ...] = BISKUP_JOB_SIZES,
    h_factors: tuple[float, ...] = BISKUP_H_FACTORS,
    k_values: tuple[int, ...] = BISKUP_K_RANGE,
    base_seed: int = 20160523,
) -> Iterator[CDDInstance]:
    """Iterate the full (or a restricted) benchmark suite.

    Yields ``len(sizes) * len(k_values) * len(h_factors)`` instances in
    (size, k, h) order.
    """
    for n in sizes:
        for k in k_values:
            for h in h_factors:
                yield biskup_instance(n, h, k, base_seed)
