"""Canonical content digests: one hashing contract for the whole repo.

Every place the repo identifies bytes or structured values by content —
the pool's end-to-end payload-integrity check (child pipe → agent →
network → client travels under *one* digest), the service's
content-addressed result cache, instance identity in cache keys — uses
the SHA-256 helpers here, so "same content" means the same thing
everywhere and two subsystems can never disagree about a digest.

Structured values are digested through :func:`canonical_json`: sorted
keys, minimal separators, no whitespace variance.  CPython's ``repr`` of
floats is shortest-round-trip and deterministic across platforms, so
``json.dumps`` of instance arrays is a stable byte sequence for equal
values.  Instances digest through their :meth:`to_dict` representation,
which both problem families define as their JSON round-trip contract —
two instances with equal fields share a digest regardless of how they
were constructed (generator, OR-library file, service request body).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Protocol

__all__ = [
    "sha256_bytes",
    "sha256_hex",
    "canonical_json",
    "mapping_digest",
    "instance_digest",
]


class _SupportsToDict(Protocol):
    def to_dict(self) -> dict[str, Any]: ...


def sha256_bytes(blob: bytes) -> bytes:
    """Raw 32-byte SHA-256 of ``blob`` (wire headers store this form)."""
    return hashlib.sha256(blob).digest()


def sha256_hex(blob: bytes) -> str:
    """Hex SHA-256 of ``blob`` (pipe messages and keys store this form)."""
    return hashlib.sha256(blob).hexdigest()


def canonical_json(value: Any) -> str:
    """The one canonical JSON text for ``value``.

    Sorted keys and minimal separators make the text a pure function of
    the value; non-JSON leaves degrade to their ``repr`` so a digest can
    always be computed (at the cost of repr stability for such leaves —
    keep digested structures JSON-native where identity matters).
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=repr
    )


def mapping_digest(value: Any) -> str:
    """Hex SHA-256 of a structured value's canonical JSON."""
    return sha256_hex(canonical_json(value).encode("utf-8"))


def instance_digest(instance: _SupportsToDict) -> str:
    """The canonical content digest of a problem instance.

    Computed over :meth:`to_dict` — every field that defines the problem
    (processing, penalties, due date, kind, name) in canonical JSON — so
    it is stable across processes, sessions and hosts.  This is the
    ``instance`` component of the service's cache key; equal instances
    always collide, unequal ones never do (modulo SHA-256).
    """
    return mapping_digest(instance.to_dict())
