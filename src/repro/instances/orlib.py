"""OR-library ``sch`` file format support.

The Biskup--Feldmann files (``sch10.txt`` ... ``sch1000.txt``) distributed
through Beasley's OR-library [17] have the layout::

    <number of instances K>
    p_1 a_1 b_1        \\
    ...                 |  instance 1 (n rows)
    p_n a_n b_n        /
    p_1 a_1 b_1        ...  instance 2, and so on

with the job count ``n`` implied by the file name.  ``parse_sch`` infers
``n`` from the token count when it is not supplied; ``write_sch`` emits the
same layout so generated suites can be stored and shared in the original
format.  The due date is not part of the file -- it is derived per
restriction factor as ``floor(h * sum(P))``, exactly as in the benchmark's
definition.
"""

from __future__ import annotations

import numpy as np

from repro.instances.validate import validate_job_fields
from repro.problems.cdd import CDDInstance

__all__ = ["parse_sch", "write_sch"]


def parse_sch(
    text: str,
    h: float,
    n: int | None = None,
    name_prefix: str = "orlib",
) -> list[CDDInstance]:
    """Parse OR-library ``sch`` content into instances at factor ``h``.

    Parameters
    ----------
    text:
        File content.
    h:
        Restriction factor used to derive each instance's due date.
    n:
        Jobs per instance; inferred from the token count when omitted.
    name_prefix:
        Prefix for the generated instance names.
    """
    tokens = text.split()
    if not tokens:
        raise ValueError("empty sch file")
    count = int(tokens[0])
    body = tokens[1:]
    if count < 1:
        raise ValueError(f"invalid instance count {count}")
    if len(body) % (3 * count) != 0:
        raise ValueError(
            f"token count {len(body)} is not divisible by 3*{count}"
        )
    inferred = len(body) // (3 * count)
    if n is None:
        n = inferred
    elif n != inferred:
        raise ValueError(f"expected n={n}, file contains n={inferred}")

    try:
        values = np.asarray(body, dtype=np.float64).reshape(count, n, 3)
    except ValueError:
        raise ValueError(
            "sch file contains non-numeric job data"
        ) from None
    instances = []
    for k in range(count):
        p = values[k, :, 0]
        a = values[k, :, 1]
        b = values[k, :, 2]
        name = f"{name_prefix}_n{n}_k{k + 1}_h{h:g}"
        validate_job_fields(name, p, alpha=a, beta=b)
        d = float(np.floor(h * p.sum()))
        instances.append(
            CDDInstance(
                processing=p, alpha=a, beta=b, due_date=d, name=name,
            )
        )
    return instances


def write_sch(instances: list[CDDInstance]) -> str:
    """Serialize instances (sharing one ``n``) to ``sch`` file content.

    Only the job data is stored -- due dates are a function of the
    restriction factor, per the benchmark definition.
    """
    if not instances:
        raise ValueError("no instances to write")
    n = instances[0].n
    lines = [str(len(instances))]
    for inst in instances:
        if inst.n != n:
            raise ValueError("all instances in one sch file must share n")
        for p, a, b in zip(inst.processing, inst.alpha, inst.beta):
            lines.append(f"{int(p)} {int(a)} {int(b)}")
    return "\n".join(lines) + "\n"
