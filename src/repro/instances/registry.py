"""Named benchmark sets used by the experiment harness.

``benchmark_set(name)`` returns the instance list for a named experiment
configuration; the bench targets refer to sets by name so the quick/full
scaling is centralized here.
"""

from __future__ import annotations

from typing import Callable

from repro.instances.biskup import biskup_benchmark_suite
from repro.instances.ucddcp_gen import ucddcp_benchmark_suite
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["benchmark_set", "registry_names"]

_REGISTRY: dict[str, Callable[[], list[CDDInstance | UCDDCPInstance]]] = {
    # The paper's full CDD evaluation grid: 7 sizes x 10 replicates x 4 h.
    "cdd_full": lambda: list(biskup_benchmark_suite()),
    # Reduced grid for single-core runs: 4 sizes x 3 replicates x 2 h.
    "cdd_quick": lambda: list(
        biskup_benchmark_suite(
            sizes=(10, 20, 50, 100),
            h_factors=(0.4, 0.8),
            k_values=(1, 2, 3),
        )
    ),
    # Tiny smoke set for tests.
    "cdd_smoke": lambda: list(
        biskup_benchmark_suite(sizes=(10, 20), h_factors=(0.4,), k_values=(1,))
    ),
    "ucddcp_full": lambda: list(ucddcp_benchmark_suite()),
    "ucddcp_quick": lambda: list(
        ucddcp_benchmark_suite(sizes=(10, 20, 50, 100), k_values=(1, 2, 3))
    ),
    "ucddcp_smoke": lambda: list(
        ucddcp_benchmark_suite(sizes=(10, 20), k_values=(1,))
    ),
}


def registry_names() -> list[str]:
    """All registered benchmark-set names."""
    return sorted(_REGISTRY)


def benchmark_set(name: str) -> list[CDDInstance | UCDDCPInstance]:
    """Materialize the named benchmark set."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark set {name!r}; available: {registry_names()}"
        ) from None
    return factory()
