"""UCDDCP benchmark instances in the style of Awasthi et al. [8].

[8]'s instance files are not distributed with the paper; we construct the
set the way the problem statement demands: start from the Biskup--Feldmann
job data (the UCDDCP is introduced as an extension of the same benchmark
family) and add

* minimum processing times ``M_i ~ U{1, ..., P_i}`` (every job is
  compressible by a random amount, possibly zero when ``M_i = P_i``),
* compression penalties ``gamma_i ~ U{1, ..., 12}`` (the same order of
  magnitude as the earliness/tardiness penalties, so compression is
  sometimes but not always worthwhile -- the regime the paper's worked
  example sits in),
* an unrestricted due date ``d = ceil(u * sum(P))`` with ``u ~ U[1.0, 1.2]``
  (the defining property ``d >= sum(P)`` of the *unrestricted* problem).

Deterministic per ``(n, k)`` exactly like the CDD generator; the DESIGN.md
substitution table records this construction.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.instances.validate import validate_job_fields
from repro.problems.ucddcp import UCDDCPInstance

__all__ = [
    "UCDDCP_JOB_SIZES",
    "UCDDCP_K_RANGE",
    "ucddcp_instance",
    "ucddcp_benchmark_suite",
]

UCDDCP_JOB_SIZES: tuple[int, ...] = (10, 20, 50, 100, 200, 500, 1000)
UCDDCP_K_RANGE: tuple[int, ...] = tuple(range(1, 11))

_P_LOW, _P_HIGH = 1, 20
_ALPHA_LOW, _ALPHA_HIGH = 1, 10
_BETA_LOW, _BETA_HIGH = 1, 15
_GAMMA_LOW, _GAMMA_HIGH = 1, 12


def ucddcp_instance(n: int, k: int = 1, base_seed: int = 20150429) -> UCDDCPInstance:
    """One UCDDCP benchmark instance (deterministic per ``(n, k)``)."""
    if n < 1:
        raise ValueError("n must be positive")
    if k < 1:
        raise ValueError("k is 1-based")
    ss = np.random.SeedSequence(entropy=base_seed, spawn_key=(n, k))
    rng = np.random.default_rng(ss)
    p = rng.integers(_P_LOW, _P_HIGH + 1, n).astype(np.float64)
    a = rng.integers(_ALPHA_LOW, _ALPHA_HIGH + 1, n).astype(np.float64)
    b = rng.integers(_BETA_LOW, _BETA_HIGH + 1, n).astype(np.float64)
    m = rng.integers(1, p.astype(np.int64) + 1).astype(np.float64)
    g = rng.integers(_GAMMA_LOW, _GAMMA_HIGH + 1, n).astype(np.float64)
    u = rng.uniform(1.0, 1.2)
    name = f"ucddcp_n{n}_k{k}"
    validate_job_fields(name, p, alpha=a, beta=b, gamma=g, min_processing=m)
    d = float(np.ceil(u * p.sum()))
    return UCDDCPInstance(
        processing=p, min_processing=m, alpha=a, beta=b, gamma=g,
        due_date=d, name=name,
    )


def ucddcp_benchmark_suite(
    sizes: tuple[int, ...] = UCDDCP_JOB_SIZES,
    k_values: tuple[int, ...] = UCDDCP_K_RANGE,
    base_seed: int = 20150429,
) -> Iterator[UCDDCPInstance]:
    """Iterate the (restricted or full) UCDDCP benchmark suite."""
    for n in sizes:
        for k in k_values:
            yield ucddcp_instance(n, k, base_seed)
