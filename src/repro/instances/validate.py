"""Loader-side validation of benchmark job data.

The instance dataclasses (:mod:`repro.problems.cdd`,
:mod:`repro.problems.ucddcp`) reject malformed data, but their errors
cannot say *which* instance of a 280-instance benchmark file was broken.
The loaders (``parse_sch``, the Biskup and UCDDCP generators) therefore
run :func:`validate_job_fields` first: every violation — negative or zero
processing times, ``M_i > P_i``, non-finite penalty weights — raises a
``ValueError`` naming the instance, the offending field and the first bad
job index, instead of letting a NaN objective surface three layers
downstream.
"""

from __future__ import annotations

import numpy as np

__all__ = ["validate_job_fields"]


def _first_bad(mask: np.ndarray) -> int:
    return int(np.flatnonzero(mask)[0])


def _check(name: str, field: str, values: np.ndarray,
           *, positive: bool = False) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    bad = ~np.isfinite(arr)
    if bad.any():
        i = _first_bad(bad)
        raise ValueError(
            f"instance {name!r}: field {field!r} is not finite at job {i} "
            f"(value {arr[i]})"
        )
    bad = arr <= 0 if positive else arr < 0
    if bad.any():
        i = _first_bad(bad)
        bound = "strictly positive" if positive else "non-negative"
        raise ValueError(
            f"instance {name!r}: field {field!r} must be {bound}; "
            f"job {i} has value {arr[i]}"
        )
    return arr


def validate_job_fields(
    name: str,
    processing: np.ndarray,
    *,
    alpha: np.ndarray | None = None,
    beta: np.ndarray | None = None,
    gamma: np.ndarray | None = None,
    min_processing: np.ndarray | None = None,
) -> None:
    """Validate one instance's job data; raise a naming ``ValueError``.

    Checks: all fields finite; processing (and min_processing) strictly
    positive; penalty weights non-negative; ``M_i <= P_i`` jobwise.
    """
    p = _check(name, "processing", processing, positive=True)
    for field, values in (("alpha", alpha), ("beta", beta),
                          ("gamma", gamma)):
        if values is not None:
            _check(name, field, values)
    if min_processing is not None:
        m = _check(name, "min_processing", min_processing, positive=True)
        if m.shape == p.shape:
            bad = m > p
            if bad.any():
                i = _first_bad(bad)
                raise ValueError(
                    f"instance {name!r}: min_processing exceeds processing "
                    f"at job {i} (M={m[i]} > P={p[i]})"
                )
