"""The paper's four CUDA kernels, implemented on the simulated device.

Section VI launches four kernels per SA generation, "one after the other":

1. **fitness** (:mod:`~repro.kernels.fitness`) -- evaluate every thread's job
   sequence with the O(n) algorithms, earliness/tardiness penalties staged in
   block shared memory;
2. **perturbation** (:mod:`~repro.kernels.perturbation`) -- Fisher--Yates
   shuffle of a random size-``Pert`` sub-sequence per thread;
3. **acceptance** (:mod:`~repro.kernels.acceptance`) -- standard Metropolis
   criterion per thread with cuRAND-style uniforms;
4. **reduction** (:mod:`~repro.kernels.reduction_kernel`) -- atomic-min over
   all threads' energies.

:mod:`~repro.kernels.data` uploads instance arrays to device global memory
and the scalars (due date, job count) to constant memory, exactly following
the paper's data-transfer scheme (Figure 9).
"""

from repro.kernels.acceptance import make_acceptance_kernel
from repro.kernels.data import DeviceProblemData
from repro.kernels.fitness import make_cdd_fitness_kernel, make_ucddcp_fitness_kernel
from repro.kernels.perturbation import make_perturbation_kernel
from repro.kernels.reduction_kernel import (
    make_elitist_reduction_kernel,
    make_reduction_kernel,
)

__all__ = [
    "DeviceProblemData",
    "make_cdd_fitness_kernel",
    "make_ucddcp_fitness_kernel",
    "make_perturbation_kernel",
    "make_acceptance_kernel",
    "make_reduction_kernel",
    "make_elitist_reduction_kernel",
]
