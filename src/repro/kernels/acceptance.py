"""The acceptance kernel: per-thread Metropolis criterion.

Section VI-C: each thread accepts its candidate iff

    exp((E - E_new) / T) >= rand(0, 1)

with the uniform drawn from the device RNG (cuRAND stand-in; integer output
normalized to [0, 1)).  Improvements are always accepted (the exponential
exceeds 1); deteriorations are accepted with the Boltzmann probability at
the current temperature.  Accepted candidates overwrite the thread's state
and energy in place.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel

__all__ = ["make_acceptance_kernel"]


def _cost(ctx: ThreadContext, seqs, cand, energy, cand_energy, temperature) -> KernelCost:
    n = seqs.array.shape[1]
    # exp + compare + (conditional) n-element copy of the sequence.
    return KernelCost(
        cycles_per_thread=120.0 + 6.0 * n,
        global_bytes_per_thread=2 * 8.0 + 2 * 4.0 * n,
    )


def make_acceptance_kernel() -> Kernel:
    """Build the acceptance kernel.

    Launch signature: ``(seqs, cand, energy, cand_energy, temperature)``
    where ``temperature`` is the scalar Markov-chain temperature of this
    generation (all asynchronous chains share the cooling schedule, having
    started from the same ``T0``).
    """

    @kernel("acceptance", registers=20, cost=_cost)
    def acceptance(
        ctx: ThreadContext, seqs, cand, energy, cand_energy, temperature
    ) -> None:
        """Metropolis-accept each thread's candidate at ``temperature``."""
        s = ctx.total_threads
        t = float(temperature)
        e = energy.array[:s]
        e_new = cand_energy.array[:s]
        u = ctx.rng.uniform(ctx.thread_ids)
        if t <= 0.0:
            accept = e_new <= e
        else:
            # exp((E - E_new)/T) >= u;  clip the exponent to avoid overflow
            # warnings for strongly improving moves (exp saturates anyway).
            ratio = np.exp(np.minimum((e - e_new) / t, 50.0))
            accept = ratio >= u
        seqs.array[:s][accept] = cand.array[:s][accept]
        e[accept] = e_new[accept]

    return acceptance
