"""Host->device staging of problem data (Figure 9 of the paper).

"The initial job sequences are copied to the GPU global memory, along with
the earliness, tardiness penalties and the processing times of the jobs.
The due date d and the number of jobs n are transferred to the constant
memory of the device to benefit from its broadcast mechanism.  For the
UCDDCP, the minimum processing times and the compression penalties are also
copied to the GPU."

Which arrays a problem family stages (and in what order), and which scalars
go to constant memory, is owned by its
:class:`~repro.core.engine.adapters.ProblemAdapter` -- this module only
executes the recipe against a device, so there is no per-family branching
here.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import Device
from repro.gpusim.memory import DeviceBuffer
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["DeviceProblemData"]


class DeviceProblemData:
    """Device-resident copies of one instance's parameter vectors.

    Attributes
    ----------
    p, a, b:
        Device buffers holding processing times and earliness/tardiness
        penalties (job-index order).
    m, g:
        Minimum processing times and compression penalties; ``None`` for a
        plain CDD instance.
    """

    def __init__(self, device: Device, instance: CDDInstance | UCDDCPInstance):
        # The adapter layer sits above the kernels; resolve it lazily so the
        # import graph stays acyclic.
        from repro.core.engine.adapters import adapter_for

        self.device = device
        self.instance = instance
        self.adapter = adapter_for(instance)
        self.is_ucddcp = self.adapter.kind == "ucddcp"

        self._buffers: dict[str, DeviceBuffer] = {}
        for name, values in self.adapter.staging_arrays():
            buf = device.malloc(len(values), np.float64, name)
            device.memcpy_htod(buf, values)
            self._buffers[name] = buf

        # Broadcast scalars through constant memory.
        for name, value in self.adapter.constants():
            device.upload_constant(name, value)

    @property
    def n(self) -> int:
        """Number of jobs."""
        return self.instance.n

    @property
    def p(self) -> DeviceBuffer:
        """Processing times."""
        return self._buffers["processing"]

    @property
    def a(self) -> DeviceBuffer:
        """Earliness penalties."""
        return self._buffers["alpha"]

    @property
    def b(self) -> DeviceBuffer:
        """Tardiness penalties."""
        return self._buffers["beta"]

    @property
    def m(self) -> DeviceBuffer | None:
        """Minimum processing times (UCDDCP only)."""
        return self._buffers.get("min_processing")

    @property
    def g(self) -> DeviceBuffer | None:
        """Compression penalties (UCDDCP only)."""
        return self._buffers.get("gamma")

    def fitness_buffers(self) -> tuple[DeviceBuffer, ...]:
        """Staged buffers in the fitness kernel's argument order."""
        return tuple(
            self._buffers[name] for name in self.adapter.fitness_param_names
        )

    def free(self) -> None:
        """Release all device allocations."""
        for buf in self._buffers.values():
            buf.free()
        self._buffers.clear()
