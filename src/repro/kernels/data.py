"""Host->device staging of problem data (Figure 9 of the paper).

"The initial job sequences are copied to the GPU global memory, along with
the earliness, tardiness penalties and the processing times of the jobs.
The due date d and the number of jobs n are transferred to the constant
memory of the device to benefit from its broadcast mechanism.  For the
UCDDCP, the minimum processing times and the compression penalties are also
copied to the GPU."
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.device import Device
from repro.gpusim.memory import DeviceBuffer
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["DeviceProblemData"]


class DeviceProblemData:
    """Device-resident copies of one instance's parameter vectors.

    Attributes
    ----------
    p, a, b:
        Device buffers holding processing times and earliness/tardiness
        penalties (job-index order).
    m, g:
        Minimum processing times and compression penalties; ``None`` for a
        plain CDD instance.
    """

    def __init__(self, device: Device, instance: CDDInstance | UCDDCPInstance):
        self.device = device
        self.instance = instance
        self.is_ucddcp = isinstance(instance, UCDDCPInstance)

        n = instance.n
        self.p: DeviceBuffer = device.malloc(n, np.float64, "processing")
        self.a: DeviceBuffer = device.malloc(n, np.float64, "alpha")
        self.b: DeviceBuffer = device.malloc(n, np.float64, "beta")
        device.memcpy_htod(self.p, instance.processing)
        device.memcpy_htod(self.a, instance.alpha)
        device.memcpy_htod(self.b, instance.beta)

        self.m: DeviceBuffer | None = None
        self.g: DeviceBuffer | None = None
        if self.is_ucddcp:
            assert isinstance(instance, UCDDCPInstance)
            self.m = device.malloc(n, np.float64, "min_processing")
            self.g = device.malloc(n, np.float64, "gamma")
            device.memcpy_htod(self.m, instance.min_processing)
            device.memcpy_htod(self.g, instance.gamma)

        # Broadcast scalars through constant memory.
        device.upload_constant("due_date", np.float64(instance.due_date))
        device.upload_constant("n_jobs", np.int64(n))

    @property
    def n(self) -> int:
        """Number of jobs."""
        return self.instance.n

    def free(self) -> None:
        """Release all device allocations."""
        for buf in (self.p, self.a, self.b, self.m, self.g):
            if buf is not None:
                buf.free()
