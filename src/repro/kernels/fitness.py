"""The fitness kernel: one O(n) sequence optimization per thread.

Section VI-A: the kernel first stages the earliness/tardiness penalties in
block shared memory (shorter latency than global memory; the linear 1-D
launch gives every thread a distinct slot so there are no write races),
synchronizes the block (writes must complete before any thread reads), and
then runs the O(n) algorithm of [7] (CDD) or [8] (UCDDCP) on the thread's
own job sequence.  "The processing times of the jobs are not cached because
there are only a few reads from it inside the fitness function."

Numerically the whole ensemble is evaluated with the batched routines of
:mod:`repro.seqopt.batched` -- exactly the computation every thread performs,
vectorized over the thread axis.

Cost model (calibrated against the paper's published GT 560M runtimes, see
EXPERIMENTS.md): the dominant term is linear in ``n``.  ``CDD_CYCLES_PER_JOB``
(and the UCDDCP variant) absorb the double-precision throughput, branch
divergence and uncoalesced-gather penalties of the real device.
"""

from __future__ import annotations


from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel
from repro.seqopt.batched import (
    batched_cdd_from_gathered,
    batched_ucddcp_from_gathered,
)

__all__ = [
    "make_cdd_fitness_kernel",
    "make_ucddcp_fitness_kernel",
    "CDD_CYCLES_PER_JOB",
    "UCDDCP_CYCLES_PER_JOB",
    "TEXTURE_GATHER_DISCOUNT",
]

# Calibration constants: effective issue cycles one thread spends per job in
# the fitness function.  Chosen so the modeled GT 560M generation-loop times
# land on the runtimes the paper reports (e.g. SA_1000 at n=1000 ~ 3.4 s).
CDD_CYCLES_PER_JOB = 1150.0
UCDDCP_CYCLES_PER_JOB = 1500.0
_FIXED_CYCLES = 250.0

# The paper's future-work item: "examine the utilization of the texture
# memory of the GPU to make use of its spatial cache".  The per-thread
# gathers of the (read-only) processing times through the sequence hit the
# texture cache's 2-D locality; the modeled effect is a discount on the
# uncached gather traffic and a small cycle saving on address arithmetic.
TEXTURE_GATHER_DISCOUNT = 0.5
_TEXTURE_CYCLE_DISCOUNT = 0.92


def _shared_bytes_cdd(seqs, p, a, b, out) -> int:
    # alpha + beta staged per block (float64 each).
    return 2 * a.array.size * 8


def _shared_bytes_ucddcp(seqs, p, m, a, b, g, out) -> int:
    # alpha + beta + gamma + min processing staged per block.
    return 4 * a.array.size * 8


def _make_cdd_cost(use_texture: bool):
    gather = TEXTURE_GATHER_DISCOUNT if use_texture else 1.0
    cyc = _TEXTURE_CYCLE_DISCOUNT if use_texture else 1.0

    def _cdd_cost(ctx: ThreadContext, seqs, p, a, b, out) -> KernelCost:
        n = p.array.size
        # Global traffic per thread: the int32 sequence (n reads) and the
        # gathered processing times (n reads, texture-cached when enabled)
        # plus the fitness write; staged penalties are charged per block.
        per_thread = 4.0 * n + gather * 8.0 * n + 8.0
        return KernelCost(
            cycles_per_thread=cyc * (_FIXED_CYCLES + CDD_CYCLES_PER_JOB * n),
            global_bytes_per_thread=per_thread,
            shared_bytes_per_block=2.0 * n * 8.0,
        )

    return _cdd_cost


def _make_ucddcp_cost(use_texture: bool):
    gather = TEXTURE_GATHER_DISCOUNT if use_texture else 1.0
    cyc = _TEXTURE_CYCLE_DISCOUNT if use_texture else 1.0

    def _ucddcp_cost(ctx: ThreadContext, seqs, p, m, a, b, g, out) -> KernelCost:
        n = p.array.size
        per_thread = 4.0 * n + gather * 2 * 8.0 * n + 8.0  # seq + P,M + write
        return KernelCost(
            cycles_per_thread=cyc
            * (_FIXED_CYCLES + UCDDCP_CYCLES_PER_JOB * n),
            global_bytes_per_thread=per_thread,
            shared_bytes_per_block=4.0 * n * 8.0,
        )

    return _ucddcp_cost


def make_cdd_fitness_kernel(use_texture: bool = False) -> Kernel:
    """Build the CDD fitness kernel.

    ``use_texture`` routes the read-only gathers through the modeled
    texture cache (the paper's future-work item); numerically identical,
    cheaper in the cost model.
    """

    @kernel(
        "fitness_cdd_tex" if use_texture else "fitness_cdd",
        registers=40,
        cost=_make_cdd_cost(use_texture),
        shared_mem=_shared_bytes_cdd,
    )
    def fitness_cdd(ctx: ThreadContext, seqs, p, a, b, out) -> None:
        """Evaluate ``out[t] = optimal CDD penalty of sequence t``."""
        # Stage penalties into shared memory, then barrier before reads
        # (Section VI-A protocol).
        ctx.syncthreads()
        d = float(ctx.constant["due_date"])
        s = seqs.array[: ctx.total_threads]
        out.array[: ctx.total_threads] = batched_cdd_from_gathered(
            p.array[s], a.array[s], b.array[s], d
        )

    return fitness_cdd


def make_ucddcp_fitness_kernel(use_texture: bool = False) -> Kernel:
    """Build the UCDDCP fitness kernel (see :func:`make_cdd_fitness_kernel`)."""

    @kernel(
        "fitness_ucddcp_tex" if use_texture else "fitness_ucddcp",
        registers=48,
        cost=_make_ucddcp_cost(use_texture),
        shared_mem=_shared_bytes_ucddcp,
    )
    def fitness_ucddcp(ctx: ThreadContext, seqs, p, m, a, b, g, out) -> None:
        """Evaluate ``out[t] = optimal UCDDCP penalty of sequence t``."""
        ctx.syncthreads()
        d = float(ctx.constant["due_date"])
        s = seqs.array[: ctx.total_threads]
        out.array[: ctx.total_threads] = batched_ucddcp_from_gathered(
            p.array[s], m.array[s], a.array[s], b.array[s], g.array[s], d
        )

    return fitness_ucddcp
