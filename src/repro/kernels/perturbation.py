"""The perturbation kernel: per-thread partial Fisher--Yates shuffle.

Section VI-B: "A sub-sequence of size Pert = 4 is selected from the parent
job sequence and then the Fisher Yates algorithm is implemented on this
sub-sequence while retaining the position of other jobs in the sequence."
The random numbers come from the device RNG (the cuRAND stand-in), one
independent stream per thread.

Position selection happens *inside the kernel*: when ``refresh`` is true
the kernel re-samples each thread's ``Pert`` distinct positions into the
``positions`` buffer before shuffling; otherwise it re-uses the stored
positions.  The SA driver controls the refresh cadence
(``position_refresh``; Section VI's "after every 10 SA iterations" reading
versus the per-iteration default -- see ``ParallelSAConfig``).
"""

from __future__ import annotations


from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel
from repro.permutation import (
    batched_partial_fisher_yates,
    batched_sample_distinct,
)

__all__ = ["make_perturbation_kernel"]


def _cost(ctx: ThreadContext, seqs, cand, positions, refresh,
          min_position=0) -> KernelCost:
    n = seqs.array.shape[1]
    k = positions.array.shape[1]
    sampling = 40.0 * k if refresh else 0.0
    # Copy the parent sequence (read+write 4 B per job) plus the shuffle.
    return KernelCost(
        cycles_per_thread=40.0 + 12.0 * n + 30.0 * k + sampling,
        global_bytes_per_thread=2 * 4.0 * n + 8.0 * k,
    )


def make_perturbation_kernel() -> Kernel:
    """Build the perturbation kernel.

    Launch signature: ``(seqs, cand, positions, refresh[, min_position])``
    where ``seqs`` is the ``(S, n)`` parent population, ``cand`` receives
    the perturbed candidates, ``positions`` is the ``(S, Pert)`` integer
    buffer of the currently selected positions, and ``refresh`` re-samples
    them first.  ``min_position`` excludes a sequence prefix from the
    shuffle -- the domain-decomposition strategy pins the first position to
    partition the search space.
    """

    @kernel("perturbation", registers=24, cost=_cost)
    def perturbation(ctx: ThreadContext, seqs, cand, positions, refresh,
                     min_position=0) -> None:
        """``cand[t] = fisher_yates_at(seqs[t], positions[t])``."""
        s = ctx.total_threads
        n = seqs.array.shape[1]
        k = positions.array.shape[1]
        if refresh:
            positions.array[:s] = min_position + batched_sample_distinct(
                ctx.rng, ctx.thread_ids, n - min_position, k
            )
        batched_partial_fisher_yates(
            ctx.rng,
            ctx.thread_ids,
            seqs.array[:s],
            positions.array[:s],
            out=cand.array[:s],
        )

    return perturbation
