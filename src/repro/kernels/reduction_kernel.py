"""The reduction kernel: atomic-min over all thread energies + elitism.

Section VI-D: "The minimal value among all the threads is calculated by
performing an atomic minimization function.  The atomic function performs
its operations inside the L2-Cache, which provides a good performance
although the full process results in a sequential execution order."

Two variants are provided:

* :func:`make_reduction_kernel` -- the plain reduction: write the global
  minimum and the owning thread index into a 2-element result buffer.
* :func:`make_elitist_reduction_kernel` -- additionally maintains the
  best-ever solution *on the device* (value + sequence), so the host only
  reads it back once at the end of the run, matching the paper's two-
  transfer data-flow (Figure 9).
"""

from __future__ import annotations


from repro.gpusim.kernel import Kernel, KernelCost, ThreadContext, kernel
from repro.gpusim.reduction import atomic_min

__all__ = ["make_reduction_kernel", "make_elitist_reduction_kernel"]


def _cost(ctx: ThreadContext, energy, result) -> KernelCost:
    return KernelCost(
        cycles_per_thread=30.0,
        global_bytes_per_thread=8.0,
        atomic_ops=ctx.total_threads,
    )


def make_reduction_kernel() -> Kernel:
    """Build the plain reduction kernel.

    Launch signature: ``(energy, result)`` where ``result`` is a 2-element
    float buffer receiving ``[min_value, argmin_thread]``.
    """

    @kernel("reduction_min", registers=12, cost=_cost)
    def reduction_min(ctx: ThreadContext, energy, result) -> None:
        """``result[:] = [min(energy), argmin(energy)]`` via atomicMin."""
        s = ctx.total_threads
        res = atomic_min(energy.array[:s])
        result.array[0] = res.value
        result.array[1] = float(res.index)

    return reduction_min


def _elitist_cost(
    ctx: ThreadContext, energy, seqs, best_energy, best_seq, result
) -> KernelCost:
    n = seqs.array.shape[1]
    # Atomic sweep plus an occasional n-element copy of the new champion.
    return KernelCost(
        cycles_per_thread=30.0,
        global_bytes_per_thread=8.0 + 4.0 * n / max(1, ctx.total_threads),
        atomic_ops=ctx.total_threads,
    )


def make_elitist_reduction_kernel() -> Kernel:
    """Build the elitist reduction kernel.

    Launch signature: ``(energy, seqs, best_energy, best_seq, result)``.
    Beyond the plain reduction, when the new minimum improves on
    ``best_energy[0]`` the winning thread's sequence is copied into
    ``best_seq`` -- device-side elitism, no host transfer.
    """

    @kernel("reduction_min_elitist", registers=14, cost=_elitist_cost)
    def reduction_min_elitist(
        ctx: ThreadContext, energy, seqs, best_energy, best_seq, result
    ) -> None:
        """Atomic-min plus best-ever tracking on the device."""
        s = ctx.total_threads
        res = atomic_min(energy.array[:s])
        result.array[0] = res.value
        result.array[1] = float(res.index)
        if res.value < best_energy.array[0]:
            best_energy.array[0] = res.value
            best_seq.array[:] = seqs.array[res.index]

    return reduction_min_elitist
