"""``repro.lint`` — the repo's determinism & concurrency-safety analyzer.

The reproduction's core guarantee — bit-identical results for any backend
and any worker count — rests on coding rules no runtime test can enforce
exhaustively: seeded :class:`numpy.random.Generator` streams only, no
wall-clock reads in deterministic paths, spawn-picklable pool payloads,
and failures routed through the :mod:`repro.gpusim.errors` transient/fatal
taxonomy.  This package enforces those rules *statically*: a stdlib-only
:mod:`ast` analyzer with per-rule codes (``RPL0xx``), inline suppressions
carrying a rationale, and a path-scoped policy read from
``pyproject.toml [tool.repro-lint]``.

Since the service/pool layers went multi-threaded the analyzer also
checks *concurrency* discipline: a cross-module :class:`~repro.lint.
index.ProjectIndex` feeds the lock rules (``RPL011`` guarded fields,
``RPL012`` lock ordering, ``RPL013`` blocking under a lock), and
:mod:`repro.lint.sanitizer` re-checks the same properties at runtime
when tests run with ``REPRO_TSAN=1``.

Entry points
------------
- ``repro lint [paths]`` (see :mod:`repro.lint.cli`),
- :class:`LintEngine` for programmatic use and the test fixtures,
- ``tests/test_lint_self.py`` runs the analyzer over ``src/`` so a new
  violation fails tier-1 forever.

The rule catalog lives in :mod:`repro.lint.rules` and is documented with
bad/good examples in ``docs/lint.md``.
"""

from __future__ import annotations

from repro.lint.engine import Finding, LintEngine, LintResult
from repro.lint.index import ProjectIndex
from repro.lint.policy import Policy, PolicyError
from repro.lint.report import render_findings
from repro.lint.rules import RULES, Rule

__all__ = [
    "Finding",
    "LintEngine",
    "LintResult",
    "Policy",
    "PolicyError",
    "ProjectIndex",
    "RULES",
    "Rule",
    "render_findings",
]
