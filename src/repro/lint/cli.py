"""CLI glue for ``repro lint`` (and ``python -m repro.lint``).

Exit codes follow the usual analyzer convention:

* ``0`` — clean (no findings),
* ``1`` — findings reported,
* ``2`` — usage/configuration error (bad path, unknown rule code,
  malformed ``[tool.repro-lint]`` policy).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence, TextIO

from repro.lint.engine import LintEngine
from repro.lint.policy import Policy, PolicyError
from repro.lint.report import render_findings
from repro.lint.rules import iter_rules

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``lint`` arguments to a parser (shared with repro.cli)."""
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is the CI artifact form)",
    )
    parser.add_argument(
        "--select", action="append", default=None, metavar="CODES",
        help="check only these comma-separated codes (e.g. RPL001,RPL003)",
    )
    parser.add_argument(
        "--ignore", action="append", default=None, metavar="CODES",
        help="drop these comma-separated codes",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root for policy loading and relative paths "
             "(default: the current directory)",
    )
    parser.add_argument(
        "--no-policy", action="store_true",
        help="ignore [tool.repro-lint] in pyproject.toml (built-in "
             "rule scopes only)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def _split_codes(values: Sequence[str] | None) -> list[str] | None:
    if values is None:
        return None
    return [
        code.strip().upper()
        for value in values
        for code in value.split(",")
        if code.strip()
    ]


def _list_rules(stream: TextIO) -> int:
    for rule in iter_rules():
        scope = ", ".join(rule.default_paths) if rule.default_paths else "all"
        stream.write(
            f"{rule.code} [{rule.severity}] {rule.name}: {rule.summary} "
            f"(scope: {scope})\n"
        )
    stream.write(
        "RPL000 [error] suppression-audit: unused/unknown/rationale-less "
        "inline suppression (scope: all)\n"
        "RPL999 [error] parse-error: file does not parse (scope: all)\n"
    )
    return 0


def run_lint(
    args: argparse.Namespace,
    stdout: TextIO | None = None,
    stderr: TextIO | None = None,
) -> int:
    """Execute the lint command from parsed arguments."""
    out = stdout if stdout is not None else sys.stdout
    err = stderr if stderr is not None else sys.stderr
    if args.list_rules:
        return _list_rules(out)
    root = Path(args.root) if args.root is not None else Path.cwd()
    try:
        policy = Policy() if args.no_policy else Policy.load(root)
        engine = LintEngine(
            policy=policy,
            root=root,
            select=_split_codes(args.select),
            ignore=_split_codes(args.ignore) or (),
        )
        result = engine.lint_paths([Path(p) for p in args.paths])
    except PolicyError as exc:
        err.write(f"repro lint: {exc}\n")
        return 2
    out.write(render_findings(result.findings, result.files_checked,
                              args.format))
    if args.format == "json":
        out.write("")  # render_json is newline-terminated already
    else:
        out.write("\n")
    return 1 if result.findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & concurrency-safety analyzer "
                    "for this repository (rule catalog: docs/lint.md).",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    sys.exit(main())
