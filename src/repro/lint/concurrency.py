"""The concurrency rule set: RPL011–RPL013 over the project index.

These are the analyzer's first *project* rules — they run once over the
cross-module :class:`~repro.lint.index.ProjectIndex` instead of one
file at a time, because lock discipline is a whole-program property:
whether ``queue.py`` may take ``_seq_lock`` depends on what ``api.py``
holds when it calls in.

* **RPL011 guarded-field discipline** — a field written under a lock in
  one method must not be read or written lock-free elsewhere in the
  class.  The guard is inferred from the locked writes, or declared
  explicitly with ``# repro-lint: guarded-by=_lock`` on the field's
  assignment line.
* **RPL012 lock-order consistency** — builds the static
  lock-acquisition graph (including acquisitions reached through
  ``self._helper()`` chains and through typed attributes,
  ``self.registry.create(...)``); any cycle is a deadlock waiting for
  the right interleaving, reported with both acquisition sites.
* **RPL013 blocking-call-under-lock** — no fsync, child-process wait,
  ``Queue.get``/``put``, ``Thread.join`` or socket I/O while holding a
  lock: every other holder stalls behind the wait, which is exactly how
  heartbeat deadlines and drain grace budgets get blown.

The runtime sibling of these rules is :mod:`repro.lint.sanitizer`,
which checks the same two properties (ordering, held-while-blocking) on
the *dynamic* acquisition graph under ``REPRO_TSAN=1``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

from repro.lint.index import ClassInfo, HeldLock, MethodInfo, ProjectIndex
from repro.lint.model import Finding
from repro.lint.rules import Rule, _register

__all__ = [
    "GuardedFieldDiscipline",
    "LockOrderConsistency",
    "NoBlockingCallUnderLock",
]

#: Where the threaded serving stack lives; the only trees with locks.
_CONCURRENT_PATHS = (
    "src/repro/service/",
    "src/repro/pool/",
    "src/repro/resilience/",
)

#: Types that carry their own internal synchronization: accessing one
#: lock-free is fine by construction, so RPL011 never guards them.
_SELF_SYNCHRONIZED = frozenset({
    "queue.Queue", "queue.SimpleQueue", "queue.LifoQueue",
    "queue.PriorityQueue", "threading.Event", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Barrier",
})


def _describe_held(
    method: MethodInfo, held: tuple[HeldLock, ...], path: str
) -> str:
    """Human form of the effective held set at a program point."""
    parts = [h.describe(path) for h in held]
    lexical = {h.attr for h in held}
    for attr in sorted(method.entry_held - lexical):
        parts.append(HeldLock(attr, 0).describe(path))
    return ", ".join(parts)


@_register
class GuardedFieldDiscipline(Rule):
    """RPL011 — fields written under a lock stay under that lock.

    A ``self.evicted += 1`` under ``self._lock`` in one method and a
    bare ``self.evicted`` read in another is a data race: the read can
    observe torn/stale state, and on free-threaded builds it is
    undefined behavior the test suite will never reliably reproduce.
    The guard is inferred (every lock held at every locked write) or
    declared with ``# repro-lint: guarded-by=_lock`` on the assignment
    line; ``__init__`` is exempt, since construction happens-before
    publication.
    """

    code = "RPL011"
    name = "guarded-field-discipline"
    severity = "error"
    summary = "lock-free access to a lock-guarded field"
    default_paths = _CONCURRENT_PATHS
    project = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for cls in index.classes:
            if not cls.lock_attrs:
                continue
            yield from self._check_class(cls)

    def _check_class(self, cls: ClassInfo) -> Iterator[Finding]:
        accesses: dict[str, list[tuple[MethodInfo, object]]] = {}
        for method in cls.iter_methods():
            for access in method.accesses:
                accesses.setdefault(access.attr, []).append(
                    (method, access)
                )
        for field in sorted(set(accesses) | set(cls.guarded_by)):
            if field in cls.lock_attrs or field in cls.methods:
                continue
            if cls.attr_types.get(field) in _SELF_SYNCHRONIZED:
                continue
            yield from self._check_field(
                cls, field, accesses.get(field, [])
            )

    def _check_field(
        self,
        cls: ClassInfo,
        field: str,
        uses: list[tuple[MethodInfo, object]],
    ) -> Iterator[Finding]:
        declared = cls.guarded_by.get(field)
        if declared is not None and declared not in cls.lock_attrs:
            yield self.finding_at(
                cls.path,
                cls.guarded_by_lines.get(field, cls.line),
                1,
                f"`guarded-by={declared}` on `self.{field}` names no "
                f"lock of `{cls.name}` (known: "
                f"{sorted(cls.lock_attrs) or 'none'})",
            )
            return
        outside = [
            (m, a) for m, a in uses if m.name != "__init__"
        ]
        if declared is not None:
            guard = frozenset({declared})
            origin = (
                f"declared `guarded-by={declared}` at "
                f"{cls.path}:{cls.guarded_by_lines.get(field, cls.line)}"
            )
        else:
            locked_writes = [
                (m, a) for m, a in outside
                if a.kind == "write" and m.effective_held(a.held)
            ]
            if not locked_writes:
                return
            guard = frozenset.intersection(
                *(m.effective_held(a.held) for m, a in locked_writes)
            )
            if not guard:
                return  # writes disagree on the lock; nothing to infer
            first_m, first_a = min(
                locked_writes, key=lambda ma: (ma[1].line, ma[1].col)
            )
            origin = (
                f"written under it in `{first_m.name}` at "
                f"{cls.path}:{first_a.line}"
            )
        guard_names = " / ".join(f"`self.{g}`" for g in sorted(guard))
        for method, access in outside:
            if guard & method.effective_held(access.held):
                continue
            yield self.finding_at(
                cls.path, access.line, access.col,
                f"{access.kind} of `self.{field}` without holding "
                f"{guard_names} ({origin}); this lock-free access races "
                "with the guarded writers — take the lock or annotate "
                "the field's true discipline with "
                "`# repro-lint: guarded-by=<lock>`",
            )


# -- RPL012: the static lock graph --------------------------------------

#: One lock in the project-wide graph: (class qualname, lock attr).
_LockNode = "tuple[str, str]"


@dataclasses.dataclass(frozen=True)
class _Edge:
    """Held ``src`` while acquiring ``dst`` — with where that happened."""

    path: str
    line: int
    col: int
    hold_desc: str
    acquire_desc: str


def _short(node: "tuple[str, str]") -> str:
    qual, attr = node
    return f"{qual.rsplit('.', 1)[-1]}.{attr}"


class _LockGraph:
    """The static acquisition graph plus first-seen edge sites."""

    def __init__(self) -> None:
        self.edges: dict[tuple[tuple[str, str], tuple[str, str]], _Edge] = {}

    def add(
        self, src: "tuple[str, str]", dst: "tuple[str, str]", edge: _Edge
    ) -> None:
        if src != dst:  # reentrant RLock holds are not an ordering
            self.edges.setdefault((src, dst), edge)

    def cycles(self) -> list[list[tuple[str, str]]]:
        """Every elementary cycle, canonicalized and deduplicated.

        The graphs here are a handful of nodes, so a DFS from every
        node with an explicit stack is plenty; each cycle is rotated to
        start at its smallest node so the same loop found from two
        entry points reports once.
        """
        graph: dict[tuple[str, str], list[tuple[str, str]]] = {}
        for (src, dst) in self.edges:
            graph.setdefault(src, []).append(dst)
        for dsts in graph.values():
            dsts.sort()
        seen: set[tuple[tuple[str, str], ...]] = set()
        cycles: list[list[tuple[str, str]]] = []

        def visit(
            node: tuple[str, str], stack: list[tuple[str, str]]
        ) -> None:
            if node in stack:
                loop = stack[stack.index(node):]
                pivot = loop.index(min(loop))
                canonical = tuple(loop[pivot:] + loop[:pivot])
                if canonical not in seen:
                    seen.add(canonical)
                    cycles.append(list(canonical))
                return
            stack.append(node)
            for dst in graph.get(node, []):
                visit(dst, stack)
            stack.pop()

        for start in sorted(graph):
            visit(start, [])
        return cycles


@_register
class LockOrderConsistency(Rule):
    """RPL012 — one global acquisition order, no cycles.

    If thread 1 takes ``A`` then ``B`` while thread 2 takes ``B`` then
    ``A``, the deadlock needs nothing but the right interleaving — and
    chaos drills eventually find it.  The graph includes acquisitions
    reached through internal helper chains and through calls on typed
    attributes, so ``api.submit`` holding ``_idem_lock`` while
    ``self.registry.create`` takes the registry lock contributes the
    edge ``_idem_lock -> registry._lock``.
    """

    code = "RPL012"
    name = "lock-order-consistency"
    severity = "error"
    summary = "cyclic lock-acquisition order"
    default_paths = _CONCURRENT_PATHS
    project = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        summaries = self._summaries(index)
        graph = self._build_graph(index, summaries)
        for cycle in graph.cycles():
            yield self._report(graph, cycle)

    # -- method summaries: every lock a call may acquire ----------------

    def _summaries(
        self, index: ProjectIndex
    ) -> dict[tuple[str, str], dict[tuple[str, str], tuple[str, int]]]:
        summaries: dict[
            tuple[str, str], dict[tuple[str, str], tuple[str, int]]
        ] = {}
        for cls in index.classes:
            for method in cls.methods.values():
                direct: dict[tuple[str, str], tuple[str, int]] = {}
                for acq in method.acquisitions:
                    direct.setdefault(
                        (cls.qualname, acq.attr), (cls.path, acq.line)
                    )
                summaries[(cls.qualname, method.name)] = direct
        changed = True
        while changed:
            changed = False
            for cls in index.classes:
                for method in cls.methods.values():
                    mine = summaries[(cls.qualname, method.name)]
                    for call in method.calls:
                        target = self._call_target(index, cls, call)
                        if target is None:
                            continue
                        for node, site in summaries.get(
                            target, {}
                        ).items():
                            if node not in mine:
                                mine[node] = site
                                changed = True
        return summaries

    @staticmethod
    def _call_target(
        index: ProjectIndex, cls: ClassInfo, call
    ) -> tuple[str, str] | None:
        if call.self_method is not None:
            if call.self_method in cls.methods:
                return (cls.qualname, call.self_method)
            return None
        if call.attr is not None:
            other = index.resolve_attr_class(cls, call.attr)
            if other is not None and call.method in other.methods:
                return (other.qualname, call.method)
        return None

    # -- edges ----------------------------------------------------------

    def _build_graph(
        self,
        index: ProjectIndex,
        summaries: dict[
            tuple[str, str], dict[tuple[str, str], tuple[str, int]]
        ],
    ) -> _LockGraph:
        graph = _LockGraph()
        for cls in index.classes:
            for method in cls.methods.values():
                entry_holds = tuple(
                    HeldLock(attr, 0) for attr in sorted(method.entry_held)
                )
                for acq in method.acquisitions:
                    holds = self._merge_holds(entry_holds, acq.held)
                    dst = (cls.qualname, acq.attr)
                    for hold in holds:
                        graph.add(
                            (cls.qualname, hold.attr), dst,
                            _Edge(
                                path=cls.path, line=acq.line, col=acq.col,
                                hold_desc=hold.describe(cls.path),
                                acquire_desc=(
                                    f"`{_short(dst)}` acquired at "
                                    f"{cls.path}:{acq.line}"
                                ),
                            ),
                        )
                for call in method.calls:
                    holds = self._merge_holds(entry_holds, call.held)
                    if not holds:
                        continue
                    target = self._call_target(index, cls, call)
                    if target is None:
                        continue
                    for node, site in sorted(
                        summaries.get(target, {}).items()
                    ):
                        for hold in holds:
                            graph.add(
                                (cls.qualname, hold.attr), node,
                                _Edge(
                                    path=cls.path, line=call.line,
                                    col=call.col,
                                    hold_desc=hold.describe(cls.path),
                                    acquire_desc=(
                                        f"`{_short(node)}` acquired at "
                                        f"{site[0]}:{site[1]} via the "
                                        f"call at {cls.path}:{call.line}"
                                    ),
                                ),
                            )
        return graph

    @staticmethod
    def _merge_holds(
        entry_holds: tuple[HeldLock, ...], held: tuple[HeldLock, ...]
    ) -> tuple[HeldLock, ...]:
        lexical = {h.attr for h in held}
        return held + tuple(
            h for h in entry_holds if h.attr not in lexical
        )

    # -- reporting ------------------------------------------------------

    def _report(
        self, graph: _LockGraph, cycle: list[tuple[str, str]]
    ) -> Finding:
        edges = [
            graph.edges[(cycle[i], cycle[(i + 1) % len(cycle)])]
            for i in range(len(cycle))
        ]
        anchor = min(edges, key=lambda e: (e.path, e.line, e.col))
        order = " -> ".join(
            _short(node) for node in (*cycle, cycle[0])
        )
        legs = "; ".join(
            f"{edge.acquire_desc} while holding {edge.hold_desc}"
            for edge in edges
        )
        return self.finding_at(
            anchor.path, anchor.line, anchor.col,
            f"lock-order cycle {order}: {legs} — a deadlock needs only "
            "the right interleaving; pick one global order and release "
            "before acquiring against it",
        )


# -- RPL013: blocking calls under a lock --------------------------------

#: Import-resolved calls that block on I/O, children, or the clock.
_BLOCKING_CALLS = {
    "os.fsync": "an fsync",
    "os.fdatasync": "an fsync",
    "time.sleep": "a sleep",
    "socket.create_connection": "a network connect",
    "subprocess.run": "a child-process wait",
    "subprocess.call": "a child-process wait",
    "subprocess.check_call": "a child-process wait",
    "subprocess.check_output": "a child-process wait",
    "subprocess.Popen": "a child-process spawn",
    "multiprocessing.connection.wait": "a pipe wait",
    "select.select": "an I/O wait",
    "repro.resilience.atomic.durable_append_text": "an fsync'd append",
    "repro.resilience.atomic.atomic_write_text": "an fsync'd write",
}

#: Blocking methods keyed by the receiver's statically-known type.
_BLOCKING_METHODS = {
    "queue.Queue": frozenset({"get", "put", "join"}),
    "queue.LifoQueue": frozenset({"get", "put", "join"}),
    "queue.PriorityQueue": frozenset({"get", "put", "join"}),
    "queue.SimpleQueue": frozenset({"get", "put"}),
    "threading.Thread": frozenset({"join"}),
    "threading.Event": frozenset({"wait"}),
    "socket.socket": frozenset({
        "recv", "recv_into", "send", "sendall", "accept", "connect",
    }),
}


@_register
class NoBlockingCallUnderLock(Rule):
    """RPL013 — no blocking I/O, process waits or sleeps under a lock.

    A lock held across an fsync or a ``Queue.get`` turns every other
    holder into a disk/network waiter: admission latency inherits the
    slowest flush, heartbeat deadline math stops meaning anything, and
    a wedged child can wedge the registry.  Blocking work happens
    outside the critical section; the lock protects state, not time.
    """

    code = "RPL013"
    name = "no-blocking-call-under-lock"
    severity = "error"
    summary = "blocking call while holding a lock"
    default_paths = _CONCURRENT_PATHS
    project = True

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for cls in index.classes:
            if not cls.lock_attrs:
                continue
            for method in cls.iter_methods():
                yield from self._check_method(cls, method)

    def _check_method(
        self, cls: ClassInfo, method: MethodInfo
    ) -> Iterator[Finding]:
        for call in method.calls:
            if not method.effective_held(call.held):
                continue
            blocked = self._blocking_label(cls, call)
            if blocked is None:
                continue
            what, label = blocked
            held = _describe_held(method, call.held, cls.path)
            yield self.finding_at(
                cls.path, call.line, call.col,
                f"`{what}` is {label} made while holding {held}; every "
                "other holder stalls behind it — move the blocking call "
                "outside the critical section",
            )

    @staticmethod
    def _blocking_label(
        cls: ClassInfo, call
    ) -> tuple[str, str] | None:
        if call.resolved is not None:
            label = _BLOCKING_CALLS.get(call.resolved)
            if label is not None:
                return call.resolved, label
            return None
        receiver_type = None
        display = None
        if call.attr is not None:
            receiver_type = cls.attr_types.get(call.attr)
            display = f"self.{call.attr}.{call.method}"
        elif call.local_type is not None:
            receiver_type = call.local_type
            display = f"{call.local_type}.{call.method}"
        if receiver_type is None:
            return None
        methods = _BLOCKING_METHODS.get(receiver_type)
        if methods is not None and call.method in methods:
            return display, f"a blocking `{receiver_type}.{call.method}`"
        return None
