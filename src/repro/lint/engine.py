"""The analysis driver: discover files, run scoped rules, audit output.

The run is two passes over one parse.  Per file: parse (a syntax error
becomes an ``RPL999`` finding, never a crash) and run every per-file
rule the policy scopes to that path.  Then the **project pass**: all
parsed files are indexed together (:class:`~repro.lint.index.
ProjectIndex`) and the project rules (RPL011–RPL013) run once over the
cross-module view — their findings are scoped per *finding* location,
so a cycle between a linted and an exempted file still reports at the
linted site.  Finally each file's findings — from both passes — are
filtered through its inline suppressions and the suppressions
themselves are audited (``RPL000``).  Findings come back sorted by
``(path, line, col, code)`` so text and JSON output are byte-stable
for identical input — CI diffs the artifact across runs.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.index import ProjectIndex
from repro.lint.model import Finding, SourceFile
from repro.lint.policy import Policy, PolicyError
from repro.lint.rules import RULES, iter_rules
from repro.lint.suppress import apply_suppressions, scan_suppressions

__all__ = ["LintEngine", "LintResult"]


@dataclasses.dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding]
    files_checked: int

    @property
    def clean(self) -> bool:
        return not self.findings


class LintEngine:
    """Runs the registered rules under a policy.

    Parameters
    ----------
    policy:
        The repo policy (``Policy()`` for built-in defaults).
    root:
        Repo root that file paths are reported relative to; rule scoping
        and policy patterns match these relative paths.
    select / ignore:
        Final command-line overrides applied *on top of* the policy:
        ``select`` restricts checking to the listed codes, ``ignore``
        drops codes.  Unknown codes raise :class:`PolicyError` (the CLI
        maps it to exit 2).
    """

    def __init__(
        self,
        policy: Policy | None = None,
        root: Path | None = None,
        select: Iterable[str] | None = None,
        ignore: Iterable[str] = (),
    ) -> None:
        self.policy = policy if policy is not None else Policy()
        self.root = (root if root is not None else Path.cwd()).resolve()
        known = frozenset(RULES) | {"RPL000", "RPL999"}
        self.policy.validate_codes(known)
        self.select = (
            frozenset(c.upper() for c in select) if select is not None
            else None
        )
        self.ignore = frozenset(c.upper() for c in ignore)
        for code in sorted((self.select or frozenset()) | self.ignore):
            if code not in known:
                raise PolicyError(
                    f"unknown rule code {code}; known: {sorted(known)}"
                )

    # -- discovery ------------------------------------------------------

    def discover(self, paths: Sequence[Path]) -> list[Path]:
        """Python files under ``paths``, sorted for stable output."""
        files: set[Path] = set()
        for path in paths:
            if path.is_dir():
                files.update(path.rglob("*.py"))
            elif path.is_file():
                files.add(path)
            else:
                raise PolicyError(f"no such file or directory: {path}")
        return sorted(files)

    # -- execution ------------------------------------------------------

    def lint_paths(self, paths: Sequence[Path]) -> LintResult:
        """Lint every ``*.py`` file under ``paths``."""
        files = self.discover(paths)
        sources: list[SourceFile] = []
        findings: list[Finding] = []
        for file_path in files:
            rel = self._relative(file_path)
            text = file_path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text)
            except SyntaxError as exc:
                findings.append(_parse_failure(rel, exc))
            else:
                sources.append(SourceFile(text, rel, tree))
        findings.extend(self._lint_sources(sources))
        return LintResult(findings=sorted(findings), files_checked=len(files))

    def lint_source(self, text: str, rel_path: str) -> list[Finding]:
        """Lint one module given as text (the test fixtures' entry point).

        Project rules still run — over an index of just this module —
        so single-file fixtures exercise RPL011–RPL013 the same way
        whole-tree runs do.
        """
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            return [_parse_failure(rel_path, exc)]
        return sorted(
            self._lint_sources([SourceFile(text, rel_path, tree)])
        )

    def _lint_sources(self, sources: list[SourceFile]) -> list[Finding]:
        """Both passes plus suppression filtering, all files at once."""
        raw: dict[str, list[Finding]] = {src.path: [] for src in sources}
        for src in sources:
            for rule in iter_rules():
                if rule.project or not self._enabled(rule.code):
                    continue
                if not self.policy.rule_applies(
                    rule.code, rule.default_paths, src.path
                ):
                    continue
                raw[src.path].extend(rule.check(src))
        project_rules = [
            rule for rule in iter_rules()
            if rule.project and self._enabled(rule.code)
        ]
        if project_rules and sources:
            index = ProjectIndex.build(sources)
            for rule in project_rules:
                for finding in rule.check_project(index):
                    if finding.path not in raw:
                        continue
                    if self.policy.rule_applies(
                        rule.code, rule.default_paths, finding.path
                    ):
                        raw[finding.path].append(finding)
        findings: list[Finding] = []
        for src in sources:
            suppressions = scan_suppressions(src.text, src.path)
            audited = apply_suppressions(raw[src.path], suppressions)
            findings.extend(
                f for f in audited if self._enabled(f.code)
            )
        return findings

    # -- helpers ---------------------------------------------------------

    def _enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        if self.select is not None and code not in self.select:
            return False
        return True

    def _relative(self, file_path: Path) -> str:
        resolved = file_path.resolve()
        try:
            return resolved.relative_to(self.root).as_posix()
        except ValueError:
            return resolved.as_posix()


def _parse_failure(rel_path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=rel_path,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        code="RPL999",
        message=f"file does not parse: {exc.msg}",
        severity="error",
        rule="parse-error",
    )
