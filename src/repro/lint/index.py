"""Cross-module project index: classes, locks, and guarded state.

The per-file rules (RPL001–RPL010) see one module at a time, which is
exactly the wrong granularity for concurrency discipline: whether
``queue.py`` may take ``_seq_lock`` depends on what ``jobs.py`` holds
when it calls in.  This module builds the shared picture the
concurrency rules (RPL011–RPL013) analyze:

* every class in the linted file set, keyed by its dotted qualname
  (``repro.service.jobs.JobRegistry``);
* its **lock attributes** — ``self.X = threading.Lock()`` / ``RLock`` /
  ``Condition`` assignments, resolved through the import map so aliased
  spellings still count;
* its **attribute types** where statically derivable (constructor
  calls, ``x if cond else None`` ternaries, parameter and variable
  annotations) — what lets a rule know ``self._queue.get(...)`` blocks;
* per method, every ``self.F`` **field access** (read/write), every
  lock **acquisition** (``with self._lock:``), and every call, each
  tagged with the set of locks *lexically held* at that point;
* a **held-at-entry** fixed point: an underscore-prefixed method called
  only from sites that hold ``_lock`` is analyzed as holding ``_lock``
  on entry (``JobRegistry._note_terminal`` is the motivating case);
* explicit ``# repro-lint: guarded-by=_lock`` annotations, scanned from
  comments on field-assignment lines.

Everything here is pure data extraction; the judgment calls (what
counts as a violation) live in :mod:`repro.lint.concurrency`.
"""

from __future__ import annotations

import ast
import dataclasses
import io
import re
import tokenize
from typing import Iterable, Iterator

from repro.lint.model import SourceFile

__all__ = [
    "ProjectIndex",
    "ClassInfo",
    "MethodInfo",
    "FieldAccess",
    "Acquisition",
    "CallSite",
    "HeldLock",
    "module_name",
]

#: Fully-qualified constructors that create a mutual-exclusion object.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
})

_GUARDED_BY = re.compile(
    r"#\s*repro-lint:\s*guarded-by=(?P<lock>[A-Za-z_][A-Za-z0-9_]*)"
)

#: Mutating method names on builtin containers (mirrors the RPL006 set;
#: calling one through ``self.F.append(...)`` is a *write* to ``F``).
#: Deliberately excludes ``queue.Queue``'s ``put``/``put_nowait``: the
#: queue carries its own internal lock, so putting into it is not a
#: write that needs the holder's guard.
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "setdefault", "update",
})


def module_name(rel_path: str) -> str:
    """Dotted module name for a repo-relative path (best effort)."""
    path = rel_path
    if path.startswith("src/"):
        path = path[len("src/"):]
    if path.endswith(".py"):
        path = path[: -len(".py")]
    return path.replace("/", ".")


@dataclasses.dataclass(frozen=True)
class HeldLock:
    """One lock held at a program point, with where it came from."""

    attr: str
    #: Line the ``with self.attr:`` sits on; 0 = held at method entry
    #: (inferred from every internal call site holding it).
    line: int

    def describe(self, path: str) -> str:
        if self.line == 0:
            return f"`self.{self.attr}` (held at method entry)"
        return f"`self.{self.attr}` (acquired {path}:{self.line})"


@dataclasses.dataclass(frozen=True)
class FieldAccess:
    """One read or write of ``self.<attr>`` inside a method."""

    attr: str
    kind: str  # "read" | "write"
    line: int
    col: int
    held: tuple[HeldLock, ...]


@dataclasses.dataclass(frozen=True)
class Acquisition:
    """One ``with self.<attr>:`` lock acquisition."""

    attr: str
    line: int
    col: int
    held: tuple[HeldLock, ...]  # locks already held when acquiring


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call made inside a method, tagged with the held-lock set.

    Exactly one of the shapes is populated:

    * ``resolved`` — a fully-qualified import-resolved target
      (``os.fsync``);
    * ``self_method`` — ``self.m(...)``;
    * ``attr`` + ``method`` — ``self.X.m(...)``, a call through a field;
    * ``local_type`` + ``method`` — a call on a local whose constructor
      resolved (``t = threading.Thread(...); t.join()``).
    """

    line: int
    col: int
    held: tuple[HeldLock, ...]
    resolved: str | None = None
    self_method: str | None = None
    attr: str | None = None
    method: str | None = None
    local_type: str | None = None


@dataclasses.dataclass
class MethodInfo:
    """Everything the rules need to know about one method."""

    name: str
    line: int
    accesses: list[FieldAccess] = dataclasses.field(default_factory=list)
    acquisitions: list[Acquisition] = dataclasses.field(default_factory=list)
    calls: list[CallSite] = dataclasses.field(default_factory=list)
    #: Locks provably held whenever this method runs (fixed point over
    #: internal call sites; always empty for public methods).
    entry_held: frozenset[str] = frozenset()

    @property
    def is_internal(self) -> bool:
        return self.name.startswith("_") and not self.name.startswith("__")

    def effective_held(self, held: tuple[HeldLock, ...]) -> frozenset[str]:
        """Lexically-held locks plus the held-at-entry set."""
        return frozenset(h.attr for h in held) | self.entry_held


@dataclasses.dataclass
class ClassInfo:
    """One class, its locks, its typed attributes, and its methods."""

    name: str
    path: str
    module: str
    line: int
    lock_attrs: dict[str, str] = dataclasses.field(default_factory=dict)
    attr_types: dict[str, str] = dataclasses.field(default_factory=dict)
    methods: dict[str, MethodInfo] = dataclasses.field(default_factory=dict)
    #: Explicit ``guarded-by`` annotations: field -> lock attr.
    guarded_by: dict[str, str] = dataclasses.field(default_factory=dict)
    #: Line of each guarded-by annotation, for finding locations.
    guarded_by_lines: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"

    def iter_methods(self) -> Iterator[MethodInfo]:
        for name in sorted(self.methods):
            yield self.methods[name]


class ProjectIndex:
    """The cross-module view the project-scoped rules run against."""

    def __init__(self, classes: list[ClassInfo]) -> None:
        self.classes = sorted(classes, key=lambda c: (c.path, c.line))
        self.by_qualname = {cls.qualname: cls for cls in self.classes}

    @classmethod
    def build(cls, sources: Iterable[SourceFile]) -> "ProjectIndex":
        classes: list[ClassInfo] = []
        for src in sources:
            guards = _scan_guard_comments(src.text)
            module = module_name(src.path)
            for node in ast.walk(src.tree):
                if isinstance(node, ast.ClassDef):
                    classes.append(
                        _build_class(src, module, node, guards)
                    )
        for info in classes:
            _solve_entry_held(info)
        return cls(classes)

    def resolve_attr_class(
        self, cls: ClassInfo, attr: str
    ) -> ClassInfo | None:
        """The :class:`ClassInfo` a typed attribute points at, if indexed."""
        type_name = cls.attr_types.get(attr)
        if type_name is None:
            return None
        return self.by_qualname.get(type_name)


# -- comment scanning ----------------------------------------------------


def _scan_guard_comments(text: str) -> dict[int, str]:
    """``guarded-by`` annotations keyed by physical line."""
    table: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    for tok in comments:
        match = _GUARDED_BY.search(tok.string)
        if match is not None:
            table[tok.start[0]] = match.group("lock")
    return table


# -- class extraction ----------------------------------------------------


def _self_attr(node: ast.expr) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _build_class(
    src: SourceFile,
    module: str,
    node: ast.ClassDef,
    guards: dict[int, str],
) -> ClassInfo:
    info = ClassInfo(
        name=node.name, path=src.path, module=module, line=node.lineno
    )
    local_classes = {
        n.name for n in ast.walk(src.tree) if isinstance(n, ast.ClassDef)
    }
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scanner = _MethodScanner(
                src, info, stmt, guards, local_classes
            )
            info.methods[stmt.name] = scanner.run()
    return info


def _annotation_type(
    annotation: ast.expr | None, src: SourceFile, local_classes: set[str],
    module: str,
) -> str | None:
    """The top-level resolvable type named by an annotation, if any.

    Handles ``T``, ``pkg.T``, ``T | None``, ``Optional[T]``, subscripted
    generics (``queue.Queue[...]`` resolves to its base) and quoted
    string annotations (re-parsed).  Only the *top-level* type counts:
    ``list[threading.Thread]`` is a list, not a Thread, so it resolves
    to nothing rather than mistyping the container as its element.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    return _type_of_expr(annotation, src, local_classes, module)


def _type_of_expr(
    node: ast.expr, src: SourceFile, local_classes: set[str], module: str
) -> str | None:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _type_of_expr(node.left, src, local_classes, module)
        if left is not None:
            return left
        return _type_of_expr(node.right, src, local_classes, module)
    if isinstance(node, ast.Subscript):
        base = _resolve_type(node.value, src, local_classes, module)
        if base in ("typing.Optional", "typing.Union"):
            inner = node.slice
            elements = (
                inner.elts if isinstance(inner, ast.Tuple) else [inner]
            )
            for element in elements:
                resolved = _type_of_expr(
                    element, src, local_classes, module
                )
                if resolved is not None:
                    return resolved
            return None
        return base
    if isinstance(node, (ast.Name, ast.Attribute)):
        return _resolve_type(node, src, local_classes, module)
    return None


def _resolve_type(
    node: ast.expr, src: SourceFile, local_classes: set[str], module: str
) -> str | None:
    """Dotted qualname of a type expression, if derivable."""
    if isinstance(node, ast.Name):
        if node.id in ("None", "Optional", "Union", "self"):
            return None
        resolved = src.imports.get(node.id)
        if resolved is not None:
            return resolved
        if node.id in local_classes:
            return f"{module}.{node.id}"
        return None
    resolved = src.resolve_call(node)
    return resolved


class _MethodScanner:
    """One pass over a method body, tracking the lexically-held locks.

    Nested ``def``/``lambda``/``class`` bodies are skipped: they run at
    some later time under some other lock regime, so attributing the
    enclosing held set to them would be wrong in both directions.
    """

    def __init__(
        self,
        src: SourceFile,
        cls: ClassInfo,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        guards: dict[int, str],
        local_classes: set[str],
    ) -> None:
        self.src = src
        self.cls = cls
        self.fn = fn
        self.guards = guards
        self.local_classes = local_classes
        self.info = MethodInfo(name=fn.name, line=fn.lineno)
        #: Parameter name -> annotated type (feeds ``self.x = param``).
        self.param_types: dict[str, str] = {}
        #: Local variable name -> constructed type.
        self.local_types: dict[str, str] = {}

    def run(self) -> MethodInfo:
        args = self.fn.args
        for arg in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        ):
            resolved = _annotation_type(
                arg.annotation, self.src, self.local_classes,
                self.cls.module,
            )
            if resolved is not None:
                self.param_types[arg.arg] = resolved
        for stmt in self.fn.body:
            self._scan(stmt, ())
        return self.info

    # -- recording ------------------------------------------------------

    def _record_access(
        self, attr: str, kind: str, node: ast.AST,
        held: tuple[HeldLock, ...],
    ) -> None:
        self.info.accesses.append(FieldAccess(
            attr=attr, kind=kind,
            line=getattr(node, "lineno", self.fn.lineno),
            col=getattr(node, "col_offset", 0) + 1,
            held=held,
        ))
        if kind == "write":
            lock = self.guards.get(getattr(node, "lineno", -1))
            if lock is not None and attr not in self.cls.guarded_by:
                self.cls.guarded_by[attr] = lock
                self.cls.guarded_by_lines[attr] = getattr(
                    node, "lineno", self.fn.lineno
                )

    def _record_attr_value(self, attr: str, value: ast.expr) -> None:
        """Type/lock bookkeeping for ``self.attr = <value>``."""
        candidates: list[ast.expr] = [value]
        if isinstance(value, ast.IfExp):
            candidates = [value.body, value.orelse]
        for candidate in candidates:
            if isinstance(candidate, ast.Call):
                resolved = self.src.resolve_call(candidate.func)
                if resolved is None and isinstance(
                    candidate.func, ast.Name
                ) and candidate.func.id in self.local_classes:
                    resolved = f"{self.cls.module}.{candidate.func.id}"
                if resolved is None:
                    continue
                if resolved in LOCK_FACTORIES:
                    self.cls.lock_attrs.setdefault(
                        attr, resolved.rsplit(".", 1)[1]
                    )
                else:
                    self.cls.attr_types.setdefault(attr, resolved)
                return
            if isinstance(candidate, ast.Name):
                param = self.param_types.get(candidate.id)
                if param is not None:
                    self.cls.attr_types.setdefault(attr, param)
                    return

    # -- the walk -------------------------------------------------------

    def _scan_all(
        self, nodes: Iterable[ast.AST], held: tuple[HeldLock, ...]
    ) -> None:
        for node in nodes:
            self._scan(node, held)

    def _scan(self, node: ast.AST, held: tuple[HeldLock, ...]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._scan_with(node, held)
        elif isinstance(node, ast.Call):
            self._scan_call(node, held)
        elif isinstance(node, ast.Assign):
            self._scan(node.value, held)
            for target in node.targets:
                self._scan_store(target, held)
            self._note_assign_types(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._scan(node.value, held)
                self._scan_store(node.target, held)
                self._note_assign_types([node.target], node.value)
            attr = _self_attr(node.target)
            if attr is not None:
                annotated = _annotation_type(
                    node.annotation, self.src, self.local_classes,
                    self.cls.module,
                )
                if annotated is not None:
                    self.cls.attr_types.setdefault(attr, annotated)
        elif isinstance(node, ast.AugAssign):
            self._scan(node.value, held)
            self._scan_store(node.target, held)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._scan_store(target, held)
        elif isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                self._record_access(attr, "read", node, held)
            else:
                self._scan(node.value, held)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                   ast.ClassDef)
        ):
            return  # deferred execution: a different lock regime
        else:
            self._scan_all(ast.iter_child_nodes(node), held)

    def _scan_with(
        self, node: ast.With | ast.AsyncWith, held: tuple[HeldLock, ...]
    ) -> None:
        inner = held
        for item in node.items:
            ctx = item.context_expr
            attr = _self_attr(ctx)
            if attr is not None and attr in self.cls.lock_attrs:
                if all(h.attr != attr for h in inner):
                    self.info.acquisitions.append(Acquisition(
                        attr=attr, line=ctx.lineno,
                        col=ctx.col_offset + 1, held=inner,
                    ))
                    inner = inner + (HeldLock(attr, ctx.lineno),)
            else:
                self._scan(ctx, inner)
            if item.optional_vars is not None:
                self._scan_store(item.optional_vars, inner)
        self._scan_all(node.body, inner)

    def _scan_call(
        self, node: ast.Call, held: tuple[HeldLock, ...]
    ) -> None:
        func = node.func
        handled_func = False
        if isinstance(func, ast.Attribute):
            recv_attr = _self_attr(func.value)
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                # self.m(...) — a method (or callable-field) call.
                self.info.calls.append(CallSite(
                    line=node.lineno, col=node.col_offset + 1,
                    held=held, self_method=func.attr,
                ))
                handled_func = True
            elif recv_attr is not None:
                # self.X.m(...) — a call through a field.
                kind = (
                    "write" if func.attr in _MUTATOR_METHODS else "read"
                )
                self._record_access(recv_attr, kind, func.value, held)
                self.info.calls.append(CallSite(
                    line=node.lineno, col=node.col_offset + 1,
                    held=held, attr=recv_attr, method=func.attr,
                ))
                handled_func = True
            elif isinstance(func.value, ast.Name):
                local = self.local_types.get(func.value.id)
                if local is not None:
                    self.info.calls.append(CallSite(
                        line=node.lineno, col=node.col_offset + 1,
                        held=held, local_type=local, method=func.attr,
                    ))
                    handled_func = True
        resolved = self.src.resolve_call(func)
        if resolved is not None:
            self.info.calls.append(CallSite(
                line=node.lineno, col=node.col_offset + 1,
                held=held, resolved=resolved,
            ))
            handled_func = True
        if not handled_func:
            self._scan(func, held)
        self._scan_all(node.args, held)
        self._scan_all((kw.value for kw in node.keywords), held)

    def _scan_store(
        self, target: ast.expr, held: tuple[HeldLock, ...]
    ) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self._record_access(attr, "write", target, held)
            return
        if isinstance(target, ast.Subscript):
            root = _self_attr(target.value)
            if root is not None:
                # self.F[k] = v mutates F.
                self._record_access(root, "write", target, held)
            else:
                self._scan(target.value, held)
            self._scan(target.slice, held)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_store(element, held)
            return
        if isinstance(target, ast.Starred):
            self._scan_store(target.value, held)
            return
        if isinstance(target, ast.Name):
            return
        self._scan(target, held)

    def _note_assign_types(
        self, targets: list[ast.expr], value: ast.expr
    ) -> None:
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                self._record_attr_value(attr, value)
            elif isinstance(target, ast.Name) and isinstance(
                value, ast.Call
            ):
                resolved = self.src.resolve_call(value.func)
                if resolved is not None:
                    self.local_types[target.id] = resolved


# -- held-at-entry fixed point ------------------------------------------


def _solve_entry_held(cls: ClassInfo) -> None:
    """Infer locks every caller provably holds when entering a method.

    Only underscore-prefixed (non-dunder) methods participate: a public
    method is callable from outside the class with nothing held, so its
    entry set is always empty.  For internal methods the entry set is
    the *intersection* over every internal call site of (caller's entry
    set ∪ locks lexically held at the site) — grown monotonically to a
    fixed point, so helper chains (``create`` → ``_note_terminal``)
    resolve without annotations.  A method with no internal call sites
    keeps an empty entry set (it may be a thread target or callback).
    """
    internal = {
        name for name, m in cls.methods.items() if m.is_internal
    }
    if not internal:
        return
    sites: dict[str, list[tuple[str, frozenset[str]]]] = {
        name: [] for name in internal
    }
    for caller_name, caller in cls.methods.items():
        for call in caller.calls:
            if call.self_method in sites:
                sites[call.self_method].append(
                    (caller_name, frozenset(h.attr for h in call.held))
                )
    entry: dict[str, frozenset[str]] = {
        name: frozenset() for name in internal
    }
    changed = True
    while changed:
        changed = False
        for name in sorted(internal):
            call_sites = sites[name]
            if not call_sites:
                continue
            candidate: frozenset[str] | None = None
            for caller_name, held in call_sites:
                caller_entry = entry.get(caller_name, frozenset())
                site_held = held | caller_entry
                candidate = (
                    site_held if candidate is None
                    else candidate & site_held
                )
            assert candidate is not None
            if candidate != entry[name]:
                entry[name] = candidate
                changed = True
    for name in internal:
        cls.methods[name].entry_held = entry[name]
