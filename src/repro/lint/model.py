"""Shared data model of the analyzer: findings and parsed source files.

A :class:`SourceFile` bundles everything a rule may need — the source
text, the parsed AST, and an *import map* resolving local binding names
back to fully qualified module paths (``np`` → ``numpy``, ``default_rng``
→ ``numpy.random.default_rng``), so rules match semantics rather than
spelling: ``np.random.seed``, ``numpy.random.seed`` and
``from numpy.random import seed`` all resolve to the same dotted name.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import PurePosixPath
from typing import Any

__all__ = ["Finding", "SourceFile", "dotted_name"]

#: Ordering of severities, most severe first (used only for display).
SEVERITIES = ("error", "warning")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str = dataclasses.field(compare=False)
    severity: str = dataclasses.field(default="error", compare=False)
    rule: str = dataclasses.field(default="", compare=False)

    def to_json(self) -> dict[str, Any]:
        """Stable JSON shape (documented in docs/lint.md)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """The familiar one-line ``path:line:col: CODE message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.message}"
        )


class SourceFile:
    """One parsed module under analysis.

    Parameters
    ----------
    text:
        Full source text.
    rel_path:
        Path the findings should report, *relative to the repo root* in
        POSIX form — rule scoping and policy exemptions match against it.
    tree:
        The parsed module (``ast.parse(text)``); the caller owns parse
        errors so the engine can turn them into findings rather than
        crashes.
    """

    def __init__(self, text: str, rel_path: str, tree: ast.Module) -> None:
        self.text = text
        self.path = str(PurePosixPath(rel_path))
        self.tree = tree
        self._imports: dict[str, str] | None = None

    # -- import resolution ---------------------------------------------

    @property
    def imports(self) -> dict[str, str]:
        """Binding name → fully qualified module/attribute path."""
        if self._imports is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname is not None:
                            table[alias.asname] = alias.name
                        else:
                            # ``import a.b`` binds ``a`` (to package a).
                            root = alias.name.split(".", 1)[0]
                            table[root] = root
                elif isinstance(node, ast.ImportFrom):
                    if node.level or node.module is None:
                        continue  # relative imports never name stdlib/numpy
                    for alias in node.names:
                        bound = alias.asname or alias.name
                        table[bound] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    def resolve_call(self, func: ast.expr) -> str | None:
        """Fully qualified dotted name of a call target, if derivable.

        Only attribute chains rooted at an *imported* binding resolve
        (``np.random.seed`` → ``numpy.random.seed``); chains rooted at
        local objects (``self._rng.random``) return ``None`` so rules
        never guess about instance state.  A bare imported name resolves
        through ``from``-imports (``default_rng`` →
        ``numpy.random.default_rng``).
        """
        parts = dotted_name(func)
        if parts is None:
            return None
        root, rest = parts[0], parts[1:]
        resolved_root = self.imports.get(root)
        if resolved_root is None:
            return None
        return ".".join((resolved_root, *rest))


def dotted_name(node: ast.expr) -> tuple[str, ...] | None:
    """``a.b.c`` attribute chain as ``("a", "b", "c")``, else ``None``."""
    chain: list[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    chain.append(node.id)
    return tuple(reversed(chain))
