"""Path-scoped policy from ``pyproject.toml [tool.repro-lint]``.

The policy answers one question per (rule, file): *does this rule apply
here?*  Three layers compose, most specific last:

1. the rule's built-in ``default_paths`` (its natural habitat),
2. ``[tool.repro-lint.rules.RPLxxx] include = [...]`` replacing that
   scope, and
3. ``exclude = [...]`` carving out exemptions — which **require** a
   ``reason`` string, mirroring the inline-suppression contract: no
   silenced rule without a recorded why.

Top-level keys: ``select`` (restrict to listed codes), ``ignore``
(disable codes repo-wide), ``exclude`` (paths no rule visits).  Path
patterns are repo-relative POSIX prefixes: ``src/repro/pool/`` matches
the package, ``src/repro/cli.py`` exactly that file.  Unknown keys or
codes are configuration errors (CLI exit 2), never silently ignored.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Mapping

__all__ = ["Policy", "RuleScope", "PolicyError", "path_matches"]

try:  # Python 3.11+; the repo supports 3.10 where tomli may be absent.
    import tomllib
except ImportError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]


class PolicyError(ValueError):
    """A malformed ``[tool.repro-lint]`` table (CLI usage error, exit 2)."""


def path_matches(rel_path: str, pattern: str) -> bool:
    """Prefix-match a repo-relative POSIX path against a policy pattern."""
    pattern = pattern.strip().lstrip("./")
    if not pattern:
        return False
    if rel_path == pattern.rstrip("/"):
        return True
    return rel_path.startswith(pattern.rstrip("/") + "/")


@dataclasses.dataclass(frozen=True)
class RuleScope:
    """Per-rule policy overrides."""

    include: tuple[str, ...] | None = None
    exclude: tuple[str, ...] = ()
    reason: str | None = None


@dataclasses.dataclass(frozen=True)
class Policy:
    """Validated repo policy (empty defaults when no table is present)."""

    select: tuple[str, ...] | None = None
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    rules: Mapping[str, RuleScope] = dataclasses.field(default_factory=dict)

    # -- construction ---------------------------------------------------

    @classmethod
    def load(cls, root: Path) -> "Policy":
        """Read ``<root>/pyproject.toml``; absent file/table = defaults."""
        path = root / "pyproject.toml"
        if not path.is_file():
            return cls()
        if tomllib is None:  # pragma: no cover - 3.10 without tomli
            raise PolicyError(
                f"cannot read {path}: tomllib unavailable on this "
                "interpreter; run the linter under Python >= 3.11"
            )
        with path.open("rb") as fh:
            data = tomllib.load(fh)
        table = data.get("tool", {}).get("repro-lint", {})
        return cls.from_table(table, origin=str(path))

    @classmethod
    def from_table(
        cls, table: Mapping[str, Any], origin: str = "[tool.repro-lint]"
    ) -> "Policy":
        """Validate a raw TOML table into a :class:`Policy`."""
        known = {"select", "ignore", "exclude", "rules"}
        unknown = sorted(set(table) - known)
        if unknown:
            raise PolicyError(
                f"{origin}: unknown key(s) {unknown}; expected {sorted(known)}"
            )
        select = _str_list(table, "select", origin)
        rules: dict[str, RuleScope] = {}
        for code, scope_table in dict(table.get("rules", {})).items():
            rules[str(code).upper()] = _rule_scope(
                code, scope_table, origin
            )
        return cls(
            select=tuple(select) if select is not None else None,
            ignore=tuple(_str_list(table, "ignore", origin) or ()),
            exclude=tuple(_str_list(table, "exclude", origin) or ()),
            rules=rules,
        )

    # -- queries ---------------------------------------------------------

    def rule_applies(
        self, code: str, default_paths: tuple[str, ...], rel_path: str
    ) -> bool:
        """Whether rule ``code`` should check the file at ``rel_path``."""
        if any(path_matches(rel_path, pat) for pat in self.exclude):
            return False
        if code in self.ignore:
            return False
        if self.select is not None and code not in self.select:
            return False
        scope = self.rules.get(code, RuleScope())
        include = scope.include if scope.include is not None else default_paths
        if include and not any(path_matches(rel_path, p) for p in include):
            return False
        if any(path_matches(rel_path, p) for p in scope.exclude):
            return False
        return True

    def validate_codes(self, known_codes: frozenset[str]) -> None:
        """Reject references to codes no rule defines (config rot)."""
        referenced = set(self.ignore) | set(self.rules)
        if self.select is not None:
            referenced |= set(self.select)
        unknown = sorted(code for code in referenced
                         if code not in known_codes)
        if unknown:
            raise PolicyError(
                f"[tool.repro-lint] references unknown rule code(s) "
                f"{unknown}; known: {sorted(known_codes)}"
            )


def _str_list(
    table: Mapping[str, Any], key: str, origin: str
) -> list[str] | None:
    value = table.get(key)
    if value is None:
        return None
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise PolicyError(f"{origin}: `{key}` must be a list of strings")
    return [item.strip() for item in value]


def _rule_scope(code: Any, table: Any, origin: str) -> RuleScope:
    where = f"{origin}: rules.{code}"
    if not isinstance(table, Mapping):
        raise PolicyError(f"{where} must be a table")
    known = {"include", "exclude", "reason"}
    unknown = sorted(set(table) - known)
    if unknown:
        raise PolicyError(
            f"{where}: unknown key(s) {unknown}; expected {sorted(known)}"
        )
    include = _str_list(table, "include", where)
    exclude = _str_list(table, "exclude", where) or []
    reason = table.get("reason")
    if reason is not None and not isinstance(reason, str):
        raise PolicyError(f"{where}: `reason` must be a string")
    if exclude and not (reason and reason.strip()):
        raise PolicyError(
            f"{where}: `exclude` requires a non-empty `reason` — an "
            "exemption without a recorded rationale is a silenced bug"
        )
    return RuleScope(
        include=tuple(include) if include is not None else None,
        exclude=tuple(exclude),
        reason=reason,
    )
