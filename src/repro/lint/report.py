"""Finding renderers: human text and schema-stable JSON.

The JSON shape is a public contract (CI uploads it as an artifact and
``tests/test_lint_cli.py`` pins it):

.. code-block:: json

    {
      "version": 1,
      "tool": "repro-lint",
      "files_checked": 87,
      "counts": {"RPL003": 1},
      "findings": [
        {"path": "src/repro/x.py", "line": 3, "col": 5,
         "code": "RPL003", "severity": "error",
         "rule": "seeded-generators-only", "message": "..."}
      ]
    }

``version`` bumps only on breaking shape changes; adding keys is
non-breaking.  Findings are pre-sorted by ``(path, line, col, code)``
and counts are emitted with sorted keys, so identical input produces
byte-identical output.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.lint.model import Finding

__all__ = ["render_findings", "render_text", "render_json"]

JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """One line per finding plus a summary tail."""
    lines = [finding.render() for finding in findings]
    if findings:
        counts = Counter(f.code for f in findings)
        breakdown = ", ".join(
            f"{code}: {n}" for code, n in sorted(counts.items())
        )
        lines.append(
            f"\n{len(findings)} finding(s) in {files_checked} file(s) "
            f"({breakdown})"
        )
    else:
        lines.append(f"{files_checked} file(s) checked, no findings")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """The artifact form; see the module docstring for the contract."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "tool": "repro-lint",
        "files_checked": files_checked,
        "counts": dict(sorted(Counter(f.code for f in findings).items())),
        "findings": [f.to_json() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def render_findings(
    findings: Sequence[Finding], files_checked: int, fmt: str = "text"
) -> str:
    """Dispatch on ``fmt`` (``"text"`` or ``"json"``)."""
    if fmt == "json":
        return render_json(findings, files_checked)
    if fmt == "text":
        return render_text(findings, files_checked)
    raise ValueError(f"unknown format {fmt!r}; expected 'text' or 'json'")
