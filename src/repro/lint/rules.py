"""The rule catalog: determinism, pool safety, error-taxonomy hygiene.

Every rule is grounded in an invariant this reproduction actually relies
on (CONTRIBUTING.md "Invariants you must not break", docs/parallel.md):
the sequence→cost map is a pure function, the 768-chain ensemble reshards
bit-identically via ``OffsetRNG``, and pool payloads must survive a
``spawn`` start method.  Codes are stable (``RPL0xx``); ``RPL000`` is the
analyzer's own meta code (unused/unknown/rationale-less suppressions) and
``RPL999`` reports unparsable files.

Each rule declares ``default_paths`` — repo-relative prefixes it applies
to by default; ``pyproject.toml [tool.repro-lint.rules.RPLxxx]`` can widen,
narrow or exempt paths (exemptions require a ``reason``).  Rules with an
empty ``default_paths`` apply to every linted file.
"""

from __future__ import annotations

import ast
from typing import Any, Iterator

from repro.lint.model import Finding, SourceFile

__all__ = ["Rule", "RULES", "iter_rules"]

#: Meta codes the engine itself emits; kept out of the rule registry but
#: documented and selectable alongside it.
META_CODES = ("RPL000", "RPL999")


class Rule:
    """Base class: one registered check with a stable code.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding a :class:`Finding` per violation via :meth:`finding`.
    Rules with ``project = True`` implement :meth:`check_project`
    instead: the engine runs them once over the cross-module
    :class:`~repro.lint.index.ProjectIndex` rather than per file, and
    scopes each *finding* (not each file) through ``default_paths`` and
    the policy.
    """

    code: str = ""
    name: str = ""
    severity: str = "error"
    summary: str = ""
    #: Repo-relative path prefixes the rule applies to (empty = all).
    default_paths: tuple[str, ...] = ()
    #: True = runs once over the whole-project index (RPL011–RPL013).
    project: bool = False

    def check(self, src: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, index: Any) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, src: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=src.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            severity=self.severity,
            rule=self.name,
        )

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """A finding at an explicit location (project-rule form)."""
        return Finding(
            path=path,
            line=line,
            col=col,
            code=self.code,
            message=message,
            severity=self.severity,
            rule=self.name,
        )


RULES: dict[str, Rule] = {}


def _register(cls: type[Rule]) -> type[Rule]:
    rule = cls()
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def iter_rules() -> tuple[Rule, ...]:
    """All registered rules in code order."""
    return tuple(RULES[code] for code in sorted(RULES))


#: Directories whose modules feed deterministic, seed-reproducible output.
_DETERMINISTIC_PATHS = (
    "src/repro/kernels/",
    "src/repro/seqopt/",
    "src/repro/core/",
    "src/repro/pool/",
)

#: ``random`` module *global-state* functions (the hidden shared Mersenne
#: Twister).  ``random.Random(seed)`` / ``SystemRandom`` instances are
#: fine — they carry their own state.
_RANDOM_GLOBAL_FNS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gauss",
    "getrandbits", "lognormvariate", "normalvariate", "paretovariate",
    "randbytes", "randint", "random", "randrange", "sample", "seed",
    "shuffle", "triangular", "uniform", "vonmisesvariate",
    "weibullvariate",
})

#: The only ``numpy.random`` attributes deterministic code may call:
#: explicit-generator construction, never the legacy global ``RandomState``.
_NUMPY_RANDOM_ALLOWED = frozenset({
    "BitGenerator", "Generator", "MT19937", "PCG64", "PCG64DXSM",
    "Philox", "SFC64", "SeedSequence", "default_rng",
})


@_register
class NoGlobalRandomState(Rule):
    """RPL001 — no global-state RNG calls in deterministic paths.

    ``random.shuffle`` / ``np.random.rand`` draw from hidden process-wide
    state: the result depends on every earlier draw anywhere in the
    process, so resharding the ensemble (or merely importing a module
    that also draws) silently changes answers.  All randomness must flow
    through a seeded ``np.random.Generator`` (host) or ``DeviceRNG``
    (device) — see CONTRIBUTING invariant 3.
    """

    code = "RPL001"
    name = "no-global-random-state"
    severity = "error"
    summary = "global-state RNG call in a deterministic path"
    default_paths = _DETERMINISTIC_PATHS

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = src.resolve_call(node.func)
            if resolved is None:
                continue
            if resolved.startswith("random."):
                fn = resolved.removeprefix("random.")
                if fn in _RANDOM_GLOBAL_FNS:
                    yield self.finding(
                        src, node,
                        f"call to `{resolved}` uses the process-wide RNG; "
                        "draw from a seeded `np.random.Generator` (or a "
                        "`random.Random(seed)` instance) instead",
                    )
            elif resolved.startswith("numpy.random."):
                fn = resolved.removeprefix("numpy.random.")
                if "." in fn or fn in _NUMPY_RANDOM_ALLOWED or fn == "seed":
                    continue  # np.random.seed is RPL003's finding
                yield self.finding(
                    src, node,
                    f"call to `{resolved}` uses numpy's legacy global "
                    "RandomState; construct the stream explicitly with "
                    "`np.random.default_rng(seed)`",
                )


#: Wall-clock and entropy reads that make a "deterministic" path depend on
#: when/where it runs.  ``time.perf_counter``/``monotonic`` stay legal:
#: they feed *measured* wall-time reporting, which is kept strictly apart
#: from modeled results (CONTRIBUTING invariant 4).
_WALL_CLOCK_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "OS entropy read",
    "uuid.uuid1": "host/time-derived identifier",
    "uuid.uuid4": "OS entropy read",
}


@_register
class NoWallClockInDeterministicPaths(Rule):
    """RPL002 — no wall-clock/entropy reads in deterministic paths.

    A modeled result that embeds ``time.time()`` or ``os.urandom`` output
    is unreproducible by construction.  Measured wall time must come from
    ``time.perf_counter`` and stay in ``wall_time_s``-style fields;
    reporting/profiling modules are policy-exempt with a rationale.
    """

    code = "RPL002"
    name = "no-wall-clock"
    severity = "error"
    summary = "wall-clock or entropy read in a deterministic path"
    default_paths = _DETERMINISTIC_PATHS + ("src/repro/gpusim/",)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = src.resolve_call(node.func)
            if resolved in _WALL_CLOCK_CALLS:
                yield self.finding(
                    src, node,
                    f"`{resolved}` is a {_WALL_CLOCK_CALLS[resolved]}; "
                    "deterministic paths must not depend on when or where "
                    "they run (use `time.perf_counter` only for *measured* "
                    "wall-time reporting)",
                )


@_register
class SeededGeneratorsOnly(Rule):
    """RPL003 — every RNG stream is constructed from an explicit seed.

    ``np.random.default_rng()`` without arguments pulls OS entropy, and
    ``np.random.seed`` / ``random.seed`` mutate global state behind every
    other consumer's back.  The motivating bug: ``repro profile`` once
    hard-coded ``default_rng(0)`` instead of threading the user's
    ``--seed`` through — seeds must arrive as data, not literals buried
    in call sites (applies everywhere, not just deterministic paths).
    """

    code = "RPL003"
    name = "seeded-generators-only"
    severity = "error"
    summary = "unseeded generator construction or global reseeding"
    default_paths = ()

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = src.resolve_call(node.func)
            if resolved == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        src, node,
                        "`default_rng()` without a seed draws OS entropy; "
                        "pass the seed explicitly so the run is replayable",
                    )
            elif resolved in ("numpy.random.seed", "random.seed"):
                yield self.finding(
                    src, node,
                    f"`{resolved}` reseeds shared global state; construct "
                    "a local `np.random.Generator`/`random.Random` with "
                    "the seed instead",
                )


#: Builtin consumers whose output order mirrors iteration order.
_ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"list", "tuple", "enumerate", "iter", "reversed"}
)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@_register
class NoOrderedIterationOverSets(Rule):
    """RPL004 — set iteration order must never feed ordered output.

    Python sets iterate in hash order, which varies with insertion
    history (and, for strings, with ``PYTHONHASHSEED``).  A ``for`` loop,
    list/dict comprehension or ``list()/enumerate()`` over a set bakes
    that order into results; reduce order-insensitively (``min``/``sum``/
    membership) or go through ``sorted(...)`` first.
    """

    code = "RPL004"
    name = "no-ordered-set-iteration"
    severity = "warning"
    summary = "iteration over a set feeding ordered output"
    default_paths = ()

    _MESSAGE = (
        "iterating a set in {context} leaks hash order into ordered "
        "output; wrap it in `sorted(...)` or reduce order-insensitively"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self.finding(
                        src, node.iter,
                        self._MESSAGE.format(context="a for loop"),
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.finding(
                            src, gen.iter,
                            self._MESSAGE.format(
                                context="an ordered comprehension"
                            ),
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_CONSUMERS
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        src, node.args[0],
                        self._MESSAGE.format(
                            context=f"`{node.func.id}(...)`"
                        ),
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    yield self.finding(
                        src, node.args[0],
                        self._MESSAGE.format(context="`str.join`"),
                    )


#: Methods that accept task callables destined for worker processes.
_POOL_SINK_METHODS = frozenset(
    {"imap_unordered", "run_thunks", "apply_async", "submit"}
)


@_register
class SpawnPicklablePoolTasks(Rule):
    """RPL005 — no lambdas or nested functions as pool task payloads.

    ``ProcessPool`` payloads must survive pickling under the ``spawn``
    start method (docs/parallel.md): lambdas and functions defined inside
    another function cannot be pickled, so they work only by accident of
    ``fork`` inheritance.  Task callables must be module-level functions
    with picklable arguments — exactly how :mod:`repro.pool.worker` is
    built.
    """

    code = "RPL005"
    name = "spawn-picklable-pool-tasks"
    severity = "error"
    summary = "spawn-unpicklable callable passed as a pool task"
    default_paths = ()

    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from _PoolTaskVisitor(self, src).run()


class _PoolTaskVisitor(ast.NodeVisitor):
    """Tracks function nesting to recognize closures passed to pool sinks."""

    def __init__(self, rule: Rule, src: SourceFile) -> None:
        self.rule = rule
        self.src = src
        self.findings: list[Finding] = []
        #: One set of locally-defined function names per enclosing def.
        self._nested: list[set[str]] = []

    def run(self) -> list[Finding]:
        self.visit(self.src.tree)
        return self.findings

    # -- scope bookkeeping ---------------------------------------------

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        if self._nested:  # a def inside a def = a closure candidate
            self._nested[-1].add(node.name)
        self._nested.append(set())
        self.generic_visit(node)
        self._nested.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- sink detection -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        sink = self._sink_arguments(node)
        if sink is not None:
            for arg in sink:
                self._flag_unpicklable(arg)
        self.generic_visit(node)

    def _sink_arguments(self, node: ast.Call) -> list[ast.expr] | None:
        """The argument expressions carrying task callables, if a sink."""
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in _POOL_SINK_METHODS:
                return list(node.args) + [kw.value for kw in node.keywords]
            if func.attr == "map" and _names_a_pool(func.value):
                return list(node.args) + [kw.value for kw in node.keywords]
        target = _process_target(node)
        if target is not None:
            return [target]
        return None

    def _flag_unpicklable(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                self.findings.append(self.rule.finding(
                    self.src, node,
                    "lambda passed as a pool task cannot be pickled under "
                    "the spawn start method; use a module-level function",
                ))
            elif isinstance(node, ast.Name) and any(
                node.id in scope for scope in self._nested
            ):
                self.findings.append(self.rule.finding(
                    self.src, node,
                    f"nested function `{node.id}` passed as a pool task "
                    "cannot be pickled under the spawn start method; "
                    "hoist it to module level",
                ))


def _names_a_pool(receiver: ast.expr) -> bool:
    """Whether ``receiver.map(...)``'s receiver is pool-like by name."""
    if isinstance(receiver, ast.Name):
        return "pool" in receiver.id.lower()
    if isinstance(receiver, ast.Attribute):
        return "pool" in receiver.attr.lower()
    return False


def _process_target(node: ast.Call) -> ast.expr | None:
    """The ``target=`` of a ``Process(...)`` construction, if present."""
    func = node.func
    is_process = (
        isinstance(func, ast.Name) and func.id == "Process"
    ) or (
        isinstance(func, ast.Attribute) and func.attr == "Process"
    )
    if not is_process:
        return None
    for kw in node.keywords:
        if kw.arg == "target":
            return kw.value
    return None


#: Mutating method names on builtin containers.
_MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "remove",
    "setdefault", "update",
})

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "OrderedDict",
     "Counter"}
)


def _mutable_module_bindings(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp,
                    ast.DictComp)
        ) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_FACTORIES
        )
        if not mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


@_register
class NoMutableModuleState(Rule):
    """RPL006 — worker-executed modules must not mutate module globals.

    A module-level list/dict mutated from inside a function is per-process
    state: under ``fork`` each worker inherits a divergent copy, under
    ``spawn`` a fresh one, and the parent never sees either — the classic
    source of "works serially, drifts with --workers N".  Import-time
    registration patterns that are never touched post-import can be
    policy-exempted with a rationale.
    """

    code = "RPL006"
    name = "no-mutable-module-state"
    severity = "error"
    summary = "module-level mutable state mutated inside a function"
    default_paths = _DETERMINISTIC_PATHS + ("src/repro/gpusim/",)

    def check(self, src: SourceFile) -> Iterator[Finding]:
        bindings = _mutable_module_bindings(src.tree)
        if not bindings:
            return
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    for name in node.names:
                        if name in bindings:
                            yield self.finding(
                                src, node,
                                f"`global {name}` rebinds module-level "
                                "mutable state from inside a function; "
                                "pass state explicitly or key it per call",
                            )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in bindings
                    and node.func.attr in _MUTATOR_METHODS
                ):
                    yield self.finding(
                        src, node,
                        f"`{node.func.value.id}.{node.func.attr}(...)` "
                        "mutates module-level state inside a function; "
                        "worker processes each see a divergent copy",
                    )
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                            and target.value.id in bindings
                        ):
                            yield self.finding(
                                src, target,
                                f"subscript assignment into module-level "
                                f"`{target.value.id}` inside a function "
                                "mutates shared state; worker processes "
                                "each see a divergent copy",
                            )


@_register
class ClassifiedErrorHandling(Rule):
    """RPL007 — no silent swallows or anonymous raises in supervised code.

    The pool/resilience layers sort every failure through the
    ``register_transient``/``classify_error`` taxonomy
    (:mod:`repro.gpusim.errors`); an ``except Exception: pass`` deletes
    the evidence that drives retry-vs-quarantine decisions, and a bare
    ``raise Exception`` can never be classified better than "fatal".
    """

    code = "RPL007"
    name = "classified-error-handling"
    severity = "error"
    summary = "unclassifiable error handling in a supervised path"
    default_paths = ("src/repro/pool/", "src/repro/resilience/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ExceptHandler):
                if self._is_broad(node.type) and self._swallows(node.body):
                    yield self.finding(
                        src, node,
                        "broad except clause silently swallows the error; "
                        "record it, re-raise, or classify it via "
                        "`repro.gpusim.errors.classify_error`",
                    )
            elif isinstance(node, ast.Raise):
                exc = node.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                if isinstance(exc, ast.Name) and exc.id in (
                    "Exception", "BaseException"
                ):
                    yield self.finding(
                        src, node,
                        f"`raise {exc.id}` cannot be classified by the "
                        "transient/fatal taxonomy; raise a specific error "
                        "type (and `register_transient` it if retryable)",
                    )

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        return type_node is None or (
            isinstance(type_node, ast.Name)
            and type_node.id in ("Exception", "BaseException")
        )

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or `...`
            return False
        return True


#: ``subprocess`` entry points that block until the child finishes.
_SUBPROCESS_BLOCKING = frozenset({
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output",
})


@_register
class BoundedBlockingCalls(Rule):
    """RPL008 — blocking child/pipe waits in supervised paths need bounds.

    The supervision contract (docs/parallel.md) is that a hung child is
    *always* reaped: a ``subprocess.run`` without ``timeout=``, a
    ``.wait()``/``.communicate()`` with no deadline, an unbounded
    ``multiprocessing.connection.wait`` or a bare ``.recv()`` outside the
    multiplexer can stall the whole pool forever.  Sites that are provably
    bounded by construction carry an inline suppression with the proof as
    its rationale.
    """

    code = "RPL008"
    name = "bounded-blocking-calls"
    severity = "warning"
    summary = "unbounded blocking call in a supervised path"
    default_paths = ("src/repro/pool/", "src/repro/resilience/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = src.resolve_call(node.func)
            keywords = {kw.arg for kw in node.keywords}
            if resolved in _SUBPROCESS_BLOCKING:
                if "timeout" not in keywords:
                    yield self.finding(
                        src, node,
                        f"`{resolved}` without `timeout=` can block the "
                        "supervisor forever; pass an explicit deadline",
                    )
            elif resolved == "multiprocessing.connection.wait":
                if len(node.args) < 2 and "timeout" not in keywords:
                    yield self.finding(
                        src, node,
                        "`connection.wait` without a timeout cannot serve "
                        "watchdog deadlines or retry cool-downs; pass one",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("communicate", "wait", "recv")
                and not node.args
                and "timeout" not in keywords
            ):
                yield self.finding(
                    src, node,
                    f"unbounded `.{node.func.attr}()` on a child/pipe "
                    "handle; bound it with a timeout or document why it "
                    "cannot block (inline suppression with rationale)",
                )


#: The modules that may touch raw sockets; everything else goes through
#: the factories these modules export.
_NET_TRANSPORT_PATHS = (
    "src/repro/pool/net.py",
    "src/repro/pool/agent.py",
    "src/repro/pool/hosts.py",
)


def _settimeout_disarms(node: ast.Call) -> bool:
    """``settimeout()`` / ``settimeout(None)`` — an *unarmed* socket."""
    if not node.args and not node.keywords:
        return True
    if node.args and isinstance(node.args[0], ast.Constant):
        return node.args[0].value is None
    return False


@_register
class TimeoutBoundedSockets(Rule):
    """RPL009 — every socket in the net transport carries a deadline.

    The distributed pool's supervision ladder (docs/distributed.md) only
    works if *no* socket operation can block forever: heartbeat deadlines
    and the agent's watchdog both ride on ``socket.timeout`` firing.  A
    socket created without arming a timeout — or one disarmed with
    ``settimeout(None)`` — silently reintroduces the unbounded hang the
    ladder exists to prevent.  Sockets must come from the
    :func:`repro.pool.net.client_socket` / ``listener_socket`` factories,
    which arm the timeout at construction.
    """

    code = "RPL009"
    name = "timeout-bounded-sockets"
    severity = "error"
    summary = "socket without an armed timeout in the net transport"
    default_paths = _NET_TRANSPORT_PATHS

    def check(self, src: SourceFile) -> Iterator[Finding]:
        armed_scopes = self._scopes_that_arm(src)
        for scope, node in self._socket_calls(src):
            resolved = src.resolve_call(node.func)
            if resolved == "socket.create_connection":
                if len(node.args) < 2 and not any(
                    kw.arg == "timeout" for kw in node.keywords
                ):
                    yield self.finding(
                        src, node,
                        "`socket.create_connection` without `timeout=` "
                        "can block the connect forever; pass an explicit "
                        "deadline (see `repro.pool.net.client_socket`)",
                    )
            elif resolved == "socket.socket":
                if scope not in armed_scopes:
                    yield self.finding(
                        src, node,
                        "raw `socket.socket(...)` is never armed with a "
                        "timeout in this scope; use the bounded factories "
                        "in `repro.pool.net` or call "
                        "`settimeout(deadline)` before any I/O",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "settimeout"
                and _settimeout_disarms(node)
            ):
                yield self.finding(
                    src, node,
                    "`settimeout(None)` disarms the socket's deadline and "
                    "makes every recv/send unbounded; the transport "
                    "contract requires an explicit finite timeout",
                )

    @staticmethod
    def _socket_calls(
        src: SourceFile,
    ) -> Iterator[tuple[ast.AST | None, ast.Call]]:
        """Every call node, tagged with its enclosing function (or None)."""
        def walk(node: ast.AST, scope: ast.AST | None):
            for child in ast.iter_child_nodes(node):
                child_scope = (
                    child
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                    else scope
                )
                if isinstance(child, ast.Call):
                    yield (child_scope, child)
                yield from walk(child, child_scope)

        yield from walk(src.tree, None)

    def _scopes_that_arm(self, src: SourceFile) -> set[ast.AST]:
        """Functions containing a ``settimeout`` call with a finite value."""
        armed: set[ast.AST] = set()
        for scope, node in self._socket_calls(src):
            if (
                scope is not None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "settimeout"
                and not _settimeout_disarms(node)
            ):
                armed.add(scope)
        return armed


#: Modes that create or mutate file content.  ``r``/``rb`` opens are
#: reads and always fine; ``+`` upgrades a read to a write.
_WRITE_MODE_CHARS = frozenset("wax+")


def _write_mode(node: ast.Call) -> str | None:
    """The constant mode string of an ``open``-style call if it writes.

    Returns ``None`` for reads and for dynamic (non-constant) modes —
    the rule only flags what it can prove, so a computed mode never
    produces a false positive.
    """
    mode_node: ast.expr | None = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode_node = kw.value
    if mode_node is None:
        return None  # defaults to "r"
    if not isinstance(mode_node, ast.Constant):
        return None
    mode = mode_node.value
    if not isinstance(mode, str):
        return None
    if _WRITE_MODE_CHARS.intersection(mode):
        return mode
    return None


@_register
class DurableStateWrites(Rule):
    """RPL010 — persisted state goes through the durable write helpers.

    The durability contracts of the journal, checkpoints and the result
    cache (docs/service.md, docs/resilience.md) all reduce to two
    primitives in :mod:`repro.resilience.atomic`: ``atomic_write_text``
    (temp + fsync + rename, so readers never observe a torn file) and
    ``durable_append_text`` (append + flush + fsync, so acknowledged
    records survive a crash).  A bare ``open(path, "w")`` or
    ``path.write_text`` in these trees silently drops both guarantees —
    it truncates in place and buffers in the page cache, which is
    exactly the corruption-and-loss shape the helpers exist to prevent.
    Genuinely ephemeral writes (startup handshakes, test scratch) carry
    an inline suppression saying why durability does not apply.
    """

    code = "RPL010"
    name = "durable-state-writes"
    severity = "error"
    summary = "state persisted without the shared durable-write helpers"
    default_paths = ("src/repro/service/", "src/repro/resilience/")

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "write_text", "write_bytes"
            ):
                yield self.finding(
                    src, node,
                    f"`.{func.attr}(...)` truncates in place and is not "
                    "fsync'd; persist through "
                    "`repro.resilience.atomic.atomic_write_text` / "
                    "`durable_append_text`",
                )
                continue
            is_open = (
                (isinstance(func, ast.Name) and func.id == "open")
                or (isinstance(func, ast.Attribute) and func.attr == "open"
                    and src.resolve_call(func) in (None, "io.open"))
            )
            if not is_open:
                continue
            mode = _write_mode(node)
            if mode is not None:
                yield self.finding(
                    src, node,
                    f"bare `open(..., {mode!r})` bypasses the crash-safety "
                    "contract (no fsync, torn files on crash); use "
                    "`repro.resilience.atomic.atomic_write_text` / "
                    "`durable_append_text`, or suppress with a rationale "
                    "if the file is genuinely ephemeral",
                )


# The concurrency rules (RPL011–RPL013) live in their own module but
# register into ``RULES`` at import time; the import sits at the bottom
# so ``Rule``/``_register`` exist by the time it runs.
from repro.lint import concurrency as _concurrency  # noqa: E402,F401  # isort: skip
