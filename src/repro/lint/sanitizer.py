"""Runtime lock-order sanitizer: the dynamic sibling of RPL012/RPL013.

The static rules prove what the AST shows; this module checks the same
two properties on the locks a test run *actually* takes:

* **ordering** — every ``threading.Lock``/``RLock``/``Condition``
  created by an instrumented module is wrapped so each acquisition
  records an edge ``held -> acquiring`` in a global acquisition graph
  (first-seen site kept as evidence).  An acquisition that would close
  a cycle raises :class:`LockInversionError` *before* blocking — the
  deadlock is reported as a stack trace naming both sites instead of a
  hung test run.
* **held-while-blocking** — ``Thread.join`` through an instrumented
  module checks that the joining thread holds no sanitized lock
  (held-while-joining is the classic drain deadlock:
  the worker being joined needs the lock the joiner is sitting on).

Everything is monitoring only: wrapped locks delegate straight to the
real primitives, acquisition never reorders or delays, and nothing
here reads clocks or randomness — a sanitized run is byte-identical to
an uninstrumented one unless it raises.

Enabled by ``REPRO_TSAN=1``: the autouse conftest fixture calls
:func:`install`, which swaps each target module's ``threading``
binding for a proxy (the :mod:`threading` module itself is never
touched, so stdlib internals — ``queue``, ``http.server`` — keep their
raw locks).  ``repro serve`` honors the same variable, so the CI
service-recovery and pool-chaos drills double as race drills.
"""

from __future__ import annotations

import sys
import threading
from typing import Any, Iterable

__all__ = [
    "HeldWhileBlockingError",
    "LockInversionError",
    "LockOrderMonitor",
    "SanitizedCondition",
    "SanitizedLock",
    "SanitizedRLock",
    "TARGET_MODULES",
    "install",
    "installed",
    "monitor",
    "uninstall",
]

#: The threaded serving stack; each gets its ``threading`` binding
#: proxied by :func:`install`.
TARGET_MODULES = (
    "repro.service.api",
    "repro.service.cache",
    "repro.service.jobs",
    "repro.service.journal",
    "repro.service.queue",
    "repro.pool.dispatch",
)


class LockInversionError(RuntimeError):
    """Acquiring this lock here can deadlock against an observed order."""


class HeldWhileBlockingError(RuntimeError):
    """A blocking operation was started while holding a sanitized lock."""


def _call_site() -> str:
    """``file:line`` of the instrumented caller (deterministic).

    Walks past this module's own frames so ``with lock:`` reports the
    ``with`` statement, not the wrapper's ``__enter__``.
    """
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - only if called at module top
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class LockOrderMonitor:
    """The global acquisition graph and per-thread held stacks.

    Its own state is guarded by a *raw* ``threading.Lock`` (this module
    keeps the real binding), so the monitor never participates in the
    graph it checks.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        #: thread ident -> stack of lock ids currently held.
        self._held: dict[int, list[int]] = {}
        #: (held id, acquired id) -> first-seen "held@site -> acq@site".
        self._edges: dict[tuple[int, int], str] = {}
        #: lock id -> human label (creation site).
        self._labels: dict[int, str] = {}

    # -- bookkeeping ----------------------------------------------------

    def register(self, lock_id: int, label: str) -> None:
        with self._mu:
            self._labels[lock_id] = label

    def label(self, lock_id: int) -> str:
        return self._labels.get(lock_id, f"lock#{lock_id}")

    def snapshot_edges(self) -> dict[tuple[str, str], str]:
        """Observed ordering edges by label (test introspection)."""
        with self._mu:
            return {
                (self.label(a), self.label(b)): site
                for (a, b), site in sorted(self._edges.items())
            }

    def reset(self) -> None:
        """Drop all state (between tests that seed deliberate cycles)."""
        with self._mu:
            self._held.clear()
            self._edges.clear()

    # -- the checks -----------------------------------------------------

    def before_acquire(self, lock_id: int, site: str) -> None:
        """Record ordering and refuse cycle-closing acquisitions.

        Runs *before* blocking on the real lock: a would-deadlock
        acquisition surfaces as an exception with both sites named,
        not as a wedged test run.
        """
        ident = threading.get_ident()
        with self._mu:
            held = self._held.get(ident, [])
            if not held or lock_id in held:
                return  # nothing held, or an RLock re-entry
            inversion = self._find_path(lock_id, set(held))
            if inversion is not None:
                chain = " -> ".join(
                    f"{self.label(a)} => {self.label(b)} "
                    f"(first seen: {self._edges[(a, b)]})"
                    for a, b in inversion
                )
                raise LockInversionError(
                    f"lock-order inversion: acquiring "
                    f"{self.label(lock_id)} at {site} while holding "
                    f"{', '.join(self.label(h) for h in held)}, but the "
                    f"opposite order was already observed: {chain}"
                )
            for held_id in held:
                self._edges.setdefault(
                    (held_id, lock_id),
                    f"{self.label(held_id)} held -> "
                    f"{self.label(lock_id)} acquired at {site}",
                )

    def _find_path(
        self, start: int, targets: set[int]
    ) -> list[tuple[int, int]] | None:
        """Edge path ``start -> ... -> t`` for some held ``t``, if any."""
        stack: list[tuple[int, list[tuple[int, int]]]] = [(start, [])]
        visited = {start}
        while stack:
            node, path = stack.pop()
            for (a, b) in self._edges:
                if a != node or b in visited:
                    continue
                step = path + [(a, b)]
                if b in targets:
                    return step
                visited.add(b)
                stack.append((b, step))
        return None

    def after_acquire(self, lock_id: int) -> None:
        ident = threading.get_ident()
        with self._mu:
            self._held.setdefault(ident, []).append(lock_id)

    def on_release(self, lock_id: int) -> None:
        ident = threading.get_ident()
        with self._mu:
            held = self._held.get(ident)
            if held and lock_id in held:
                # Remove the most recent hold (RLocks release in pairs).
                for i in range(len(held) - 1, -1, -1):
                    if held[i] == lock_id:
                        del held[i]
                        break
                if not held:
                    del self._held[ident]

    def check_blocking(self, what: str, site: str) -> None:
        """Raise if the calling thread blocks while holding any lock."""
        ident = threading.get_ident()
        with self._mu:
            held = self._held.get(ident, [])
            if held:
                raise HeldWhileBlockingError(
                    f"{what} at {site} while holding "
                    f"{', '.join(self.label(h) for h in held)}; a "
                    "blocking wait under a lock is how drains deadlock "
                    "— release before blocking"
                )


#: The process-wide monitor every sanitized primitive reports to.
monitor = LockOrderMonitor()


class _SanitizedBase:
    """Shared acquire/release instrumentation around a real lock."""

    _real: Any

    def __init__(self, real: Any, label: str) -> None:
        self._real = real
        monitor.register(id(self), label)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            monitor.before_acquire(id(self), _call_site())
        got = self._real.acquire(blocking, timeout)
        if got:
            monitor.after_acquire(id(self))
        return got

    def release(self) -> None:
        self._real.release()
        monitor.on_release(id(self))

    def locked(self) -> bool:
        return self._real.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()


class SanitizedLock(_SanitizedBase):
    """``threading.Lock`` with ordering instrumentation."""


class SanitizedRLock(_SanitizedBase):
    """``threading.RLock`` with ordering instrumentation.

    Re-entries are recognized by the monitor (the lock is already on
    the thread's held stack) and recorded without ordering edges — a
    lock never orders against itself.
    """


class SanitizedCondition:
    """``threading.Condition`` with ordering instrumentation.

    ``wait`` releases the underlying lock, so the held stack drops the
    condition for the duration and re-adds it on wakeup — a thread
    parked in ``wait`` holds nothing as far as ordering is concerned.
    """

    def __init__(self, real: Any, label: str) -> None:
        self._real = real
        monitor.register(id(self), label)

    def acquire(self, *args: Any) -> bool:
        monitor.before_acquire(id(self), _call_site())
        got = self._real.acquire(*args)
        if got:
            monitor.after_acquire(id(self))
        return got

    def release(self) -> None:
        self._real.release()
        monitor.on_release(id(self))

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def wait(self, timeout: float | None = None) -> bool:
        monitor.on_release(id(self))
        try:
            return self._real.wait(timeout)
        finally:
            monitor.after_acquire(id(self))

    def wait_for(self, predicate: Any, timeout: float | None = None) -> Any:
        monitor.on_release(id(self))
        try:
            return self._real.wait_for(predicate, timeout)
        finally:
            monitor.after_acquire(id(self))

    def notify(self, n: int = 1) -> None:
        self._real.notify(n)

    def notify_all(self) -> None:
        self._real.notify_all()


class _SanitizedThread(threading.Thread):
    """``threading.Thread`` whose ``join`` refuses to wait under a lock."""

    def join(self, timeout: float | None = None) -> None:
        monitor.check_blocking("Thread.join", _call_site())
        super().join(timeout)


class _ThreadingProxy:
    """Stand-in for a module's ``threading`` binding.

    Lock constructors hand out sanitized wrappers labeled with their
    creation site; everything else (``Event``, ``get_ident``,
    ``current_thread``, …) delegates to the real module untouched.
    """

    def __init__(self, real: Any) -> None:
        self._real = real

    def Lock(self) -> SanitizedLock:  # noqa: N802 - threading API
        return SanitizedLock(self._real.Lock(), f"Lock({_call_site()})")

    def RLock(self) -> SanitizedRLock:  # noqa: N802 - threading API
        return SanitizedRLock(self._real.RLock(), f"RLock({_call_site()})")

    def Condition(self, lock: Any = None) -> SanitizedCondition:  # noqa: N802
        real = self._real.Condition() if lock is None else (
            self._real.Condition(lock)
        )
        return SanitizedCondition(real, f"Condition({_call_site()})")

    Thread = _SanitizedThread

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real, name)


_patched: dict[str, Any] = {}


def installed() -> bool:
    return bool(_patched)


def install(modules: Iterable[str] = TARGET_MODULES) -> None:
    """Swap each target module's ``threading`` binding for the proxy.

    Idempotent per module.  Only locks created *after* this call are
    sanitized, so install before constructing the service under test
    (the conftest fixture runs at session start, ahead of every
    fixture that builds one).
    """
    import importlib

    proxy = _ThreadingProxy(threading)
    for name in modules:
        if name in _patched:
            continue
        module = importlib.import_module(name)
        _patched[name] = module.threading
        module.threading = proxy


def uninstall() -> None:
    """Restore every patched module's real ``threading`` binding."""
    for name, real in _patched.items():
        sys.modules[name].threading = real
    _patched.clear()
