"""Inline suppressions: ``# repro-lint: disable=RPL001 -- why``.

A suppression silences findings of the listed codes *on its own physical
line* and must carry a rationale after ``--`` — a silenced rule without a
recorded reason is indistinguishable from a forgotten bug.  The engine
audits every suppression after filtering: one that silenced nothing
(stale after a refactor), names an unknown code, or lacks a rationale is
itself reported under the meta code ``RPL000``, so suppressions can never
rot silently.  ``RPL000`` is deliberately not suppressible.
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Iterable

from repro.lint.model import Finding

__all__ = ["Suppression", "scan_suppressions", "apply_suppressions"]

_PATTERN = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9,\s]+?)"
    r"(?:\s+--\s*(?P<reason>\S.*))?$"
)


@dataclasses.dataclass
class Suppression:
    """One inline disable comment."""

    path: str
    line: int
    col: int
    codes: tuple[str, ...]
    reason: str | None
    used: set[str] = dataclasses.field(default_factory=set)


def scan_suppressions(text: str, path: str) -> dict[int, Suppression]:
    """All disable comments in ``text``, keyed by physical line.

    Tokenized rather than regexed over raw lines so ``repro-lint:``
    inside string literals (e.g. this analyzer's own tests) never parses
    as a directive.  An unreadable token stream yields no suppressions —
    the engine reports the parse failure separately.
    """
    table: dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        comments = [
            tok for tok in tokens if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    for tok in comments:
        match = _PATTERN.search(tok.string)
        if match is None:
            continue
        codes = tuple(
            code.strip().upper()
            for code in match.group("codes").split(",")
            if code.strip()
        )
        line = tok.start[0]
        table[line] = Suppression(
            path=path,
            line=line,
            col=tok.start[1] + 1,
            codes=codes,
            reason=match.group("reason"),
        )
    return table


def apply_suppressions(
    findings: Iterable[Finding],
    suppressions: dict[int, Suppression],
) -> list[Finding]:
    """Filter suppressed findings, then audit the suppressions themselves.

    Returns the surviving findings plus one ``RPL000`` finding per
    suppression defect: a code that silenced nothing, a code no rule
    defines, or a missing ``-- rationale``.
    """
    from repro.lint.rules import META_CODES, RULES

    kept: list[Finding] = []
    for finding in findings:
        supp = suppressions.get(finding.line)
        if (
            supp is not None
            and finding.code in supp.codes
            and finding.code not in META_CODES
        ):
            supp.used.add(finding.code)
            continue
        kept.append(finding)

    for supp in suppressions.values():
        problems: list[str] = []
        for code in supp.codes:
            if code in META_CODES:
                problems.append(f"{code} is a meta code and cannot be "
                                "suppressed")
            elif code not in RULES:
                problems.append(f"unknown code {code}")
            elif code not in supp.used:
                problems.append(f"{code} matched no finding on this line")
        if supp.reason is None:
            problems.append("missing rationale (append `-- <why>`)")
        for problem in problems:
            kept.append(Finding(
                path=supp.path,
                line=supp.line,
                col=supp.col,
                code="RPL000",
                message=f"suppression defect: {problem}",
                severity="error",
                rule="suppression-audit",
            ))
    return kept
