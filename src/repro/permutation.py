"""Permutation operators: partial Fisher--Yates, swaps and crossovers.

Shared substrate for the metaheuristics:

* the SA neighborhood (Sections VI/VI-B): select ``Pert`` distinct positions
  of the parent sequence at random and shuffle the jobs at those positions
  with the Fisher--Yates algorithm, leaving all other positions untouched;
* the DPSO update operators of Pan et al. [15] (Section VII): ``F1`` random
  swap (velocity), ``F2`` one-point permutation crossover with the
  particle's best (cognition), ``F3`` two-point permutation crossover with
  the swarm's best (social part).

Every operator exists in two forms with identical semantics:

* a *scalar* form operating on one sequence with a
  :class:`numpy.random.Generator` (used by the serial CPU baselines);
* a *batched* form operating on an ``(S, n)`` matrix of sequences with a
  :class:`repro.gpusim.rng.DeviceRNG` (one row per simulated CUDA thread),
  fully vectorized over the ensemble axis.

All batched routines draw per-thread randomness through the counter-based
device RNG, so results are reproducible and independent of the ensemble
partitioning -- the property tests check that outputs are always valid
permutations and that batched and scalar forms agree in distribution.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.rng import DeviceRNG

__all__ = [
    "sample_distinct_positions",
    "partial_fisher_yates",
    "batched_sample_distinct",
    "batched_partial_fisher_yates",
    "random_swap",
    "batched_random_swap",
    "one_point_crossover",
    "batched_one_point_crossover",
    "two_point_crossover",
    "batched_two_point_crossover",
]


# ----------------------------------------------------------------------
# Scalar forms
# ----------------------------------------------------------------------
def sample_distinct_positions(
    rng: np.random.Generator, n: int, k: int
) -> np.ndarray:
    """``k`` distinct positions uniformly from ``0..n-1``."""
    if k > n:
        raise ValueError(f"cannot sample {k} distinct positions from {n}")
    return rng.choice(n, size=k, replace=False)


def partial_fisher_yates(
    rng: np.random.Generator, sequence: np.ndarray, positions: np.ndarray
) -> np.ndarray:
    """Shuffle the jobs at ``positions`` (Fisher--Yates), others untouched.

    Returns a new array; the input is not modified.
    """
    out = np.array(sequence, copy=True)
    vals = out[positions]
    # Classic inside-out Fisher--Yates on the selected values.
    for j in range(len(vals) - 1, 0, -1):
        k = int(rng.integers(0, j + 1))
        vals[j], vals[k] = vals[k], vals[j]
    out[positions] = vals
    return out


def random_swap(rng: np.random.Generator, sequence: np.ndarray) -> np.ndarray:
    """Swap two distinct random positions (DPSO operator ``F1``)."""
    n = sequence.size
    i = int(rng.integers(0, n))
    j = int(rng.integers(0, n - 1))
    if j >= i:
        j += 1
    out = np.array(sequence, copy=True)
    out[i], out[j] = out[j], out[i]
    return out


def one_point_crossover(
    rng: np.random.Generator, x: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Permutation-preserving one-point crossover (DPSO operator ``F2``).

    The child inherits ``x``'s prefix up to a random cut and fills the
    remaining positions with the missing jobs in the order they appear in
    ``y``.
    """
    n = x.size
    c = int(rng.integers(1, n))  # cut in 1..n-1: both parents contribute
    head = x[:c]
    in_head = np.zeros(n, dtype=bool)
    in_head[head] = True
    tail = y[~in_head[y]]
    return np.concatenate((head, tail))


def two_point_crossover(
    rng: np.random.Generator, x: np.ndarray, y: np.ndarray
) -> np.ndarray:
    """Permutation-preserving two-point crossover (DPSO operator ``F3``).

    The child keeps ``x``'s segment ``[c1, c2)`` in place; all other
    positions are filled left-to-right with the remaining jobs in ``y``
    order.
    """
    n = x.size
    c1 = int(rng.integers(0, n))
    c2 = int(rng.integers(0, n))
    if c1 > c2:
        c1, c2 = c2, c1
    seg = x[c1:c2]
    in_seg = np.zeros(n, dtype=bool)
    in_seg[seg] = True
    fill = y[~in_seg[y]]
    out = np.empty(n, dtype=x.dtype)
    out[c1:c2] = seg
    out[:c1] = fill[:c1]
    out[c2:] = fill[c1:]
    return out


# ----------------------------------------------------------------------
# Batched forms (one row per simulated thread)
# ----------------------------------------------------------------------
def batched_sample_distinct(
    rng: DeviceRNG, thread_ids: np.ndarray, n: int, k: int
) -> np.ndarray:
    """``(S, k)`` distinct positions per thread, uniformly distributed.

    Uses the draw-and-displace scheme: the ``j``-th pick is drawn from
    ``[0, n - j)`` and shifted past the already-chosen positions (in
    ascending order), which is Fisher--Yates sampling without replacement
    and needs only ``k`` draw rounds.
    """
    if k > n:
        raise ValueError(f"cannot sample {k} distinct positions from {n}")
    s = len(thread_ids)
    picks = np.empty((s, k), dtype=np.int64)
    for j in range(k):
        pos = rng.randint(thread_ids, 0, n - j)
        if j:
            prior = np.sort(picks[:, :j], axis=1)
            for t in range(j):
                pos = pos + (pos >= prior[:, t])
        picks[:, j] = pos
    return picks


def batched_partial_fisher_yates(
    rng: DeviceRNG,
    thread_ids: np.ndarray,
    sequences: np.ndarray,
    positions: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Fisher--Yates shuffle of each row's selected positions.

    ``sequences`` is ``(S, n)``, ``positions`` is ``(S, k)``; returns the
    perturbed sequences (written into ``out`` when given).
    """
    s, _ = sequences.shape
    k = positions.shape[1]
    if out is None:
        out = np.array(sequences, copy=True)
    else:
        np.copyto(out, sequences)
    rows = np.arange(s)
    vals = out[rows[:, None], positions]
    for j in range(k - 1, 0, -1):
        swap_with = rng.randint(thread_ids, 0, j + 1)
        vj = vals[rows, j].copy()
        vals[rows, j] = vals[rows, swap_with]
        vals[rows, swap_with] = vj
    out[rows[:, None], positions] = vals
    return out


def batched_random_swap(
    rng: DeviceRNG,
    thread_ids: np.ndarray,
    sequences: np.ndarray,
    apply_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Swap two distinct random positions per row (rows where ``apply_mask``).

    Returns a new array; rows with ``apply_mask == False`` are copied
    unchanged (the ``w ⊕ F1`` probability gate of Eq. (3)).
    """
    s, n = sequences.shape
    out = np.array(sequences, copy=True)
    i = rng.randint(thread_ids, 0, n)
    j = rng.randint(thread_ids, 0, n - 1)
    j = j + (j >= i)
    rows = np.arange(s)
    if apply_mask is None:
        apply_mask = np.ones(s, dtype=bool)
    r = rows[apply_mask]
    vi = out[r, i[apply_mask]].copy()
    out[r, i[apply_mask]] = out[r, j[apply_mask]]
    out[r, j[apply_mask]] = vi
    return out


def _rank_in(x: np.ndarray) -> np.ndarray:
    """Inverse permutations row-wise: ``rank[s, job] = position of job``."""
    s, n = x.shape
    rank = np.empty_like(x)
    rows = np.arange(s)[:, None]
    rank[rows, x] = np.arange(n)[None, :]
    return rank


def batched_one_point_crossover(
    rng: DeviceRNG,
    thread_ids: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    apply_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise one-point permutation crossover of ``x`` with ``y``.

    Rows outside ``apply_mask`` pass through unchanged (the ``c1 ⊕ F2``
    gate).  Fully vectorized: the tail jobs (those not in the inherited
    prefix) are ordered by their position in ``y`` via a stable argsort.
    """
    s, n = x.shape
    cut = rng.randint(thread_ids, 1, n) if n > 1 else np.ones(s, dtype=np.int64)
    rank_x = _rank_in(x)
    rank_y = _rank_in(y)
    # Job j is in the head iff its position in x is before the cut.
    in_head_by_job = rank_x < cut[:, None]
    # Sort jobs so heads come first and tails follow in y order; because
    # exactly cut[s] jobs have key -1, columns cut.. hold the ordered tail.
    key = np.where(in_head_by_job, -1, rank_y)
    jobs_sorted = np.argsort(key, axis=1, kind="stable")
    cols = np.arange(n)[None, :]
    child = np.where(cols < cut[:, None], x, jobs_sorted)
    if apply_mask is not None:
        child = np.where(apply_mask[:, None], child, x)
    return child.astype(x.dtype, copy=False)


def batched_two_point_crossover(
    rng: DeviceRNG,
    thread_ids: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    apply_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Row-wise two-point permutation crossover of ``x`` with ``y``.

    The child keeps ``x``'s segment ``[c1, c2)``; the other positions are
    filled left-to-right with the missing jobs in ``y`` order (the
    ``c2 ⊕ F3`` gate applies per row).
    """
    s, n = x.shape
    a = rng.randint(thread_ids, 0, n)
    b = rng.randint(thread_ids, 0, n)
    c1 = np.minimum(a, b)
    c2 = np.maximum(a, b)
    rank_x = _rank_in(x)
    rank_y = _rank_in(y)
    in_seg_by_job = (rank_x >= c1[:, None]) & (rank_x < c2[:, None])
    # Non-segment jobs sorted by their y position come first.
    key = np.where(in_seg_by_job, n + rank_x, rank_y)
    fill_sorted = np.argsort(key, axis=1, kind="stable")
    cols = np.arange(n)[None, :]
    in_seg_col = (cols >= c1[:, None]) & (cols < c2[:, None])
    # Rank of each non-segment column among non-segment columns.
    nonseg_rank = np.cumsum(~in_seg_col, axis=1) - 1
    fill_vals = np.take_along_axis(
        fill_sorted, np.clip(nonseg_rank, 0, n - 1), axis=1
    )
    child = np.where(in_seg_col, x, fill_vals)
    if apply_mask is not None:
        child = np.where(apply_mask[:, None], child, x)
    return child.astype(x.dtype, copy=False)
