"""Process-pool execution subsystem.

One pool primitive, two transports, three consumers:

* :mod:`repro.pool.sharding` -- the ``multiprocess`` and ``distributed``
  execution backends: shard one chain ensemble across worker processes
  (or remote host agents), bit-identical to the ``vectorized`` backend
  (see docs/parallel.md and docs/distributed.md for the determinism
  contract).
* :mod:`repro.pool.batch` -- ``solve_many``: fan one solver configuration
  out over many problem instances with bounded in-flight work, ordered
  results, per-instance error isolation, and optional chunked dispatch
  for small instances.
* ``ResilientRunner.run_units(..., workers=N)`` -- parallel work-unit
  execution for every study and the best-known recompute
  (:mod:`repro.resilience.runner`).

The pool supervises its children (:mod:`repro.pool.executor`): per-task
wall-clock deadlines, in-pool retries of abnormal deaths, poison-task
quarantine with structured reports (:mod:`repro.pool.errors`), content
digests on every result crossing the pipe, and deterministic transport
fault plans for chaos testing (:mod:`repro.pool.faults`).

The distributed layer adds a socket transport with the same guarantees
(:mod:`repro.pool.net`), a host-agent runtime (:mod:`repro.pool.agent`),
and a multi-host client with heartbeats, reconnect backoff and
deterministic failover (:mod:`repro.pool.hosts`).
"""

from repro.pool.batch import BatchError, BatchItem, error_kind, solve_many
from repro.pool.dispatch import SupervisedDispatch
from repro.pool.errors import (
    AllHostsLostError,
    FrameError,
    HostHeartbeatError,
    HostProtocolError,
    HostUnreachableError,
    LOCAL_HOST_LABEL,
    PayloadIntegrityError,
    PoisonTaskError,
    PoisonTaskReport,
    TaskAttempt,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.pool.executor import PoolFuture, ProcessPool
from repro.pool.faults import (
    NET_FAULT_KINDS,
    NetFaultPlan,
    NetFaultSpec,
    POOL_FAULT_KINDS,
    PoolFaultPlan,
    PoolFaultSpec,
    parse_net_fault,
    parse_pool_fault,
)
from repro.pool.hosts import HostPool
from repro.pool.net import HostSpec, parse_host_spec, parse_host_specs
from repro.pool.sharding import (
    ShardPlan,
    plan_shards,
    run_distributed_ensemble,
    run_sharded_ensemble,
)

__all__ = [
    "BatchError",
    "BatchItem",
    "error_kind",
    "solve_many",
    "PoolFuture",
    "ProcessPool",
    "SupervisedDispatch",
    "HostPool",
    "HostSpec",
    "parse_host_spec",
    "parse_host_specs",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "PayloadIntegrityError",
    "FrameError",
    "HostUnreachableError",
    "HostHeartbeatError",
    "HostProtocolError",
    "AllHostsLostError",
    "LOCAL_HOST_LABEL",
    "TaskAttempt",
    "PoisonTaskReport",
    "PoisonTaskError",
    "POOL_FAULT_KINDS",
    "PoolFaultPlan",
    "PoolFaultSpec",
    "parse_pool_fault",
    "NET_FAULT_KINDS",
    "NetFaultPlan",
    "NetFaultSpec",
    "parse_net_fault",
    "ShardPlan",
    "plan_shards",
    "run_sharded_ensemble",
    "run_distributed_ensemble",
]
