"""Process-pool execution subsystem.

One pool primitive, three consumers:

* :mod:`repro.pool.sharding` -- the ``multiprocess`` execution backend:
  shard one chain ensemble across worker processes, bit-identical to the
  ``vectorized`` backend (see docs/parallel.md for the determinism
  contract).
* :mod:`repro.pool.batch` -- ``solve_many``: fan one solver configuration
  out over many problem instances with bounded in-flight work, ordered
  results and per-instance error isolation.
* ``ResilientRunner.run_units(..., workers=N)`` -- parallel work-unit
  execution for every study and the best-known recompute
  (:mod:`repro.resilience.runner`).

The pool supervises its children (:mod:`repro.pool.executor`): per-task
wall-clock deadlines, in-pool retries of abnormal deaths, poison-task
quarantine with structured reports (:mod:`repro.pool.errors`), content
digests on every result crossing the pipe, and a deterministic transport
fault plan for chaos testing (:mod:`repro.pool.faults`).
"""

from repro.pool.batch import BatchError, BatchItem, solve_many
from repro.pool.errors import (
    PayloadIntegrityError,
    PoisonTaskError,
    PoisonTaskReport,
    TaskAttempt,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.pool.executor import PoolFuture, ProcessPool
from repro.pool.faults import (
    POOL_FAULT_KINDS,
    PoolFaultPlan,
    PoolFaultSpec,
    parse_pool_fault,
)
from repro.pool.sharding import ShardPlan, plan_shards, run_sharded_ensemble

__all__ = [
    "BatchError",
    "BatchItem",
    "solve_many",
    "PoolFuture",
    "ProcessPool",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "PayloadIntegrityError",
    "TaskAttempt",
    "PoisonTaskReport",
    "PoisonTaskError",
    "POOL_FAULT_KINDS",
    "PoolFaultPlan",
    "PoolFaultSpec",
    "parse_pool_fault",
    "ShardPlan",
    "plan_shards",
    "run_sharded_ensemble",
]
