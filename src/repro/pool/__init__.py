"""Process-pool execution subsystem.

One pool primitive, three consumers:

* :mod:`repro.pool.sharding` -- the ``multiprocess`` execution backend:
  shard one chain ensemble across worker processes, bit-identical to the
  ``vectorized`` backend (see docs/parallel.md for the determinism
  contract).
* :mod:`repro.pool.batch` -- ``solve_many``: fan one solver configuration
  out over many problem instances with bounded in-flight work, ordered
  results and per-instance error isolation.
* ``ResilientRunner.run_units(..., workers=N)`` -- parallel work-unit
  execution for every study and the best-known recompute
  (:mod:`repro.resilience.runner`).
"""

from repro.pool.batch import BatchError, BatchItem, solve_many
from repro.pool.executor import PoolFuture, ProcessPool, WorkerCrashError
from repro.pool.sharding import ShardPlan, plan_shards, run_sharded_ensemble

__all__ = [
    "BatchError",
    "BatchItem",
    "solve_many",
    "PoolFuture",
    "ProcessPool",
    "WorkerCrashError",
    "ShardPlan",
    "plan_shards",
    "run_sharded_ensemble",
]
