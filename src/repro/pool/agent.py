"""The host agent: a remote front for the process-per-task pool.

``repro agent --bind HOST:PORT --workers N`` runs a :class:`HostAgent`:
a TCP server that accepts one client session at a time, receives TASK
frames (:mod:`repro.pool.net`), runs each task in a fresh child process
— the exact :func:`repro.pool.executor._child_main` children the local
:class:`~repro.pool.executor.ProcessPool` uses — and streams results
back as they finish.  The division of labor with the client-side
:class:`~repro.pool.hosts.HostPool`:

* **The agent supervises processes.**  At most ``workers`` children run
  at once (excess tasks queue agent-side); an optional ``task_timeout``
  watchdog SIGTERMs/SIGKILLs a stuck child and reports the attempt as a
  timeout.  A child death or torn pipe becomes a TASK_FAILED frame, not
  an agent crash.
* **The client supervises the network and retries.**  The agent never
  retries: every abnormal outcome is reported and the client decides
  whether to resend (it owns the ``task_retries`` budget and the
  failover policy).  Result payloads are forwarded under the digest the
  worker child computed, so integrity is checked end-to-end by the
  client, not hop-by-hop.
* **Sessions are disposable.**  A client EOF, BYE, torn frame, or idle
  timeout ends the session: in-flight children are reaped, queued tasks
  dropped, and the agent returns to ``accept`` — a reconnecting client
  re-sends whatever it still needs.  That statelessness is what makes
  killing an agent mid-run recoverable bit-identically.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import socket
import time
from collections import deque
from multiprocessing.connection import Connection, wait
from typing import Any, Callable

from repro.core.engine.config import check_timeout, check_workers
from repro.pool.errors import FrameError, PayloadIntegrityError
from repro.pool.executor import _child_main
from repro.pool.net import (
    CONTROL_TASK_ID,
    FRAME_BYE,
    FRAME_HELLO,
    FRAME_PING,
    FRAME_PONG,
    FRAME_REJECT,
    FRAME_RESULT_ERROR,
    FRAME_RESULT_INTERRUPT,
    FRAME_RESULT_OK,
    FRAME_TASK,
    FRAME_TASK_FAILED,
    FRAME_WELCOME,
    PROTOCOL_VERSION,
    listener_socket,
    read_frame,
    send_frame,
    send_json_frame,
)

__all__ = ["HostAgent", "spawn_local_agent"]


class _Child:
    """One in-flight child process serving a remote task."""

    __slots__ = ("task_id", "process", "connection", "deadline")

    def __init__(
        self,
        task_id: int,
        process: mp.process.BaseProcess,
        connection: Connection,
        deadline: float | None,
    ) -> None:
        self.task_id = task_id
        self.process = process
        self.connection = connection
        self.deadline = deadline


class HostAgent:
    """Serve pool tasks to one remote :class:`HostPool` client at a time.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port; the bound
        endpoint is readable from :attr:`address` (and ``--ready-file``
        publishes it for scripted drills).
    workers:
        Maximum concurrent child processes; also advertised to the
        client in the WELCOME frame as this host's task credit.
    task_timeout:
        Optional per-task wall-clock deadline, enforced agent-side
        (task supervision is the agent's job; the client only bounds
        network stalls via heartbeats).
    accept_timeout_s / io_timeout_s / client_idle_timeout_s:
        The bounded-blocking budget: how long ``accept`` may block
        between stop-flag checks, the armed timeout on every client
        socket operation, and how long a session may go without any
        client frame (heartbeats included) before it is dropped.
    term_grace_s:
        SIGTERM→SIGKILL grace when reaping a child.
    context:
        multiprocessing start-method name (``None`` = platform default).
    """

    def __init__(
        self,
        host: str,
        port: int,
        workers: int,
        *,
        task_timeout: float | None = None,
        accept_timeout_s: float = 1.0,
        io_timeout_s: float = 30.0,
        client_idle_timeout_s: float = 60.0,
        term_grace_s: float = 0.5,
        context: str | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        check_workers(workers)
        check_timeout(task_timeout, "task_timeout")
        check_timeout(accept_timeout_s, "accept_timeout_s")
        check_timeout(io_timeout_s, "io_timeout_s")
        check_timeout(client_idle_timeout_s, "client_idle_timeout_s")
        self.workers = workers
        self.task_timeout = task_timeout
        self.io_timeout_s = io_timeout_s
        self.client_idle_timeout_s = client_idle_timeout_s
        self.term_grace_s = term_grace_s
        self._clock = clock
        self._ctx = mp.get_context(context)
        self._stopped = False
        self._listener = listener_socket(host, port, accept_timeout_s)
        #: The bound ``(host, port)`` — resolves ``port=0`` requests.
        self.address: tuple[str, int] = self._listener.getsockname()[:2]

    @property
    def label(self) -> str:
        """This agent's endpoint identity (``host:port``)."""
        return f"{self.address[0]}:{self.address[1]}"

    def stop(self) -> None:
        """Ask the serve loop to exit after its current accept/session tick."""
        self._stopped = True

    def close(self) -> None:
        self._stopped = True
        self._listener.close()

    # -- serving --------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve client sessions until :meth:`stop` or SIGINT."""
        try:
            while not self._stopped:
                try:
                    sock, _peer = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break  # listener closed under us = stop
                try:
                    self._serve_client(sock)
                finally:
                    sock.close()
        except KeyboardInterrupt:
            pass
        finally:
            self._listener.close()

    def serve_one_session(self) -> bool:
        """Accept and serve exactly one session; ``False`` on accept timeout.

        The single-step variant tests drive directly.
        """
        try:
            sock, _peer = self._listener.accept()
        except socket.timeout:
            return False
        try:
            self._serve_client(sock)
        finally:
            sock.close()
        return True

    # -- one client session ---------------------------------------------

    def _serve_client(self, sock: socket.socket) -> None:
        sock.settimeout(self.io_timeout_s)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - transport without TCP_NODELAY
            pass
        if not self._handshake(sock):
            return
        queue: deque[tuple[int, Callable[..., Any], tuple]] = deque()
        running: dict[Connection, _Child] = {}
        last_seen = self._clock()
        try:
            while not self._stopped:
                while queue and len(running) < self.workers:
                    self._spawn(queue.popleft(), running)
                now = self._clock()
                if now - last_seen > self.client_idle_timeout_s:
                    return  # silent client: reclaim the agent
                ready = wait(
                    [sock, *running], timeout=self._tick(running, now)
                )
                for item in ready:
                    if item is sock:
                        alive, saw_frame = self._client_frame(sock, queue)
                        if saw_frame:
                            last_seen = self._clock()
                        if not alive:
                            return
                    else:
                        child = running.pop(item)  # type: ignore[arg-type]
                        self._finish(sock, child)
                if self.task_timeout is None:
                    continue
                now = self._clock()
                for conn, child in list(running.items()):
                    if child.deadline is None or now < child.deadline:
                        continue
                    if conn.poll():
                        continue  # result raced the deadline; collect it
                    running.pop(conn)
                    self._reap(child)
                    send_json_frame(
                        sock, FRAME_TASK_FAILED,
                        {
                            "outcome": "timeout",
                            "error": (
                                f"task {child.task_id} exceeded its "
                                f"{self.task_timeout:g}s deadline on "
                                f"{self.label} and was killed"
                            ),
                        },
                        task_id=child.task_id,
                    )
        except (FrameError, ConnectionError, socket.timeout, OSError):
            # The session transport is gone or unusable; drop the client
            # and return to accept.  The client's reconnect ladder owns
            # recovery — any lost results are simply re-requested.
            return
        finally:
            for child in running.values():
                self._reap(child)

    def _handshake(self, sock: socket.socket) -> bool:
        try:
            frame = read_frame(sock)
        except (FrameError, PayloadIntegrityError, socket.timeout, OSError):
            return False
        if frame is None:
            return False
        if frame.kind != FRAME_HELLO:
            self._reject(sock, f"expected HELLO, got frame kind {frame.kind}")
            return False
        try:
            hello = frame.json()
        except FrameError:
            self._reject(sock, "HELLO payload is not a JSON object")
            return False
        protocol = hello.get("protocol")
        if protocol != PROTOCOL_VERSION:
            self._reject(
                sock,
                f"protocol version mismatch: agent speaks "
                f"{PROTOCOL_VERSION}, client sent {protocol!r}",
            )
            return False
        send_json_frame(
            sock, FRAME_WELCOME,
            {
                "protocol": PROTOCOL_VERSION,
                "workers": self.workers,
                "host": self.label,
                "pid": os.getpid(),
            },
        )
        return True

    def _reject(self, sock: socket.socket, reason: str) -> None:
        try:
            send_json_frame(sock, FRAME_REJECT, {"reason": reason})
        except OSError:  # pragma: no cover - peer already gone
            pass

    def _client_frame(
        self,
        sock: socket.socket,
        queue: deque[tuple[int, Callable[..., Any], tuple]],
    ) -> tuple[bool, bool]:
        """Read and dispatch one client frame.

        Returns ``(session alive, frame seen)``.  A payload-integrity
        failure on a TASK frame is confined to that task (the frame
        boundary survived): the client is told via TASK_FAILED and the
        session continues.
        """
        try:
            frame = read_frame(sock)
        except PayloadIntegrityError as exc:
            task_id = getattr(exc, "task_id", CONTROL_TASK_ID)
            if task_id == CONTROL_TASK_ID:
                raise FrameError(f"corrupt control frame: {exc}") from exc
            send_json_frame(
                sock, FRAME_TASK_FAILED,
                {"outcome": "integrity", "error": str(exc)},
                task_id=task_id,
            )
            return True, True
        if frame is None:
            return False, False  # clean EOF: client is gone
        if frame.kind == FRAME_PING:
            send_frame(sock, FRAME_PONG)
            return True, True
        if frame.kind == FRAME_BYE:
            return False, True
        if frame.kind == FRAME_TASK:
            try:
                fn, args, _label = pickle.loads(frame.payload)
            except Exception as exc:  # noqa: BLE001 - confine to this task
                send_json_frame(
                    sock, FRAME_TASK_FAILED,
                    {
                        "outcome": "crash",
                        "error": f"task payload could not be "
                        f"deserialized on {self.label}: {exc!r}",
                    },
                    task_id=frame.task_id,
                )
                return True, True
            queue.append((frame.task_id, fn, args))
            return True, True
        raise FrameError(
            f"client sent unexpected frame kind {frame.kind} mid-session"
        )

    # -- child lifecycle ------------------------------------------------

    def _spawn(
        self,
        task: tuple[int, Callable[..., Any], tuple],
        running: dict[Connection, _Child],
    ) -> None:
        task_id, fn, args = task
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_main, args=(send, fn, args, None)
        )
        proc.start()
        # The parent must not hold the child's write end open, or a dead
        # child would never raise EOFError on recv.
        send.close()
        deadline = (
            self._clock() + self.task_timeout
            if self.task_timeout is not None else None
        )
        running[recv] = _Child(task_id, proc, recv, deadline)

    def _tick(
        self, running: dict[Connection, _Child], now: float
    ) -> float:
        """How long the multiplexer may block before the next duty."""
        tick = min(1.0, self.client_idle_timeout_s / 4)
        deadlines = [
            c.deadline for c in running.values() if c.deadline is not None
        ]
        if deadlines:
            tick = min(tick, max(0.0, min(deadlines) - now))
        return tick

    def _finish(self, sock: socket.socket, child: _Child) -> None:
        """Collect one child outcome and forward it to the client.

        Result blobs travel under the digest the child computed — the
        agent never re-hashes, so a byte corrupted on the child pipe is
        caught by the *client's* frame check, end to end.
        """
        task_id = child.task_id
        try:
            try:
                # Bounded by construction: only connections that wait()
                # reported ready (or poll() confirmed) reach _finish, so
                # recv() returns without blocking.
                message = child.connection.recv()  # repro-lint: disable=RPL008 -- recv only after wait()/poll() readiness; hung children are the watchdog's job
            finally:
                child.connection.close()
            child.process.join()
        except (EOFError, OSError):
            child.process.join()
            code = child.process.exitcode
            send_json_frame(
                sock, FRAME_TASK_FAILED,
                {
                    "outcome": "crash",
                    "error": f"worker process on {self.label} died without "
                    f"reporting a result (exit code {code})",
                },
                task_id=task_id,
            )
            return
        status = message[0]
        if status == "ok":
            blob, hexdigest = message[1], message[2]
            send_frame(
                sock, FRAME_RESULT_OK, blob, task_id=task_id,
                digest=bytes.fromhex(hexdigest),
            )
            return
        if status == "interrupt":
            send_frame(sock, FRAME_RESULT_INTERRUPT, task_id=task_id)
            return
        try:
            payload = pickle.dumps(message[1])
        except Exception:  # noqa: BLE001 - keep the error representable
            payload = pickle.dumps(
                RuntimeError(f"unpicklable {message[1]!r}")
            )
        send_frame(sock, FRAME_RESULT_ERROR, payload, task_id=task_id)

    def _reap(self, child: _Child) -> None:
        """SIGTERM the child, escalate to SIGKILL after the grace period."""
        child.connection.close()
        proc = child.process
        if proc.is_alive():
            proc.terminate()
            proc.join(self.term_grace_s)
            if proc.is_alive():
                proc.kill()
        proc.join()


# -- scripted-drill helper ---------------------------------------------


def _agent_entry(
    ready: Connection,
    host: str,
    port: int,
    workers: int,
    options: dict[str, Any],
) -> None:
    """Child entry point for :func:`spawn_local_agent` (spawn-safe)."""
    agent = HostAgent(host, port, workers, **options)
    ready.send(agent.address)
    ready.close()
    agent.serve_forever()


def spawn_local_agent(
    workers: int = 1,
    host: str = "127.0.0.1",
    port: int = 0,
    ready_timeout_s: float = 10.0,
    **options: Any,
) -> tuple[mp.process.BaseProcess, tuple[str, int]]:
    """Start a :class:`HostAgent` in a child process; return it + address.

    The default ``port=0`` binds an ephemeral port, so tests and CI
    drills can run several agents side by side without port planning.
    The returned process is a plain ``multiprocessing.Process`` — kill it
    with ``process.kill()`` to stage a host death.
    """
    ctx = mp.get_context()
    recv, send = ctx.Pipe(duplex=False)
    # Not a daemon: daemonic processes may not fork children, and the
    # agent's whole job is forking per-task workers.  Callers own the
    # shutdown (terminate()/kill() + join()).
    proc = ctx.Process(
        target=_agent_entry,
        args=(send, host, port, workers, options),
    )
    proc.start()
    send.close()
    try:
        if not recv.poll(ready_timeout_s):
            raise RuntimeError(
                f"local agent did not bind within {ready_timeout_s:g}s"
            )
        address = recv.recv()  # repro-lint: disable=RPL008 -- poll(timeout) above bounds this read
    except EOFError:
        proc.join()
        raise RuntimeError(
            f"local agent died before binding (exit code {proc.exitcode})"
        ) from None
    finally:
        recv.close()
    return proc, address
