"""Batched multi-instance solving: one configuration, many instances.

The benchmark-set workloads (all 280 Biskup–Feldmann instances, UCDDCP
sweeps) are embarrassingly parallel *across instances*.  :func:`solve_many`
fans one façade ``solve`` configuration out over a list of instances on
the shared :class:`~repro.pool.executor.ProcessPool`:

* bounded in-flight work (at most ``workers`` solves at a time),
* results collected **in input order** regardless of completion order,
* per-instance **error isolation** — a solve that raises yields a
  :class:`BatchError` record in its slot; the batch never crashes and the
  surviving results keep their indices.

Determinism: each solve seeds its own RNG from its config exactly as a
serial loop would, so a batch run produces the same per-instance results
as ``[solver_for(i).solve(method, **kw) for i in instances]``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.pool.executor import ProcessPool, WorkerCrashError
from repro.pool.worker import solve_one

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import SolveResult
    from repro.problems.cdd import CDDInstance
    from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["BatchError", "BatchItem", "solve_many", "iter_solve_many"]

Instance = "CDDInstance | UCDDCPInstance"


@dataclasses.dataclass(frozen=True)
class BatchError:
    """The error record an isolated per-instance failure degrades to."""

    index: int
    error: str
    error_type: str

    @property
    def ok(self) -> bool:
        return False


@dataclasses.dataclass(frozen=True)
class BatchItem:
    """One slot of a finished batch: the result or its error record."""

    index: int
    instance: Any
    result: "SolveResult | None"
    error: BatchError | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


def iter_solve_many(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    context: str | None = None,
    **solve_kwargs: Any,
) -> Iterator[BatchItem]:
    """Yield :class:`BatchItem` per instance in **completion** order.

    The streaming variant of :func:`solve_many` — use it to render
    progress or start post-processing before the stragglers finish.
    """
    pool = ProcessPool(workers=workers, context=context)
    tasks = [
        (solve_one, (instance, method, dict(solve_kwargs)))
        for instance in instances
    ]
    for index, status, value in pool.imap_unordered(tasks):
        if status == "interrupt":
            raise KeyboardInterrupt
        if status == "ok":
            yield BatchItem(index=index, instance=instances[index],
                           result=value)
        else:
            kind = ("worker_crash" if isinstance(value, WorkerCrashError)
                    else type(value).__name__)
            yield BatchItem(
                index=index,
                instance=instances[index],
                result=None,
                error=BatchError(index=index, error=str(value),
                                 error_type=kind),
            )


def solve_many(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    context: str | None = None,
    **solve_kwargs: Any,
) -> list[BatchItem]:
    """Solve every instance with one configuration; results in input order.

    ``solve_kwargs`` are forwarded to the façade ``solve`` (``config=``,
    ``backend=``, method kwargs...).  A failed instance occupies its slot
    with ``item.ok == False`` and a populated ``item.error``.
    """
    items: list[BatchItem | None] = [None] * len(instances)
    for item in iter_solve_many(
        instances, method, workers=workers, context=context, **solve_kwargs
    ):
        items[item.index] = item
    out = [item for item in items if item is not None]
    assert len(out) == len(instances)
    return out


def batch_wall_time(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    **solve_kwargs: Any,
) -> tuple[list[BatchItem], float]:
    """``solve_many`` plus its wall-clock — the benchmark helper."""
    start = time.perf_counter()
    items = solve_many(instances, method, workers=workers, **solve_kwargs)
    return items, time.perf_counter() - start
