"""Batched multi-instance solving: one configuration, many instances.

The benchmark-set workloads (all 280 Biskup–Feldmann instances, UCDDCP
sweeps) are embarrassingly parallel *across instances*.  :func:`solve_many`
fans one façade ``solve`` configuration out over a list of instances on
the shared :class:`~repro.pool.executor.ProcessPool`:

* bounded in-flight work (at most ``workers`` solves at a time),
* results collected **in input order** regardless of completion order,
* per-instance **error isolation** — a solve that raises yields a
  :class:`BatchError` record in its slot; the batch never crashes and the
  surviving results keep their indices,
* optional **supervision** — ``task_timeout`` reaps hung solves,
  ``task_retries`` respawns crashed/timed-out/corrupted ones, and a solve
  that fails every attempt degrades to a ``poison_task`` error record
  carrying its full :class:`~repro.pool.errors.PoisonTaskReport`,
* **end-to-end integrity** — every returned solution is re-validated by
  the independent schedule checker
  (:func:`repro.problems.validation.validate_schedule`) before it is
  accepted; a result that survived the transport digest but violates a
  structural constraint degrades to a ``validation`` error record rather
  than polluting downstream tables.

Determinism: each solve seeds its own RNG from its config exactly as a
serial loop would, so a batch run produces the same per-instance results
as ``[solver_for(i).solve(method, **kw) for i in instances]``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.pool.errors import (
    LOCAL_HOST_LABEL,
    PayloadIntegrityError,
    PoisonTaskError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.pool.executor import ProcessPool
from repro.pool.faults import PoolFaultPlan
from repro.pool.worker import solve_chunk, solve_one
from repro.problems.validation import ScheduleError, validate_schedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import SolveResult
    from repro.problems.cdd import CDDInstance
    from repro.problems.ucddcp import UCDDCPInstance

__all__ = [
    "BatchError",
    "BatchItem",
    "error_kind",
    "solve_many",
    "iter_solve_many",
]

Instance = "CDDInstance | UCDDCPInstance"

#: ``chunk_size="auto"``: instances at or below this job count are
#: considered small enough that fork/pickle overhead dominates the solve.
CHUNK_SMALL_N = 20
#: ``chunk_size="auto"``: how many consecutive small instances share one
#: worker task.
CHUNK_TARGET = 8


@dataclasses.dataclass(frozen=True)
class BatchError:
    """The error record an isolated per-instance failure degrades to.

    ``report`` carries the quarantine evidence (a
    :class:`~repro.pool.errors.PoisonTaskReport` as JSON) when
    ``error_type == "poison_task"``.  ``host`` names the machine whose
    final attempt failed — ``"local"`` for in-process pools, the agent's
    ``host:port`` label for distributed attempts — so multi-host triage
    can name the machine.
    """

    index: int
    error: str
    error_type: str
    report: dict | None = None
    host: str = LOCAL_HOST_LABEL

    @property
    def ok(self) -> bool:
        return False


@dataclasses.dataclass(frozen=True)
class BatchItem:
    """One slot of a finished batch: the result or its error record."""

    index: int
    instance: Any
    result: "SolveResult | None"
    error: BatchError | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


def error_kind(value: BaseException) -> str:
    """The structured ``error_type`` string for a pool-surfaced failure.

    Shared vocabulary for every layer that renders pool failures to
    users: batch error records and the service's per-job error payloads
    name the same outcome the same way (``poison_task`` /
    ``worker_timeout`` / ``payload_integrity`` / ``worker_crash``, or
    the exception's type name for an ordinary in-task error).
    """
    if isinstance(value, PoisonTaskError):
        return "poison_task"
    if isinstance(value, WorkerTimeoutError):
        return "worker_timeout"
    if isinstance(value, PayloadIntegrityError):
        return "payload_integrity"
    if isinstance(value, WorkerCrashError):
        return "worker_crash"
    return type(value).__name__


def _error_item(index: int, instance: Any, value: BaseException) -> BatchItem:
    report = (
        value.report.to_json() if isinstance(value, PoisonTaskError) else None
    )
    host = (
        value.report.host if isinstance(value, PoisonTaskError)
        else LOCAL_HOST_LABEL
    )
    return BatchItem(
        index=index,
        instance=instance,
        result=None,
        error=BatchError(index=index, error=str(value),
                         error_type=error_kind(value), report=report,
                         host=host),
    )


def _plan_chunks(
    instances: Sequence[Any], chunk_size: int | str | None
) -> list[list[int]]:
    """Group instance indices into per-task chunks.

    ``None`` keeps the process-per-instance contract.  ``"auto"`` packs
    runs of *consecutive* small instances (``n <= CHUNK_SMALL_N``) into
    chunks of :data:`CHUNK_TARGET`; large instances always get their own
    task (their solve dominates the fork cost, and one process per solve
    keeps crash isolation maximal where it is cheapest).  An integer
    packs every ``chunk_size`` consecutive instances unconditionally.
    """
    if chunk_size is None:
        return [[i] for i in range(len(instances))]
    if chunk_size == "auto":
        groups: list[list[int]] = []
        run: list[int] = []
        for i, inst in enumerate(instances):
            n = getattr(inst, "n", None)
            if n is not None and n <= CHUNK_SMALL_N:
                run.append(i)
                if len(run) >= CHUNK_TARGET:
                    groups.append(run)
                    run = []
            else:
                if run:
                    groups.append(run)
                    run = []
                groups.append([i])
        if run:
            groups.append(run)
        return groups
    if isinstance(chunk_size, int) and not isinstance(chunk_size, bool):
        if chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, 'auto' or None, got {chunk_size}"
            )
        return [
            list(range(lo, min(lo + chunk_size, len(instances))))
            for lo in range(0, len(instances), chunk_size)
        ]
    raise ValueError(
        f"chunk_size must be an int, 'auto' or None, got {chunk_size!r}"
    )


def _validated_item(instance: Any, index: int, result: Any) -> BatchItem:
    try:
        # Defense in depth: the transport digest proves the bytes
        # arrived intact; the independent checker proves the *content*
        # is a feasible schedule whose stored objective recomputes.
        validate_schedule(instance, result.schedule)
    except ScheduleError as exc:
        return _error_item(index, instance, exc)
    return BatchItem(index=index, instance=instance, result=result)


def iter_solve_many(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    context: str | None = None,
    task_timeout: float | None = None,
    task_retries: int = 0,
    pool_faults: PoolFaultPlan | None = None,
    chunk_size: int | str | None = None,
    **solve_kwargs: Any,
) -> Iterator[BatchItem]:
    """Yield :class:`BatchItem` per instance in **completion** order.

    The streaming variant of :func:`solve_many` — use it to render
    progress or start post-processing before the stragglers finish.

    ``chunk_size`` packs several instances per worker task to amortize
    fork/pickle overhead on small instances (``"auto"`` groups runs of
    consecutive instances with ``n <= 20`` eight per task; an int groups
    unconditionally; ``None``, the default, keeps process-per-instance).
    Results and seeds are identical either way; the one trade-off is
    crash isolation — a worker that *dies* abnormally takes its whole
    chunk's attempt with it, so every instance of the chunk degrades to
    the same error record (ordinary per-instance exceptions remain
    isolated inside the chunk).
    """
    chunks = _plan_chunks(instances, chunk_size)
    pool = ProcessPool(
        workers=workers, context=context, task_timeout=task_timeout,
        task_retries=task_retries, fault_plan=pool_faults,
    )
    tasks = []
    labels = []
    for j, group in enumerate(chunks):
        if len(group) == 1:
            index = group[0]
            tasks.append(
                (solve_one, (instances[index], method, dict(solve_kwargs)))
            )
            labels.append(getattr(instances[index], "name", f"task{index}"))
        else:
            tasks.append(
                (
                    solve_chunk,
                    ([instances[i] for i in group], method,
                     dict(solve_kwargs)),
                )
            )
            labels.append(f"chunk{j}[{group[0]}..{group[-1]}]")
    for task_index, status, value in pool.imap_unordered(tasks, labels=labels):
        if status == "interrupt":
            raise KeyboardInterrupt
        group = chunks[task_index]
        if status != "ok":
            # A chunk-level abnormal death (crash/timeout/quarantine)
            # cannot be attributed to one member; every instance in the
            # chunk records the same error.
            for index in group:
                yield _error_item(index, instances[index], value)
            continue
        if len(group) == 1:
            yield _validated_item(instances[group[0]], group[0], value)
            continue
        for index, (item_status, item_value) in zip(group, value):
            if item_status != "ok":
                yield _error_item(index, instances[index], item_value)
            else:
                yield _validated_item(instances[index], index, item_value)


def solve_many(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    context: str | None = None,
    task_timeout: float | None = None,
    task_retries: int = 0,
    pool_faults: PoolFaultPlan | None = None,
    chunk_size: int | str | None = None,
    **solve_kwargs: Any,
) -> list[BatchItem]:
    """Solve every instance with one configuration; results in input order.

    ``solve_kwargs`` are forwarded to the façade ``solve`` (``config=``,
    ``backend=``, method kwargs...).  A failed instance occupies its slot
    with ``item.ok == False`` and a populated ``item.error``.
    ``chunk_size`` (``"auto"`` or an int) packs several small instances
    per worker task — same results, less fork/pickle overhead; see
    :func:`iter_solve_many`.
    """
    items: list[BatchItem | None] = [None] * len(instances)
    for item in iter_solve_many(
        instances, method, workers=workers, context=context,
        task_timeout=task_timeout, task_retries=task_retries,
        pool_faults=pool_faults, chunk_size=chunk_size, **solve_kwargs,
    ):
        items[item.index] = item
    out = [item for item in items if item is not None]
    assert len(out) == len(instances)
    return out


def batch_wall_time(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    **solve_kwargs: Any,
) -> tuple[list[BatchItem], float]:
    """``solve_many`` plus its wall-clock — the benchmark helper."""
    start = time.perf_counter()
    items = solve_many(instances, method, workers=workers, **solve_kwargs)
    return items, time.perf_counter() - start
