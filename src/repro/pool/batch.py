"""Batched multi-instance solving: one configuration, many instances.

The benchmark-set workloads (all 280 Biskup–Feldmann instances, UCDDCP
sweeps) are embarrassingly parallel *across instances*.  :func:`solve_many`
fans one façade ``solve`` configuration out over a list of instances on
the shared :class:`~repro.pool.executor.ProcessPool`:

* bounded in-flight work (at most ``workers`` solves at a time),
* results collected **in input order** regardless of completion order,
* per-instance **error isolation** — a solve that raises yields a
  :class:`BatchError` record in its slot; the batch never crashes and the
  surviving results keep their indices,
* optional **supervision** — ``task_timeout`` reaps hung solves,
  ``task_retries`` respawns crashed/timed-out/corrupted ones, and a solve
  that fails every attempt degrades to a ``poison_task`` error record
  carrying its full :class:`~repro.pool.errors.PoisonTaskReport`,
* **end-to-end integrity** — every returned solution is re-validated by
  the independent schedule checker
  (:func:`repro.problems.validation.validate_schedule`) before it is
  accepted; a result that survived the transport digest but violates a
  structural constraint degrades to a ``validation`` error record rather
  than polluting downstream tables.

Determinism: each solve seeds its own RNG from its config exactly as a
serial loop would, so a batch run produces the same per-instance results
as ``[solver_for(i).solve(method, **kw) for i in instances]``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.pool.errors import (
    PayloadIntegrityError,
    PoisonTaskError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.pool.executor import ProcessPool
from repro.pool.faults import PoolFaultPlan
from repro.pool.worker import solve_one
from repro.problems.validation import ScheduleError, validate_schedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.results import SolveResult
    from repro.problems.cdd import CDDInstance
    from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["BatchError", "BatchItem", "solve_many", "iter_solve_many"]

Instance = "CDDInstance | UCDDCPInstance"


@dataclasses.dataclass(frozen=True)
class BatchError:
    """The error record an isolated per-instance failure degrades to.

    ``report`` carries the quarantine evidence (a
    :class:`~repro.pool.errors.PoisonTaskReport` as JSON) when
    ``error_type == "poison_task"``.
    """

    index: int
    error: str
    error_type: str
    report: dict | None = None

    @property
    def ok(self) -> bool:
        return False


@dataclasses.dataclass(frozen=True)
class BatchItem:
    """One slot of a finished batch: the result or its error record."""

    index: int
    instance: Any
    result: "SolveResult | None"
    error: BatchError | None = None

    @property
    def ok(self) -> bool:
        return self.result is not None


def _error_kind(value: BaseException) -> str:
    """The structured ``error_type`` string for a pool-surfaced failure."""
    if isinstance(value, PoisonTaskError):
        return "poison_task"
    if isinstance(value, WorkerTimeoutError):
        return "worker_timeout"
    if isinstance(value, PayloadIntegrityError):
        return "payload_integrity"
    if isinstance(value, WorkerCrashError):
        return "worker_crash"
    return type(value).__name__


def _error_item(index: int, instance: Any, value: BaseException) -> BatchItem:
    report = (
        value.report.to_json() if isinstance(value, PoisonTaskError) else None
    )
    return BatchItem(
        index=index,
        instance=instance,
        result=None,
        error=BatchError(index=index, error=str(value),
                         error_type=_error_kind(value), report=report),
    )


def iter_solve_many(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    context: str | None = None,
    task_timeout: float | None = None,
    task_retries: int = 0,
    pool_faults: PoolFaultPlan | None = None,
    **solve_kwargs: Any,
) -> Iterator[BatchItem]:
    """Yield :class:`BatchItem` per instance in **completion** order.

    The streaming variant of :func:`solve_many` — use it to render
    progress or start post-processing before the stragglers finish.
    """
    pool = ProcessPool(
        workers=workers, context=context, task_timeout=task_timeout,
        task_retries=task_retries, fault_plan=pool_faults,
    )
    tasks = [
        (solve_one, (instance, method, dict(solve_kwargs)))
        for instance in instances
    ]
    labels = [getattr(inst, "name", f"task{i}")
              for i, inst in enumerate(instances)]
    for index, status, value in pool.imap_unordered(tasks, labels=labels):
        if status == "interrupt":
            raise KeyboardInterrupt
        if status != "ok":
            yield _error_item(index, instances[index], value)
            continue
        try:
            # Defense in depth: the transport digest proves the bytes
            # arrived intact; the independent checker proves the *content*
            # is a feasible schedule whose stored objective recomputes.
            validate_schedule(instances[index], value.schedule)
        except ScheduleError as exc:
            yield _error_item(index, instances[index], exc)
            continue
        yield BatchItem(index=index, instance=instances[index], result=value)


def solve_many(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    context: str | None = None,
    task_timeout: float | None = None,
    task_retries: int = 0,
    pool_faults: PoolFaultPlan | None = None,
    **solve_kwargs: Any,
) -> list[BatchItem]:
    """Solve every instance with one configuration; results in input order.

    ``solve_kwargs`` are forwarded to the façade ``solve`` (``config=``,
    ``backend=``, method kwargs...).  A failed instance occupies its slot
    with ``item.ok == False`` and a populated ``item.error``.
    """
    items: list[BatchItem | None] = [None] * len(instances)
    for item in iter_solve_many(
        instances, method, workers=workers, context=context,
        task_timeout=task_timeout, task_retries=task_retries,
        pool_faults=pool_faults, **solve_kwargs,
    ):
        items[item.index] = item
    out = [item for item in items if item is not None]
    assert len(out) == len(instances)
    return out


def batch_wall_time(
    instances: Sequence[Any],
    method: str = "parallel_sa",
    workers: int | None = None,
    **solve_kwargs: Any,
) -> tuple[list[BatchItem], float]:
    """``solve_many`` plus its wall-clock — the benchmark helper."""
    start = time.perf_counter()
    items = solve_many(instances, method, workers=workers, **solve_kwargs)
    return items, time.perf_counter() - start
