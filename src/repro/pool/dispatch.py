"""Job-level dispatch: one supervised child per job, cancellable.

:class:`~repro.pool.executor.ProcessPool` supervises a *batch* — it owns
scheduling, multiplexed collection and retry ordering for many tasks at
once.  The scheduling service needs the same supervision guarantees
(deadline watchdog, SIGTERM→SIGKILL reaping, digest-checked payloads,
abnormal-attempt retries, poison-task quarantine) but for exactly one
job at a time per queue worker, plus one thing the batch pool does not
offer: **cooperative cancellation**, so a service shutting down can reap
an in-flight solve instead of waiting minutes for it.

:class:`SupervisedDispatch` is that primitive.  It speaks the identical
child protocol (:func:`~repro.pool.executor._child_main` with the
pickle-blob + SHA-256 framing and fault directives), reuses the pool's
:func:`~repro.pool.executor.receive_outcome` /
:func:`~repro.pool.executor.reap_child` helpers, and classifies
outcomes with the same status vocabulary — so a job failure surfaces to
service clients exactly like a batch slot failure surfaces to batch
callers.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from multiprocessing.connection import Connection, wait
from typing import Any, Callable

from repro.core.engine.config import check_retries, check_timeout
from repro.pool.errors import (
    PoisonTaskError,
    PoisonTaskReport,
    TaskAttempt,
    WorkerTimeoutError,
)
from repro.pool.executor import _child_main, reap_child, receive_outcome
from repro.pool.faults import PoolFaultPlan

__all__ = ["SupervisedDispatch"]

#: How often the supervision loop wakes to check for cancellation.  Small
#: enough that service shutdown feels immediate, large enough that an
#: idle wait costs nothing measurable next to a solve.
DISPATCH_TICK_S = 0.05


class SupervisedDispatch:
    """Run single jobs in supervised child processes, cancellably.

    One instance per queue-worker thread: :meth:`run` executes one job
    at a time; :meth:`cancel` (callable from any thread) makes the
    current and all future :meth:`run` calls return ``("cancelled",
    None)`` promptly, reaping the in-flight child.  Construction mirrors
    the pool's supervision knobs (``context``, ``term_grace_s``); the
    per-job knobs (deadline, retries, fault directives) travel with each
    :meth:`run` call because the service maps *request* deadlines onto
    them.
    """

    def __init__(
        self,
        context: str | None = None,
        term_grace_s: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
        tick_s: float = DISPATCH_TICK_S,
    ) -> None:
        check_timeout(term_grace_s, "term_grace_s")
        check_timeout(tick_s, "tick_s")
        self.term_grace_s = term_grace_s
        self._ctx = mp.get_context(context)
        self._clock = clock
        self._tick_s = tick_s
        self._cancel = threading.Event()

    def cancel(self) -> None:
        """Stop the in-flight job (reaping its child) and refuse new ones."""
        self._cancel.set()

    @property
    def cancelled(self) -> bool:
        return self._cancel.is_set()

    def run(
        self,
        fn: Callable[..., Any],
        args: tuple,
        label: str = "job",
        task_timeout: float | None = None,
        task_retries: int = 0,
        fault_plan: PoolFaultPlan | None = None,
        task_index: int = 0,
    ) -> tuple[str, Any]:
        """Run ``fn(*args)`` in a fresh supervised child; ``(status, value)``.

        ``status`` follows the pool contract — ``"ok"`` (value = task
        return), ``"error"`` (value = the exception: the task's own, a
        :class:`~repro.pool.errors.WorkerCrashError` /
        :class:`WorkerTimeoutError` /
        :class:`~repro.pool.errors.PayloadIntegrityError` for an
        abnormal single-attempt failure, or
        :class:`~repro.pool.errors.PoisonTaskError` after every retry
        failed), ``"interrupt"`` (child saw ``KeyboardInterrupt``) — plus
        ``"cancelled"`` (value ``None``) when :meth:`cancel` fired.

        ``task_timeout`` is the job's wall-clock deadline (the service
        maps per-request deadlines here); ``task_retries`` respawns
        abnormal attempts exactly like the batch pool; ``fault_plan`` /
        ``task_index`` arm deterministic fault directives for drills,
        with ``task_index`` playing the pool's task-index role (the
        service uses the job's dispatch sequence number).
        """
        check_timeout(task_timeout, "task_timeout")
        check_retries(task_retries, "task_retries")
        attempts: list[TaskAttempt] = []
        attempt = 0
        while True:
            attempt += 1
            if self._cancel.is_set():
                return "cancelled", None
            directive = (
                fault_plan.directive(task_index, attempt)
                if fault_plan is not None else None
            )
            recv, send = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_child_main, args=(send, fn, args, directive)
            )
            proc.start()
            # The parent must not hold the child's write end open, or a
            # dead child would never raise EOFError on recv.
            send.close()
            status, value = self._supervise(
                recv, proc, label, task_timeout, attempt
            )
            if status not in ("crash", "timeout", "integrity"):
                return status, value
            attempts.append(TaskAttempt(
                attempt=attempt,
                outcome=status,
                error=str(value),
                exitcode=proc.exitcode,
            ))
            if attempt <= task_retries:
                continue
            if task_retries == 0:
                return "error", value
            report = PoisonTaskReport(
                index=task_index, label=label, attempts=tuple(attempts)
            )
            return "error", PoisonTaskError(report)

    def _supervise(
        self,
        connection: Connection,
        process: mp.process.BaseProcess,
        label: str,
        task_timeout: float | None,
        attempt: int,
    ) -> tuple[str, Any]:
        """Watch one child until result, deadline, or cancellation.

        Blocking is bounded by construction: each wait lasts at most one
        tick (or the remaining deadline, if sooner), so cancellation and
        the watchdog are both serviced within a tick.
        """
        deadline = (
            self._clock() + task_timeout if task_timeout is not None else None
        )
        while True:
            if self._cancel.is_set():
                reap_child(process, connection, self.term_grace_s)
                return "cancelled", None
            timeout = self._tick_s
            if deadline is not None:
                timeout = min(timeout, max(0.0, deadline - self._clock()))
            if wait([connection], timeout):
                return receive_outcome(connection, process, label)
            if deadline is not None and self._clock() >= deadline:
                if connection.poll():
                    # Result raced the deadline; collect it.
                    return receive_outcome(connection, process, label)
                reap_child(process, connection, self.term_grace_s)
                return "timeout", WorkerTimeoutError(
                    f"job {label!r} exceeded its {task_timeout:g}s deadline "
                    f"on attempt {attempt} and was killed"
                )
