"""Pool transport errors and the poison-task quarantine records.

A leaf module (imports only :mod:`repro.gpusim.errors`) so every pool
consumer — and the resilience layer's classifier — can name these types
without circular imports.  Importing it registers the *transient* pool
errors with the shared taxonomy: a worker killed by the OOM killer or a
watchdog timeout is worth retrying, while a :class:`PoisonTaskError`
(the same task already failed K consecutive times) is fatal by
construction — more retries are exactly what the quarantine exists to
stop.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.gpusim.errors import register_transient

__all__ = [
    "WorkerCrashError",
    "WorkerTimeoutError",
    "PayloadIntegrityError",
    "FrameError",
    "HostUnreachableError",
    "HostHeartbeatError",
    "HostProtocolError",
    "AllHostsLostError",
    "TaskAttempt",
    "PoisonTaskReport",
    "PoisonTaskError",
    "LOCAL_HOST_LABEL",
]

#: Host identity recorded on failure artifacts produced by in-process
#: pools; remote attempts record the originating agent's endpoint label.
LOCAL_HOST_LABEL = "local"


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result.

    Covers hard deaths (segfault, ``kill -9``, OOM killer) and transport
    failures where the pipe closed or delivered an undecodable message.
    """


class WorkerTimeoutError(WorkerCrashError):
    """A worker exceeded its per-task wall-clock deadline and was killed.

    The pool SIGTERMs the child, escalates to SIGKILL after a short grace
    period, and surfaces this error.  Transient: a hung task is often a
    co-tenancy artifact (page-cache stall, CPU starvation) that a retry
    clears.
    """


class PayloadIntegrityError(WorkerCrashError):
    """A result crossed the pipe but failed its content-digest check.

    The child ships ``(pickle blob, sha256 digest)``; a mismatch on
    receipt means the bytes were corrupted in transit.  A subclass of
    :class:`WorkerCrashError` because the delivered result is exactly as
    unusable as no result at all — and equally worth one more attempt.
    """


class FrameError(RuntimeError):
    """A transport frame was torn or malformed (bad magic, bad length).

    Raised by the framed socket protocol (:mod:`repro.pool.net`) when a
    peer delivers bytes that cannot be a frame.  The connection that
    produced it is unusable (stream framing is lost), so the host layer
    treats it as a connection failure, never as a task result.
    """


class HostUnreachableError(WorkerCrashError):
    """A remote host agent died, reset the connection, or refused it.

    The host-level analogue of :class:`WorkerCrashError`: the machine (or
    its agent process) is gone mid-conversation.  Transient by
    inheritance — reconnecting, or failing the host's shards over to the
    surviving hosts, can recover the run bit-identically.
    """


class HostHeartbeatError(HostUnreachableError):
    """A remote host missed its heartbeat deadline.

    The connection may still look open (a network blackhole drops packets
    without resetting), but the agent has stopped answering pings within
    ``heartbeat_timeout_s``; the client declares the host dead and enters
    the reconnect/failover ladder.
    """


class HostProtocolError(RuntimeError):
    """The remote agent speaks an incompatible protocol.

    Raised at handshake time on a version mismatch or a malformed
    handshake reply.  Deliberately *not* transient: reconnecting to the
    same agent yields the same version forever.
    """


class AllHostsLostError(RuntimeError):
    """Every configured remote host is dead and out of reconnect budget.

    The distributed runner catches this to degrade gracefully to the
    local multiprocess pool; with local fallback disabled it surfaces as
    the solve's failure.
    """


@dataclasses.dataclass(frozen=True)
class TaskAttempt:
    """One failed attempt in a task's supervision history."""

    attempt: int  # 1-based
    outcome: str  # "crash" | "timeout" | "integrity"
    error: str
    exitcode: int | None = None  # negative = killed by that signal
    #: Where the attempt ran: ``"local"`` for in-process pools, the
    #: agent's endpoint label (``host:port``) for remote attempts.
    host: str = LOCAL_HOST_LABEL

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class PoisonTaskReport:
    """Structured evidence for a quarantined task.

    Everything an operator needs to reproduce the failure offline: which
    task (index and label), which host(s) ran it, and the outcome, error
    text and exit code/signal of every consecutive failed attempt.
    """

    index: int
    label: str
    attempts: tuple[TaskAttempt, ...]

    @property
    def host(self) -> str:
        """The host of the final failed attempt (``"local"`` locally)."""
        if not self.attempts:
            return LOCAL_HOST_LABEL
        return self.attempts[-1].host

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "host": self.host,
            "hosts": sorted({a.host for a in self.attempts}),
            "consecutive_failures": len(self.attempts),
            "attempts": [a.to_json() for a in self.attempts],
        }

    def summary(self) -> str:
        kinds = ", ".join(a.outcome for a in self.attempts)
        return (
            f"task {self.label!r} quarantined after "
            f"{len(self.attempts)} consecutive failed attempts ({kinds}) "
            f"on {self.host}; last error: {self.attempts[-1].error}"
        )


class PoisonTaskError(RuntimeError):
    """A task was quarantined after K consecutive abnormal failures.

    Deliberately *not* registered transient: the pool has already spent
    the retry budget proving that this task reliably kills its worker.
    """

    def __init__(self, report: PoisonTaskReport) -> None:
        super().__init__(report.summary())
        self.report = report


# HostUnreachableError / HostHeartbeatError are transient via the
# WorkerCrashError registration (subclass-aware); HostProtocolError and
# AllHostsLostError stay fatal — a version mismatch or an exhausted
# reconnect budget cannot be retried away.
register_transient(WorkerCrashError, WorkerTimeoutError)
