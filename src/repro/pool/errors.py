"""Pool transport errors and the poison-task quarantine records.

A leaf module (imports only :mod:`repro.gpusim.errors`) so every pool
consumer — and the resilience layer's classifier — can name these types
without circular imports.  Importing it registers the *transient* pool
errors with the shared taxonomy: a worker killed by the OOM killer or a
watchdog timeout is worth retrying, while a :class:`PoisonTaskError`
(the same task already failed K consecutive times) is fatal by
construction — more retries are exactly what the quarantine exists to
stop.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.gpusim.errors import register_transient

__all__ = [
    "WorkerCrashError",
    "WorkerTimeoutError",
    "PayloadIntegrityError",
    "TaskAttempt",
    "PoisonTaskReport",
    "PoisonTaskError",
]


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result.

    Covers hard deaths (segfault, ``kill -9``, OOM killer) and transport
    failures where the pipe closed or delivered an undecodable message.
    """


class WorkerTimeoutError(WorkerCrashError):
    """A worker exceeded its per-task wall-clock deadline and was killed.

    The pool SIGTERMs the child, escalates to SIGKILL after a short grace
    period, and surfaces this error.  Transient: a hung task is often a
    co-tenancy artifact (page-cache stall, CPU starvation) that a retry
    clears.
    """


class PayloadIntegrityError(WorkerCrashError):
    """A result crossed the pipe but failed its content-digest check.

    The child ships ``(pickle blob, sha256 digest)``; a mismatch on
    receipt means the bytes were corrupted in transit.  A subclass of
    :class:`WorkerCrashError` because the delivered result is exactly as
    unusable as no result at all — and equally worth one more attempt.
    """


@dataclasses.dataclass(frozen=True)
class TaskAttempt:
    """One failed attempt in a task's supervision history."""

    attempt: int  # 1-based
    outcome: str  # "crash" | "timeout" | "integrity"
    error: str
    exitcode: int | None = None  # negative = killed by that signal

    def to_json(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class PoisonTaskReport:
    """Structured evidence for a quarantined task.

    Everything an operator needs to reproduce the failure offline: which
    task (index and label), and the outcome, error text and exit
    code/signal of every consecutive failed attempt.
    """

    index: int
    label: str
    attempts: tuple[TaskAttempt, ...]

    def to_json(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "label": self.label,
            "consecutive_failures": len(self.attempts),
            "attempts": [a.to_json() for a in self.attempts],
        }

    def summary(self) -> str:
        kinds = ", ".join(a.outcome for a in self.attempts)
        return (
            f"task {self.label!r} quarantined after "
            f"{len(self.attempts)} consecutive failed attempts ({kinds}); "
            f"last error: {self.attempts[-1].error}"
        )


class PoisonTaskError(RuntimeError):
    """A task was quarantined after K consecutive abnormal failures.

    Deliberately *not* registered transient: the pool has already spent
    the retry budget proving that this task reliably kills its worker.
    """

    def __init__(self, report: PoisonTaskReport) -> None:
        super().__init__(report.summary())
        self.report = report


register_transient(WorkerCrashError, WorkerTimeoutError)
