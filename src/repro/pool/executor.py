"""The pool primitive: bounded process-per-task execution.

Every parallel feature in this repo (ensemble sharding, ``solve_many``,
``ResilientRunner.run_units(workers=N)``) funnels through
:class:`ProcessPool`, so the concurrency semantics live in exactly one
place:

* **Bounded in-flight work** -- at most ``workers`` child processes exist
  at any moment; remaining tasks queue on the host.
* **Process-per-task** -- each task runs in a fresh child (no long-lived
  worker loop).  Tasks here are whole solver invocations (seconds to
  minutes), so the ~1 ms fork cost is noise, and a fresh process per task
  means a crashed or leaky task can never poison a sibling.
* **Error isolation** -- a task that raises delivers its exception as a
  *value*; a task whose process dies outright (segfault, ``kill -9``)
  delivers :class:`WorkerCrashError`.  The pool itself never raises for a
  task failure.
* **Interrupt propagation** -- ``KeyboardInterrupt`` in a child is
  re-raised on the host when its result is collected, preserving the
  resilient runner's stop-scheduling/flush/skip semantics.

Results travel over one ``multiprocessing.Pipe`` per task and are
multiplexed with :func:`multiprocessing.connection.wait`, so a slow task
never blocks collection of a fast one.

The default start method is the platform's (``fork`` on Linux), which
permits closure tasks.  Payloads used by the library itself are built
spawn-safe (module-level functions + picklable arguments) so the pool also
works under ``spawn``/``forkserver`` via ``context=``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from multiprocessing.connection import Connection, wait
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.engine.config import check_workers

__all__ = ["ProcessPool", "PoolFuture", "WorkerCrashError", "default_workers"]


class WorkerCrashError(RuntimeError):
    """A worker process died without reporting a result."""


def default_workers(cap: int | None = None) -> int:
    """The pool size used when the caller does not choose one."""
    n = os.cpu_count() or 1
    if cap is not None:
        n = min(n, cap)
    return max(n, 1)


def _child_main(conn: Connection, fn: Callable[..., Any], args: tuple) -> None:
    """Child entry point: run the task, ship one tagged result, exit."""
    try:
        value = fn(*args)
        conn.send(("ok", value))
    except KeyboardInterrupt:
        conn.send(("interrupt", None))
    except BaseException as exc:  # noqa: BLE001 - exceptions travel as values
        try:
            conn.send(("error", exc))
        except Exception:
            # Unpicklable exception: degrade to its repr, keep the type name.
            conn.send(("error", RuntimeError(f"unpicklable {exc!r}")))
    finally:
        conn.close()


class PoolFuture:
    """Handle for one in-flight task (internal to :class:`ProcessPool`)."""

    __slots__ = ("index", "process", "connection", "outcome")

    def __init__(
        self, index: int, process: mp.process.BaseProcess, connection: Connection
    ) -> None:
        self.index = index
        self.process = process
        self.connection = connection
        #: ``("ok"|"error"|"interrupt", value)`` once collected.
        self.outcome: tuple[str, Any] | None = None


class ProcessPool:
    """Run tasks in child processes, at most ``workers`` at a time.

    Parameters
    ----------
    workers:
        Maximum concurrent child processes (``None`` = ``os.cpu_count()``).
    context:
        multiprocessing start-method name (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` uses the platform default.
    """

    def __init__(
        self, workers: int | None = None, context: str | None = None
    ) -> None:
        check_workers(workers)
        self.workers = workers if workers is not None else default_workers()
        self._ctx = mp.get_context(context)

    # -- core: completion-ordered iteration ----------------------------

    def imap_unordered(
        self, tasks: Sequence[tuple[Callable[..., Any], tuple]]
    ) -> Iterator[tuple[int, str, Any]]:
        """Yield ``(index, status, value)`` as tasks finish.

        ``status`` is ``"ok"`` (value = task return), ``"error"`` (value =
        the exception, including :class:`WorkerCrashError` for a dead
        worker), or ``"interrupt"`` (child saw ``KeyboardInterrupt``).
        Generator cleanup (including an exception in the consumer)
        terminates all in-flight children.
        """
        pending: list[tuple[int, Callable[..., Any], tuple]] = [
            (i, fn, args) for i, (fn, args) in enumerate(tasks)
        ]
        pending.reverse()  # pop() from the front of the original order
        inflight: dict[Connection, PoolFuture] = {}
        try:
            while pending or inflight:
                while pending and len(inflight) < self.workers:
                    index, fn, args = pending.pop()
                    recv, send = self._ctx.Pipe(duplex=False)
                    proc = self._ctx.Process(
                        target=_child_main, args=(send, fn, args)
                    )
                    proc.start()
                    # The parent must not hold the child's write end open,
                    # or a dead child would never raise EOFError on recv.
                    send.close()
                    inflight[recv] = PoolFuture(index, proc, recv)
                for conn in wait(list(inflight)):
                    fut = inflight.pop(conn)  # type: ignore[index]
                    try:
                        status, value = fut.connection.recv()
                    except EOFError:
                        status, value = "error", WorkerCrashError(
                            f"worker process for task {fut.index} died "
                            "without reporting a result"
                        )
                    finally:
                        fut.connection.close()
                    fut.process.join()
                    yield fut.index, status, value
        finally:
            for fut in inflight.values():
                fut.connection.close()
                if fut.process.is_alive():
                    fut.process.terminate()
                fut.process.join()

    # -- conveniences ---------------------------------------------------

    def map(
        self, fn: Callable[..., Any], argtuples: Iterable[tuple]
    ) -> list[tuple[str, Any]]:
        """Run ``fn(*args)`` for each argtuple; ``(status, value)`` in order.

        A child ``KeyboardInterrupt`` is re-raised on the host after all
        children have been reaped.
        """
        tasks = [(fn, args) for args in argtuples]
        results: list[tuple[str, Any] | None] = [None] * len(tasks)
        interrupted = False
        for index, status, value in self.imap_unordered(tasks):
            if status == "interrupt":
                interrupted = True
                results[index] = ("interrupt", None)
            else:
                results[index] = (status, value)
        if interrupted:
            raise KeyboardInterrupt
        return [r for r in results if r is not None]

    def run_thunks(
        self, thunks: Sequence[Callable[[], Any]]
    ) -> list[tuple[str, Any]]:
        """Run argument-less callables; results in submission order."""
        return self.map(_call_thunk, [(t,) for t in thunks])


def _call_thunk(thunk: Callable[[], Any]) -> Any:
    return thunk()
