"""The pool primitive: bounded, supervised process-per-task execution.

Every parallel feature in this repo (ensemble sharding, ``solve_many``,
``ResilientRunner.run_units(workers=N)``) funnels through
:class:`ProcessPool`, so the concurrency semantics live in exactly one
place:

* **Bounded in-flight work** -- at most ``workers`` child processes exist
  at any moment; remaining tasks queue on the host.
* **Process-per-task** -- each task runs in a fresh child (no long-lived
  worker loop).  Tasks here are whole solver invocations (seconds to
  minutes), so the ~1 ms fork cost is noise, and a fresh process per task
  means a crashed or leaky task can never poison a sibling.
* **Error isolation** -- a task that raises delivers its exception as a
  *value*; a task whose process dies outright (segfault, ``kill -9``)
  delivers :class:`WorkerCrashError`.  The pool itself never raises for a
  task failure.
* **Supervision** -- an optional per-task wall-clock deadline
  (``task_timeout``): a child that exceeds it is SIGTERM'd, escalated to
  SIGKILL after ``term_grace_s``, and surfaces as
  :class:`WorkerTimeoutError` -- siblings keep running and collecting
  throughout.  Abnormal outcomes (crash, timeout, corrupt payload) are
  retried in-pool up to ``task_retries`` times; a task that fails *every*
  attempt is quarantined with a structured
  :class:`~repro.pool.errors.PoisonTaskReport` instead of being retried
  forever.
* **Result integrity** -- children ship results as an explicit pickle
  blob plus its SHA-256 digest; the parent verifies the digest before
  deserializing, so silent transport corruption surfaces as
  :class:`PayloadIntegrityError` rather than as a wrong answer.
* **Interrupt propagation** -- ``KeyboardInterrupt`` in a child is
  re-raised on the host when its result is collected, preserving the
  resilient runner's stop-scheduling/flush/skip semantics.

Results travel over one ``multiprocessing.Pipe`` per task and are
multiplexed with :func:`multiprocessing.connection.wait`, so a slow task
never blocks collection of a fast one; retry cool-downs are folded into
the wait timeout, so a cooling-down task never blocks it either.

The default start method is the platform's (``fork`` on Linux), which
permits closure tasks.  Payloads used by the library itself are built
spawn-safe (module-level functions + picklable arguments) so the pool also
works under ``spawn``/``forkserver`` via ``context=`` -- including fault
directives, which travel as plain strings.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import time
from collections import deque
from multiprocessing.connection import Connection, wait
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.engine.config import check_retries, check_timeout, check_workers
from repro.instances.digest import sha256_hex
from repro.pool.errors import (
    PayloadIntegrityError,
    PoisonTaskError,
    PoisonTaskReport,
    TaskAttempt,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.pool.faults import PoolFaultPlan

__all__ = [
    "ProcessPool",
    "PoolFuture",
    "WorkerCrashError",
    "WorkerTimeoutError",
    "PayloadIntegrityError",
    "default_workers",
]


def default_workers(cap: int | None = None) -> int:
    """The pool size used when the caller does not choose one."""
    n = os.cpu_count() or 1
    if cap is not None:
        n = min(n, cap)
    return max(n, 1)


# One hashing contract repo-wide (repro.instances.digest): children hash
# their result blob with the same SHA-256 the net transport and the
# service result cache use.
_digest = sha256_hex


def _child_main(
    conn: Connection,
    fn: Callable[..., Any],
    args: tuple,
    directive: str | None = None,
) -> None:
    """Child entry point: run the task, ship one tagged result, exit.

    ``directive`` arms deterministic fault injection
    (:mod:`repro.pool.faults`): ``kill`` exits abruptly before running
    the task (the parent sees a closed pipe, exactly like a segfault);
    ``hang`` stalls forever before running it (only the watchdog reaps
    it); ``corrupt-payload`` runs the task and computes the true digest,
    then flips a byte of the pickled result before sending -- the
    parent's digest check must catch it.
    """
    try:
        if directive == "kill":
            conn.close()
            os._exit(77)
        if directive == "hang":
            while True:  # pragma: no cover - only ever exits via a signal
                time.sleep(3600)
        value = fn(*args)
        blob = pickle.dumps(value)
        digest = _digest(blob)
        if directive == "corrupt-payload":
            blob = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        conn.send(("ok", blob, digest))
    except KeyboardInterrupt:
        conn.send(("interrupt", None))
    except BaseException as exc:  # noqa: BLE001 - exceptions travel as values
        try:
            conn.send(("error", exc))
        except Exception:
            # Unpicklable exception: degrade to its repr, keep the type name.
            conn.send(("error", RuntimeError(f"unpicklable {exc!r}")))
    finally:
        conn.close()


def receive_outcome(
    connection: Connection, process: mp.process.BaseProcess, label: str
) -> tuple[str, Any]:
    """Receive and decode one child message; never raises.

    Returns ``(status, value)`` where status is ``"ok"``/``"error"``/
    ``"interrupt"`` (the protocol statuses) or ``"crash"``/``"integrity"``
    (abnormal outcomes a supervisor may retry).  Any receive or decode
    failure is confined to this task: a torn or undecodable message must
    never escape and kill the caller's collection loop.  Shared by the
    pool's multiplexed collection and the service's single-job
    :class:`~repro.pool.dispatch.SupervisedDispatch`, so both speak the
    identical child protocol.
    """
    try:
        try:
            # Bounded by construction: only connections that wait()
            # reported ready (or poll() confirmed) reach this receive, so
            # recv() returns without blocking; hung children are the
            # watchdog's job, not this read's.
            message = connection.recv()  # repro-lint: disable=RPL008 -- recv only after wait()/poll() readiness; hangs are reaped by the deadline watchdog
        finally:
            connection.close()
        process.join()
    except EOFError:
        process.join()
        code = process.exitcode
        return "crash", WorkerCrashError(
            f"worker process for task {label!r} died without reporting "
            f"a result (exit code {code})"
        )
    except Exception as exc:  # noqa: BLE001 - isolate decode failures
        process.join()
        return "crash", WorkerCrashError(
            f"result for task {label!r} could not be received: {exc!r}"
        )
    status = message[0]
    if status != "ok":
        return status, message[1]
    blob, digest = message[1], message[2]
    if _digest(blob) != digest:
        return "integrity", PayloadIntegrityError(
            f"result for task {label!r} failed its content-digest "
            f"check ({len(blob)} bytes); payload corrupted in transit"
        )
    try:
        return "ok", pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - isolate decode failures
        return "crash", WorkerCrashError(
            f"result for task {label!r} could not be deserialized: "
            f"{exc!r}"
        )


def reap_child(
    process: mp.process.BaseProcess,
    connection: Connection,
    term_grace_s: float,
) -> None:
    """SIGTERM the child, escalate to SIGKILL after the grace period."""
    connection.close()
    if process.is_alive():
        process.terminate()
        process.join(term_grace_s)
        if process.is_alive():
            process.kill()
    process.join()


class PoolFuture:
    """Handle for one in-flight task attempt (internal to the pool)."""

    __slots__ = ("index", "process", "connection", "outcome", "attempt",
                 "deadline")

    def __init__(
        self,
        index: int,
        process: mp.process.BaseProcess,
        connection: Connection,
        attempt: int = 1,
        deadline: float | None = None,
    ) -> None:
        self.index = index
        self.process = process
        self.connection = connection
        #: 1-based attempt number of this spawn.
        self.attempt = attempt
        #: Absolute watchdog deadline (``None`` = unsupervised).
        self.deadline = deadline
        #: ``("ok"|"error"|"interrupt", value)`` once collected.
        self.outcome: tuple[str, Any] | None = None


class ProcessPool:
    """Run tasks in child processes, at most ``workers`` at a time.

    Parameters
    ----------
    workers:
        Maximum concurrent child processes (``None`` = ``os.cpu_count()``).
    context:
        multiprocessing start-method name (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` uses the platform default.
    task_timeout:
        Per-task wall-clock deadline in seconds; a child exceeding it is
        killed and its attempt counted as a timeout.  ``None`` (default)
        disables the watchdog.
    task_retries:
        How many times an *abnormal* attempt (crash/timeout/corrupt
        payload -- never an ordinary in-task exception) is retried in a
        fresh child.  With the default of 0 a single failure surfaces its
        raw error; with retries, a task failing every attempt surfaces
        :class:`~repro.pool.errors.PoisonTaskError` carrying the full
        attempt history.
    retry_delay:
        Optional ``attempt -> seconds`` cool-down before respawning
        (0-based attempt).  Delays never block sibling collection: they
        are folded into the pipe-multiplexing timeout.
    term_grace_s:
        Grace period between SIGTERM and SIGKILL when reaping a child.
    fault_plan:
        Optional :class:`~repro.pool.faults.PoolFaultPlan` arming
        deterministic transport faults per ``(task, attempt)``.
    clock:
        Injectable monotonic clock (tests substitute it).
    """

    def __init__(
        self,
        workers: int | None = None,
        context: str | None = None,
        task_timeout: float | None = None,
        task_retries: int = 0,
        retry_delay: Callable[[int], float] | None = None,
        term_grace_s: float = 0.5,
        fault_plan: PoolFaultPlan | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        check_workers(workers)
        check_timeout(task_timeout, "task_timeout")
        check_retries(task_retries, "task_retries")
        check_timeout(term_grace_s, "term_grace_s")
        self.workers = workers if workers is not None else default_workers()
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.retry_delay = retry_delay
        self.term_grace_s = term_grace_s
        self.fault_plan = fault_plan
        self._clock = clock
        self._sleep = time.sleep
        self._ctx = mp.get_context(context)
        if (
            fault_plan is not None
            and fault_plan.wants_hang()
            and task_timeout is None
        ):
            raise ValueError(
                "a 'hang' pool fault can only be reaped by the watchdog; "
                "set task_timeout"
            )

    # -- core: completion-ordered iteration ----------------------------

    def imap_unordered(
        self,
        tasks: Sequence[tuple[Callable[..., Any], tuple]],
        labels: Sequence[str] | None = None,
    ) -> Iterator[tuple[int, str, Any]]:
        """Yield ``(index, status, value)`` as tasks finish.

        ``status`` is ``"ok"`` (value = task return), ``"error"`` (value =
        the exception: the task's own, :class:`WorkerCrashError` /
        :class:`WorkerTimeoutError` / :class:`PayloadIntegrityError` for
        an abnormal single-attempt failure, or
        :class:`~repro.pool.errors.PoisonTaskError` after a quarantine),
        or ``"interrupt"`` (child saw ``KeyboardInterrupt``).  Every task
        index is yielded exactly once, retries notwithstanding.
        Generator cleanup (including an exception in the consumer)
        terminates all in-flight children.

        ``labels`` names tasks in supervision logs and quarantine reports
        (default ``task<i>``).
        """
        specs = [(fn, args) for fn, args in tasks]
        if labels is None:
            names = [f"task{i}" for i in range(len(specs))]
        else:
            names = [str(x) for x in labels]
            if len(names) != len(specs):
                raise ValueError(
                    f"{len(names)} labels for {len(specs)} tasks"
                )
        pending: deque[int] = deque(range(len(specs)))
        cooling: list[tuple[float, int]] = []  # (ready_at, index)
        history: dict[int, list[TaskAttempt]] = {}
        inflight: dict[Connection, PoolFuture] = {}
        try:
            while pending or cooling or inflight:
                now = self._clock()
                while len(inflight) < self.workers:
                    index = self._next_runnable(pending, cooling, now)
                    if index is None:
                        break
                    self._spawn(index, specs[index], history, inflight, now)
                if not inflight:
                    # Whole capacity idle; a retry is cooling down.
                    self._sleep(
                        max(0.0, min(at for at, _ in cooling) - now)
                    )
                    continue
                ready = wait(
                    list(inflight),
                    self._wait_timeout(inflight, cooling, now),
                )
                for conn in ready:
                    fut = inflight.pop(conn)  # type: ignore[arg-type]
                    status, value = self._collect(fut, names)
                    resolved = self._resolve(
                        fut, status, value, names, history, cooling
                    )
                    if resolved is not None:
                        yield resolved
                if self.task_timeout is None:
                    continue
                now = self._clock()
                for conn, fut in list(inflight.items()):
                    if fut.deadline is None or now < fut.deadline:
                        continue
                    if conn.poll():
                        continue  # result raced the deadline; collect it
                    inflight.pop(conn)
                    self._reap(fut)
                    error = WorkerTimeoutError(
                        f"task {names[fut.index]!r} exceeded its "
                        f"{self.task_timeout:g}s deadline on attempt "
                        f"{fut.attempt} and was killed"
                    )
                    resolved = self._resolve(
                        fut, "timeout", error, names, history, cooling
                    )
                    if resolved is not None:
                        yield resolved
        finally:
            for fut in inflight.values():
                fut.connection.close()
                if fut.process.is_alive():
                    fut.process.terminate()
                fut.process.join()

    # -- supervision internals ------------------------------------------

    def _next_runnable(
        self, pending: deque[int], cooling: list[tuple[float, int]],
        now: float,
    ) -> int | None:
        """The next task index to spawn: due retries first, then fresh."""
        if cooling:
            at, index = min(cooling)
            if at <= now:
                cooling.remove((at, index))
                return index
        if pending:
            return pending.popleft()
        return None

    def _spawn(
        self,
        index: int,
        spec: tuple[Callable[..., Any], tuple],
        history: dict[int, list[TaskAttempt]],
        inflight: dict[Connection, PoolFuture],
        now: float,
    ) -> None:
        fn, args = spec
        attempt = len(history.get(index, ())) + 1
        directive = (
            self.fault_plan.directive(index, attempt)
            if self.fault_plan is not None else None
        )
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(
            target=_child_main, args=(send, fn, args, directive)
        )
        proc.start()
        # The parent must not hold the child's write end open, or a dead
        # child would never raise EOFError on recv.
        send.close()
        deadline = (
            now + self.task_timeout if self.task_timeout is not None else None
        )
        inflight[recv] = PoolFuture(
            index, proc, recv, attempt=attempt, deadline=deadline
        )

    def _wait_timeout(
        self,
        inflight: dict[Connection, PoolFuture],
        cooling: list[tuple[float, int]],
        now: float,
    ) -> float | None:
        """How long the pipe multiplexer may block before the next duty:
        the earliest watchdog deadline or retry cool-down expiry."""
        wakeups = [
            fut.deadline for fut in inflight.values()
            if fut.deadline is not None
        ]
        if cooling and len(inflight) < self.workers:
            wakeups.append(min(at for at, _ in cooling))
        if not wakeups:
            return None
        return max(0.0, min(wakeups) - now)

    def _collect(
        self, fut: PoolFuture, names: Sequence[str]
    ) -> tuple[str, Any]:
        """Receive and decode one child message (see :func:`receive_outcome`)."""
        return receive_outcome(fut.connection, fut.process, names[fut.index])

    def _resolve(
        self,
        fut: PoolFuture,
        status: str,
        value: Any,
        names: Sequence[str],
        history: dict[int, list[TaskAttempt]],
        cooling: list[tuple[float, int]],
    ) -> tuple[int, str, Any] | None:
        """Turn one attempt outcome into a yielded triple or a retry.

        Normal outcomes pass through.  Abnormal ones (crash/timeout/
        integrity) are recorded in the task's attempt history and either
        respawned (budget left), surfaced raw (single-attempt pool -- the
        pre-supervision contract), or quarantined as a
        :class:`PoisonTaskError` wrapping the full history.
        """
        index = fut.index
        if status not in ("crash", "timeout", "integrity"):
            return index, status, value
        attempts = history.setdefault(index, [])
        attempts.append(TaskAttempt(
            attempt=fut.attempt,
            outcome=status,
            error=str(value),
            exitcode=fut.process.exitcode,
        ))
        if fut.attempt <= self.task_retries:
            delay = (
                self.retry_delay(fut.attempt - 1)
                if self.retry_delay is not None else 0.0
            )
            cooling.append((self._clock() + max(0.0, delay), index))
            return None
        if self.task_retries == 0:
            return index, "error", value
        report = PoisonTaskReport(
            index=index, label=names[index], attempts=tuple(attempts)
        )
        return index, "error", PoisonTaskError(report)

    def _reap(self, fut: PoolFuture) -> None:
        """SIGTERM the child, escalate to SIGKILL after the grace period."""
        reap_child(fut.process, fut.connection, self.term_grace_s)

    # -- conveniences ---------------------------------------------------

    def map(
        self, fn: Callable[..., Any], argtuples: Iterable[tuple]
    ) -> list[tuple[str, Any]]:
        """Run ``fn(*args)`` for each argtuple; ``(status, value)`` in order.

        A child ``KeyboardInterrupt`` is re-raised on the host after all
        children have been reaped.
        """
        tasks = [(fn, args) for args in argtuples]
        results: list[tuple[str, Any] | None] = [None] * len(tasks)
        interrupted = False
        for index, status, value in self.imap_unordered(tasks):
            if status == "interrupt":
                interrupted = True
                results[index] = ("interrupt", None)
            else:
                results[index] = (status, value)
        if interrupted:
            raise KeyboardInterrupt
        return [r for r in results if r is not None]

    def run_thunks(
        self, thunks: Sequence[Callable[[], Any]]
    ) -> list[tuple[str, Any]]:
        """Run argument-less callables; results in submission order."""
        return self.map(_call_thunk, [(t,) for t in thunks])


def _call_thunk(thunk: Callable[[], Any]) -> Any:
    return thunk()
