"""Deterministic fault injection for the pool transport.

The gpusim device layer proves its fault tolerance against a
:class:`repro.resilience.faults.FaultPlan`; this module extends the same
idea to the process-pool transport, where the failure modes are process
deaths rather than driver errors.  A :class:`PoolFaultPlan` arms a
directive for an exact ``(task index, attempt)`` point in the child
lifecycle:

* ``kill`` — the child exits abruptly before reporting (models segfault,
  ``kill -9``, the OOM killer); the parent observes ``EOFError`` and
  surfaces :class:`~repro.pool.errors.WorkerCrashError`.
* ``hang`` — the child stalls forever before running its task; only the
  pool's ``task_timeout`` watchdog can reap it
  (:class:`~repro.pool.errors.WorkerTimeoutError`).
* ``corrupt-payload`` — the child runs the task, computes the result's
  content digest, then flips a byte of the pickled blob before sending;
  the parent's digest check surfaces
  :class:`~repro.pool.errors.PayloadIntegrityError`.

By default a spec fires on the task's *first* attempt only, so the retry
succeeds — the transient-fault shape supervision must absorb.
``:repeat`` makes it fire on every attempt, which is what drives a task
into poison quarantine.  Directives travel to the child as plain strings,
so injection works identically under ``fork`` and ``spawn``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine.config import check_choice

__all__ = [
    "POOL_FAULT_KINDS",
    "PoolFaultSpec",
    "PoolFaultPlan",
    "parse_pool_fault",
]

POOL_FAULT_KINDS = ("kill", "hang", "corrupt-payload")


@dataclass(frozen=True)
class PoolFaultSpec:
    """Inject ``kind`` into the child running task ``task_index``.

    ``repeat=False`` (the default) fires on attempt 1 only — the retry
    runs clean.  ``repeat=True`` fires on every attempt, modeling a task
    that deterministically kills its worker.
    """

    kind: str
    task_index: int
    repeat: bool = False

    def __post_init__(self) -> None:
        check_choice("pool fault kind", self.kind, POOL_FAULT_KINDS)
        if self.task_index < 0:
            raise ValueError(
                f"pool fault task index must be >= 0, got {self.task_index}"
            )


class PoolFaultPlan:
    """A reproducible schedule of pool-transport faults.

    The parent asks :meth:`directive` at every child spawn; a matching
    spec returns its kind string (shipped to the child) and is logged in
    :attr:`fired` as ``(kind, task_index, attempt)`` for replay
    assertions.
    """

    def __init__(
        self, specs: tuple[PoolFaultSpec, ...] | list[PoolFaultSpec] = ()
    ) -> None:
        self.specs = tuple(specs)
        self.fired: list[tuple[str, int, int]] = []

    def wants_hang(self) -> bool:
        """Whether any spec injects a hang (needs a task_timeout to reap)."""
        return any(spec.kind == "hang" for spec in self.specs)

    def directive(self, task_index: int, attempt: int) -> str | None:
        """The fault kind to arm for this spawn (``None`` = run clean).

        ``attempt`` is 1-based.  At most one spec fires per spawn; with
        several matching specs the first wins.
        """
        for spec in self.specs:
            if spec.task_index != task_index:
                continue
            if attempt == 1 or spec.repeat:
                self.fired.append((spec.kind, task_index, attempt))
                return spec.kind
        return None


def parse_pool_fault(text: str) -> PoolFaultSpec:
    """Parse a CLI pool-fault spec: ``KIND:TASK_INDEX[:repeat]``.

    Examples: ``kill:1`` (task 1's first worker dies, the retry
    succeeds), ``hang:0`` (task 0 stalls until the watchdog reaps it),
    ``corrupt-payload:2:repeat`` (task 2's result is corrupted on every
    attempt and the task ends up quarantined).
    """
    parts = text.split(":")
    if len(parts) not in (2, 3) or (len(parts) == 3 and parts[2] != "repeat"):
        raise ValueError(
            f"bad pool fault spec {text!r}; expected KIND:TASK_INDEX[:repeat],"
            f" e.g. kill:1 (kinds: {POOL_FAULT_KINDS})"
        )
    kind, index_text = parts[:2]
    try:
        task_index = int(index_text)
    except ValueError:
        raise ValueError(
            f"bad pool fault spec {text!r}: task index {index_text!r} "
            "is not an integer"
        ) from None
    return PoolFaultSpec(
        kind=kind, task_index=task_index, repeat=len(parts) == 3
    )
