"""Deterministic fault injection for the pool transport.

The gpusim device layer proves its fault tolerance against a
:class:`repro.resilience.faults.FaultPlan`; this module extends the same
idea to the process-pool transport, where the failure modes are process
deaths rather than driver errors.  A :class:`PoolFaultPlan` arms a
directive for an exact ``(task index, attempt)`` point in the child
lifecycle:

* ``kill`` — the child exits abruptly before reporting (models segfault,
  ``kill -9``, the OOM killer); the parent observes ``EOFError`` and
  surfaces :class:`~repro.pool.errors.WorkerCrashError`.
* ``hang`` — the child stalls forever before running its task; only the
  pool's ``task_timeout`` watchdog can reap it
  (:class:`~repro.pool.errors.WorkerTimeoutError`).
* ``corrupt-payload`` — the child runs the task, computes the result's
  content digest, then flips a byte of the pickled blob before sending;
  the parent's digest check surfaces
  :class:`~repro.pool.errors.PayloadIntegrityError`.

By default a spec fires on the task's *first* attempt only, so the retry
succeeds — the transient-fault shape supervision must absorb.
``:repeat`` makes it fire on every attempt, which is what drives a task
into poison quarantine.  Directives travel to the child as plain strings,
so injection works identically under ``fork`` and ``spawn``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine.config import check_choice

__all__ = [
    "POOL_FAULT_KINDS",
    "PoolFaultSpec",
    "PoolFaultPlan",
    "parse_pool_fault",
    "NET_FAULT_KINDS",
    "NetFaultSpec",
    "NetFaultPlan",
    "parse_net_fault",
]

POOL_FAULT_KINDS = ("kill", "hang", "corrupt-payload")


@dataclass(frozen=True)
class PoolFaultSpec:
    """Inject ``kind`` into the child running task ``task_index``.

    ``repeat=False`` (the default) fires on attempt 1 only — the retry
    runs clean.  ``repeat=True`` fires on every attempt, modeling a task
    that deterministically kills its worker.
    """

    kind: str
    task_index: int
    repeat: bool = False

    def __post_init__(self) -> None:
        check_choice("pool fault kind", self.kind, POOL_FAULT_KINDS)
        if self.task_index < 0:
            raise ValueError(
                f"pool fault task index must be >= 0, got {self.task_index}"
            )


class PoolFaultPlan:
    """A reproducible schedule of pool-transport faults.

    The parent asks :meth:`directive` at every child spawn; a matching
    spec returns its kind string (shipped to the child) and is logged in
    :attr:`fired` as ``(kind, task_index, attempt)`` for replay
    assertions.
    """

    def __init__(
        self, specs: tuple[PoolFaultSpec, ...] | list[PoolFaultSpec] = ()
    ) -> None:
        self.specs = tuple(specs)
        self.fired: list[tuple[str, int, int]] = []

    def wants_hang(self) -> bool:
        """Whether any spec injects a hang (needs a task_timeout to reap)."""
        return any(spec.kind == "hang" for spec in self.specs)

    def directive(self, task_index: int, attempt: int) -> str | None:
        """The fault kind to arm for this spawn (``None`` = run clean).

        ``attempt`` is 1-based.  At most one spec fires per spawn; with
        several matching specs the first wins.
        """
        for spec in self.specs:
            if spec.task_index != task_index:
                continue
            if attempt == 1 or spec.repeat:
                self.fired.append((spec.kind, task_index, attempt))
                return spec.kind
        return None


def parse_pool_fault(text: str) -> PoolFaultSpec:
    """Parse a CLI pool-fault spec: ``KIND:TASK_INDEX[:repeat]``.

    Examples: ``kill:1`` (task 1's first worker dies, the retry
    succeeds), ``hang:0`` (task 0 stalls until the watchdog reaps it),
    ``corrupt-payload:2:repeat`` (task 2's result is corrupted on every
    attempt and the task ends up quarantined).
    """
    parts = text.split(":")
    if len(parts) not in (2, 3) or (len(parts) == 3 and parts[2] != "repeat"):
        raise ValueError(
            f"bad pool fault spec {text!r}; expected KIND:TASK_INDEX[:repeat],"
            f" e.g. kill:1 (kinds: {POOL_FAULT_KINDS})"
        )
    kind, index_text = parts[:2]
    try:
        task_index = int(index_text)
    except ValueError:
        raise ValueError(
            f"bad pool fault spec {text!r}: task index {index_text!r} "
            "is not an integer"
        ) from None
    return PoolFaultSpec(
        kind=kind, task_index=task_index, repeat=len(parts) == 3
    )


#: Network failure modes the distributed transport is drilled against
#: (docs/distributed.md):
#:
#: * ``disconnect`` — send the task, then abruptly close the connection;
#:   exercises reconnect-with-backoff plus the resend of in-flight work.
#: * ``delay`` — a deterministic pause before the task frame goes out;
#:   exercises slow-network tolerance (results stay bit-identical).
#: * ``partial-frame`` — ship only a prefix of the task frame, then
#:   close; the agent's torn-frame path (:class:`FrameError`) fires.
#: * ``corrupt-frame`` — flip a payload byte *after* the digest is
#:   computed; the agent's integrity check rejects the task and the
#:   client re-sends.
#: * ``blackhole`` — the client stops reading from and pinging the
#:   connection, so the agent falls silent from the client's view; the
#:   heartbeat deadline trips and the reconnect ladder runs.
NET_FAULT_KINDS = (
    "disconnect", "delay", "partial-frame", "corrupt-frame", "blackhole"
)


@dataclass(frozen=True)
class NetFaultSpec:
    """Inject network fault ``kind`` when sending task ``task_index``.

    Same firing contract as :class:`PoolFaultSpec`: ``repeat=False``
    fires on the task's first send attempt only (the resend runs clean),
    ``repeat=True`` fires on every attempt.
    """

    kind: str
    task_index: int
    repeat: bool = False

    def __post_init__(self) -> None:
        check_choice("net fault kind", self.kind, NET_FAULT_KINDS)
        if self.task_index < 0:
            raise ValueError(
                f"net fault task index must be >= 0, got {self.task_index}"
            )


class NetFaultPlan:
    """A reproducible schedule of network-transport faults.

    The :class:`~repro.pool.hosts.HostPool` asks :meth:`directive` each
    time it is about to put a task on the wire; a matching spec returns
    its kind and is logged in :attr:`fired` as
    ``(kind, host_label, task_index, attempt)`` for replay assertions.
    Faults are injected client-side, so one plan drills any topology —
    the agent never needs a chaos build.
    """

    def __init__(
        self, specs: tuple[NetFaultSpec, ...] | list[NetFaultSpec] = ()
    ) -> None:
        self.specs = tuple(specs)
        self.fired: list[tuple[str, str, int, int]] = []

    def directive(
        self, host_label: str, task_index: int, attempt: int
    ) -> str | None:
        """The fault kind to inject at this send (``None`` = run clean).

        ``attempt`` is the task's 1-based send attempt (resends after a
        reconnect or a rejected frame count up).  At most one spec fires
        per send; with several matching specs the first wins.
        """
        for spec in self.specs:
            if spec.task_index != task_index:
                continue
            if attempt == 1 or spec.repeat:
                self.fired.append((spec.kind, host_label, task_index, attempt))
                return spec.kind
        return None


def parse_net_fault(text: str) -> NetFaultSpec:
    """Parse a CLI net-fault spec: ``KIND:TASK_INDEX[:repeat]``.

    Examples: ``disconnect:1`` (the connection carrying task 1 drops once
    and the resend succeeds), ``blackhole:0`` (task 0's host goes silent
    until the heartbeat deadline trips), ``corrupt-frame:2:repeat``
    (task 2's frame is corrupted on every send).
    """
    parts = text.split(":")
    if len(parts) not in (2, 3) or (len(parts) == 3 and parts[2] != "repeat"):
        raise ValueError(
            f"bad net fault spec {text!r}; expected KIND:TASK_INDEX[:repeat],"
            f" e.g. disconnect:1 (kinds: {NET_FAULT_KINDS})"
        )
    kind, index_text = parts[:2]
    try:
        task_index = int(index_text)
    except ValueError:
        raise ValueError(
            f"bad net fault spec {text!r}: task index {index_text!r} "
            "is not an integer"
        ) from None
    return NetFaultSpec(
        kind=kind, task_index=task_index, repeat=len(parts) == 3
    )
