"""The client side of the distributed pool: supervised multi-host dispatch.

:class:`HostPool` drives one or more remote :class:`~repro.pool.agent.
HostAgent` endpoints through the framed protocol (:mod:`repro.pool.net`)
and exposes the same ``imap_unordered -> (index, status, value)`` contract
as the local :class:`~repro.pool.executor.ProcessPool`, so the ensemble
sharding runner swaps it in without touching the merge.

Supervision ladder, in escalation order:

1. **Heartbeats** — the pool pings every ``heartbeat_interval_s`` and
   requires *some* frame from each host within ``heartbeat_timeout_s``;
   a silent host (network blackhole, frozen agent) is declared dead even
   though its TCP connection still looks open.
2. **Reconnect with deterministic backoff** — a failed connection is
   redialed up to ``reconnect_attempts`` times under an exponential
   schedule (``backoff_base_s * backoff_factor**k``, capped at
   ``backoff_max_s``); a successful handshake resets the budget.  Tasks
   that were in flight on the dead connection go back on the queue and
   are re-sent — to the reconnected host or any other live one.
3. **Failover** — a host that exhausts its reconnect budget is LOST; its
   queued-back tasks simply run on the survivors.  Because tasks are
   deterministic (fixed ``OffsetRNG`` offsets per shard), a re-run
   returns byte-identical results, so failover never changes an answer.
4. **All hosts lost** — :class:`~repro.pool.errors.AllHostsLostError`;
   the distributed ensemble runner catches it and degrades to the local
   multiprocess pool.

Host-loss re-runs are free: they do not consume the ``task_retries``
budget, because nothing about the *task* failed.  What does consume it:
TASK_FAILED frames from an agent (its child crashed, timed out, or the
task frame arrived corrupt) and result payloads that fail their digest
or fail to deserialize.  A task that exhausts the budget surfaces as
:class:`~repro.pool.errors.PoisonTaskError` whose attempts carry the
host that ran each one.

Chaos drills inject at the client's send path via
:class:`~repro.pool.faults.NetFaultPlan` (``--inject-net-fault``), so
every rung of the ladder is testable against stock agents.
"""

from __future__ import annotations

import pickle
import socket
import time
from collections import deque
from typing import Any, Callable, Iterator, Sequence

from repro.core.engine.config import check_backoff, check_retries, check_timeout
from repro.pool.errors import (
    AllHostsLostError,
    FrameError,
    HostHeartbeatError,
    HostProtocolError,
    HostUnreachableError,
    PayloadIntegrityError,
    PoisonTaskError,
    PoisonTaskReport,
    TaskAttempt,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.pool.faults import NetFaultPlan
from repro.pool.net import (
    CONTROL_TASK_ID,
    FRAME_BYE,
    FRAME_HELLO,
    FRAME_PING,
    FRAME_PONG,
    FRAME_REJECT,
    FRAME_RESULT_ERROR,
    FRAME_RESULT_INTERRUPT,
    FRAME_RESULT_OK,
    FRAME_TASK,
    FRAME_TASK_FAILED,
    FRAME_WELCOME,
    PROTOCOL_VERSION,
    HostSpec,
    client_socket,
    encode_frame,
    parse_host_specs,
    read_frame,
    send_frame,
    send_json_frame,
)

__all__ = ["HostPool"]

_CONNECTED = "connected"
_RECONNECTING = "reconnecting"
_LOST = "lost"

_FAILED_ERRORS: dict[str, type[WorkerCrashError]] = {
    "crash": WorkerCrashError,
    "timeout": WorkerTimeoutError,
    "integrity": PayloadIntegrityError,
}


class _InjectedDisconnect(Exception):
    """Internal: a NetFaultPlan directive asked for an abrupt close."""


class _HostLink:
    """Connection state for one configured host."""

    __slots__ = (
        "spec", "sock", "state", "inflight", "last_seen", "last_ping",
        "failures", "retry_at", "blackholed", "last_error",
    )

    def __init__(self, spec: HostSpec) -> None:
        self.spec = spec
        self.sock: socket.socket | None = None
        self.state = _RECONNECTING
        #: Task indices currently on this host's wire/queue.
        self.inflight: set[int] = set()
        self.last_seen = 0.0
        self.last_ping = 0.0
        #: Consecutive connection failures since the last good handshake.
        self.failures = 0
        self.retry_at = 0.0
        #: Armed by the ``blackhole`` net fault: stop reading and pinging
        #: so the host goes silent from the pool's point of view.
        self.blackholed = False
        self.last_error: Exception | None = None

    @property
    def label(self) -> str:
        return self.spec.label


class HostPool:
    """Run tasks on remote host agents; ProcessPool-shaped interface.

    Parameters
    ----------
    hosts:
        The topology: a ``HOST[:PORT]:WORKERS,...`` string or a sequence
        of :class:`~repro.pool.net.HostSpec`.  Worker counts are task
        credits per host; their sum is the pool's total parallelism.
    task_retries:
        Retry budget for *task* failures reported by an agent (child
        crash/timeout, corrupt frame, undecodable result).  Host-loss
        re-runs never consume it.
    heartbeat_interval_s / heartbeat_timeout_s:
        Ping cadence and the silence deadline that declares a host dead.
    connect_timeout_s / io_timeout_s:
        Dial deadline and the armed per-operation socket timeout.
    reconnect_attempts / backoff_base_s / backoff_factor / backoff_max_s:
        The deterministic reconnect schedule (rung 2 of the ladder).
    net_faults:
        Optional :class:`~repro.pool.faults.NetFaultPlan` injected at
        the send path.
    clock / sleep:
        Injectable time sources (tests substitute them).
    """

    def __init__(
        self,
        hosts: str | Sequence[HostSpec],
        *,
        task_retries: int = 0,
        heartbeat_interval_s: float = 2.0,
        heartbeat_timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        io_timeout_s: float = 30.0,
        reconnect_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_max_s: float = 2.0,
        net_faults: NetFaultPlan | None = None,
        fault_delay_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        specs = parse_host_specs(hosts) if isinstance(hosts, str) else tuple(hosts)
        if not specs:
            raise ValueError("HostPool needs at least one host spec")
        check_retries(task_retries, "task_retries")
        check_retries(reconnect_attempts, "reconnect_attempts")
        check_timeout(heartbeat_interval_s, "heartbeat_interval_s")
        check_timeout(heartbeat_timeout_s, "heartbeat_timeout_s")
        check_timeout(connect_timeout_s, "connect_timeout_s")
        check_timeout(io_timeout_s, "io_timeout_s")
        check_backoff(backoff_base_s, backoff_factor, backoff_max_s)
        self.hosts = specs
        self.task_retries = task_retries
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.io_timeout_s = io_timeout_s
        self.reconnect_attempts = reconnect_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_factor = backoff_factor
        self.backoff_max_s = backoff_max_s
        self.net_faults = net_faults
        self.fault_delay_s = fault_delay_s
        self._clock = clock
        self._sleep = sleep

    @property
    def workers(self) -> int:
        """Total task credit across the topology (fixes the shard plan)."""
        return sum(spec.workers for spec in self.hosts)

    # -- core: completion-ordered iteration -----------------------------

    def imap_unordered(
        self,
        tasks: Sequence[tuple[Callable[..., Any], tuple]],
        labels: Sequence[str] | None = None,
    ) -> Iterator[tuple[int, str, Any]]:
        """Yield ``(index, status, value)`` as remote tasks finish.

        Same contract as :meth:`ProcessPool.imap_unordered`; every index
        is yielded exactly once, reconnects and failover notwithstanding.
        Raises :class:`AllHostsLostError` when no host remains — indices
        not yet yielded are simply the ones the caller must re-run
        locally (re-runs are deterministic).
        """
        specs = [(fn, args) for fn, args in tasks]
        if labels is None:
            names = [f"task{i}" for i in range(len(specs))]
        else:
            names = [str(x) for x in labels]
            if len(names) != len(specs):
                raise ValueError(f"{len(names)} labels for {len(specs)} tasks")
        links = [_HostLink(spec) for spec in self.hosts]
        pending: deque[int] = deque(range(len(specs)))
        done: set[int] = set()
        send_attempts: dict[int, int] = {}
        history: dict[int, list[TaskAttempt]] = {}
        try:
            for link in links:
                self._connect(link, pending)
            while len(done) < len(specs):
                now = self._clock()
                for link in links:
                    if link.state == _RECONNECTING and link.retry_at <= now:
                        self._connect(link, pending)
                if all(link.state == _LOST for link in links):
                    raise AllHostsLostError(self._lost_message(links))
                self._dispatch(
                    links, pending, done, specs, names, send_attempts
                )
                for out in self._pump(links, pending, done, names, history):
                    done.add(out[0])
                    yield out
        finally:
            for link in links:
                self._close(link, bye=True)

    # -- dispatch --------------------------------------------------------

    def _dispatch(
        self,
        links: list[_HostLink],
        pending: deque[int],
        done: set[int],
        specs: Sequence[tuple[Callable[..., Any], tuple]],
        names: Sequence[str],
        send_attempts: dict[int, int],
    ) -> None:
        """Hand queued tasks to connected hosts, up to each host's credit.

        Host order is the configured order and assignment is greedy —
        which host runs which task is *not* part of the determinism
        contract (results are), so no attempt is made to balance beyond
        the per-host credit.
        """
        for link in links:
            while (
                link.state == _CONNECTED
                and not link.blackholed
                and len(link.inflight) < link.spec.workers
                and pending
            ):
                index = pending.popleft()
                if index in done:
                    continue
                self._send_task(
                    link, index, specs[index], names[index], send_attempts,
                    pending,
                )

    def _send_task(
        self,
        link: _HostLink,
        index: int,
        spec: tuple[Callable[..., Any], tuple],
        label: str,
        send_attempts: dict[int, int],
        pending: deque[int],
    ) -> None:
        fn, args = spec
        attempt = send_attempts.get(index, 0) + 1
        send_attempts[index] = attempt
        directive = (
            self.net_faults.directive(link.label, index, attempt)
            if self.net_faults is not None else None
        )
        frame = encode_frame(
            FRAME_TASK, pickle.dumps((fn, args, label)), task_id=index
        )
        link.inflight.add(index)
        assert link.sock is not None
        try:
            if directive == "delay":
                self._sleep(self.fault_delay_s)
            elif directive == "corrupt-frame":
                # Flip the final payload byte *after* the header digest
                # was computed; the agent's integrity check must fire.
                frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
            elif directive == "partial-frame":
                link.sock.sendall(frame[: len(frame) // 2])
                raise _InjectedDisconnect(
                    f"injected partial-frame to {link.label}"
                )
            link.sock.sendall(frame)
            if directive == "disconnect":
                raise _InjectedDisconnect(
                    f"injected disconnect to {link.label}"
                )
            if directive == "blackhole":
                link.blackholed = True
        except _InjectedDisconnect as exc:
            self._link_failed(
                link, pending, HostUnreachableError(str(exc))
            )
        except (OSError, socket.timeout) as exc:
            self._link_failed(
                link, pending,
                HostUnreachableError(
                    f"send to host {link.label} failed: {exc!r}"
                ),
            )

    # -- receive ---------------------------------------------------------

    def _pump(
        self,
        links: list[_HostLink],
        pending: deque[int],
        done: set[int],
        names: Sequence[str],
        history: dict[int, list[TaskAttempt]],
    ) -> list[tuple[int, str, Any]]:
        """One multiplexer beat: wait, read frames, enforce heartbeats."""
        from multiprocessing.connection import wait

        now = self._clock()
        readable = [
            link.sock for link in links
            if link.state == _CONNECTED
            and not link.blackholed
            and link.sock is not None
        ]
        timeout = self._beat_timeout(links, now)
        if readable:
            ready = set(wait(readable, timeout))
        else:
            self._sleep(timeout)
            ready = set()
        out: list[tuple[int, str, Any]] = []
        for link in list(links):
            if link.sock is not None and link.sock in ready:
                out.extend(
                    self._drain(link, pending, done, names, history)
                )
        now = self._clock()
        for link in links:
            if link.state != _CONNECTED:
                continue
            if now - link.last_seen > self.heartbeat_timeout_s:
                self._link_failed(
                    link, pending,
                    HostHeartbeatError(
                        f"host {link.label} silent for more than "
                        f"{self.heartbeat_timeout_s:g}s "
                        "(missed heartbeat deadline)"
                    ),
                )
                continue
            if link.blackholed:
                continue
            if now - link.last_ping >= self.heartbeat_interval_s:
                link.last_ping = now
                try:
                    assert link.sock is not None
                    send_frame(link.sock, FRAME_PING)
                except (OSError, socket.timeout) as exc:
                    self._link_failed(
                        link, pending,
                        HostUnreachableError(
                            f"ping to host {link.label} failed: {exc!r}"
                        ),
                    )
        return out

    def _beat_timeout(self, links: list[_HostLink], now: float) -> float:
        """How long the multiplexer may block before the next duty:
        the earliest ping due, silence deadline, or reconnect retry."""
        wakeups = []
        for link in links:
            if link.state == _CONNECTED:
                wakeups.append(link.last_seen + self.heartbeat_timeout_s)
                if not link.blackholed:
                    wakeups.append(link.last_ping + self.heartbeat_interval_s)
            elif link.state == _RECONNECTING:
                wakeups.append(link.retry_at)
        if not wakeups:
            return self.heartbeat_interval_s
        return max(0.0, min(min(wakeups) - now, self.heartbeat_timeout_s))

    def _drain(
        self,
        link: _HostLink,
        pending: deque[int],
        done: set[int],
        names: Sequence[str],
        history: dict[int, list[TaskAttempt]],
    ) -> list[tuple[int, str, Any]]:
        """Read one frame from a ready link and translate it to outcomes."""
        assert link.sock is not None
        try:
            frame = read_frame(link.sock)
        except PayloadIntegrityError as exc:
            task_id = getattr(exc, "task_id", CONTROL_TASK_ID)
            if task_id == CONTROL_TASK_ID or task_id in done:
                self._link_failed(
                    link, pending,
                    HostUnreachableError(
                        f"corrupt control frame from {link.label}: {exc}"
                    ),
                )
                return []
            link.inflight.discard(task_id)
            out = self._task_failed(
                link, task_id, "integrity", str(exc), names, history, pending
            )
            return [out] if out is not None else []
        except (FrameError, ConnectionError, socket.timeout, OSError) as exc:
            self._link_failed(
                link, pending,
                HostUnreachableError(
                    f"connection to host {link.label} failed: {exc!r}"
                ),
            )
            return []
        if frame is None:
            self._link_failed(
                link, pending,
                HostUnreachableError(
                    f"host {link.label} closed the connection"
                ),
            )
            return []
        link.last_seen = self._clock()
        if frame.kind == FRAME_PONG:
            return []
        index = frame.task_id
        if index == CONTROL_TASK_ID or index in done:
            return []  # stale or control traffic; nothing to resolve
        if frame.kind == FRAME_RESULT_OK:
            link.inflight.discard(index)
            try:
                value = pickle.loads(frame.payload)
            except Exception as exc:  # noqa: BLE001 - confine decode failures
                out = self._task_failed(
                    link, index, "crash",
                    f"result for task {names[index]!r} could not be "
                    f"deserialized: {exc!r}",
                    names, history, pending,
                )
                return [out] if out is not None else []
            return [(index, "ok", value)]
        if frame.kind == FRAME_RESULT_ERROR:
            link.inflight.discard(index)
            try:
                error = pickle.loads(frame.payload)
            except Exception as exc:  # noqa: BLE001 - confine decode failures
                out = self._task_failed(
                    link, index, "crash",
                    f"error for task {names[index]!r} could not be "
                    f"deserialized: {exc!r}",
                    names, history, pending,
                )
                return [out] if out is not None else []
            return [(index, "error", error)]
        if frame.kind == FRAME_RESULT_INTERRUPT:
            link.inflight.discard(index)
            return [(index, "interrupt", None)]
        if frame.kind == FRAME_TASK_FAILED:
            link.inflight.discard(index)
            failed = frame.json()
            out = self._task_failed(
                link, index,
                str(failed.get("outcome", "crash")),
                str(failed.get("error", "agent reported task failure")),
                names, history, pending,
            )
            return [out] if out is not None else []
        self._link_failed(
            link, pending,
            HostUnreachableError(
                f"host {link.label} sent unexpected frame kind {frame.kind}"
            ),
        )
        return []

    def _task_failed(
        self,
        link: _HostLink,
        index: int,
        outcome: str,
        error_text: str,
        names: Sequence[str],
        history: dict[int, list[TaskAttempt]],
        pending: deque[int],
    ) -> tuple[int, str, Any] | None:
        """Record one abnormal task attempt; retry or surface it.

        Mirrors :meth:`ProcessPool._resolve`: within budget the task goes
        back on the queue (any live host may pick it up); an exhausted
        budget surfaces the raw error (``task_retries=0``) or a
        :class:`PoisonTaskError` whose attempts name the hosts.
        """
        if outcome not in _FAILED_ERRORS:
            outcome = "crash"
        error = _FAILED_ERRORS[outcome](error_text)
        attempts = history.setdefault(index, [])
        attempts.append(TaskAttempt(
            attempt=len(attempts) + 1,
            outcome=outcome,
            error=error_text,
            exitcode=None,
            host=link.label,
        ))
        if len(attempts) <= self.task_retries:
            pending.append(index)
            return None
        if self.task_retries == 0:
            return index, "error", error
        report = PoisonTaskReport(
            index=index, label=names[index], attempts=tuple(attempts)
        )
        return index, "error", PoisonTaskError(report)

    # -- connection ladder -----------------------------------------------

    def _connect(self, link: _HostLink, pending: deque[int]) -> None:
        """Dial + handshake one host; schedule a retry on failure.

        A REJECT frame or a version mismatch raises
        :class:`HostProtocolError` — reconnecting cannot fix a protocol
        disagreement, so it fails the pool immediately.
        """
        try:
            sock = client_socket(
                link.spec.address, self.connect_timeout_s, self.io_timeout_s
            )
        except (OSError, socket.timeout) as exc:
            self._link_failed(
                link, pending,
                HostUnreachableError(
                    f"connect to host {link.label} failed: {exc!r}"
                ),
            )
            return
        try:
            send_json_frame(
                sock, FRAME_HELLO,
                {"protocol": PROTOCOL_VERSION, "client": "repro.pool.hosts"},
            )
            frame = read_frame(sock)
        except (FrameError, PayloadIntegrityError, ConnectionError,
                socket.timeout, OSError) as exc:
            sock.close()
            self._link_failed(
                link, pending,
                HostUnreachableError(
                    f"handshake with host {link.label} failed: {exc!r}"
                ),
            )
            return
        if frame is not None and frame.kind == FRAME_REJECT:
            reason = frame.json().get("reason", "no reason given")
            sock.close()
            raise HostProtocolError(
                f"host {link.label} rejected the connection: {reason}"
            )
        if frame is None or frame.kind != FRAME_WELCOME:
            sock.close()
            self._link_failed(
                link, pending,
                HostUnreachableError(
                    f"host {link.label} closed during handshake"
                ),
            )
            return
        welcome = frame.json()
        if welcome.get("protocol") != PROTOCOL_VERSION:
            sock.close()
            raise HostProtocolError(
                f"host {link.label} speaks protocol "
                f"{welcome.get('protocol')!r}, this client speaks "
                f"{PROTOCOL_VERSION}"
            )
        link.sock = sock
        link.state = _CONNECTED
        link.failures = 0
        link.blackholed = False
        now = self._clock()
        link.last_seen = now
        link.last_ping = now

    def _link_failed(
        self, link: _HostLink, pending: deque[int], error: Exception
    ) -> None:
        """Tear down a connection; requeue its work; schedule the ladder.

        Requeued indices go to the *front* of the queue in index order so
        failover work is picked up before fresh work — it was already
        running once.  These re-runs never touch the task-retry budget.
        """
        if link.sock is not None:
            link.sock.close()
            link.sock = None
        link.blackholed = False
        link.last_error = error
        requeue = sorted(link.inflight)
        link.inflight.clear()
        pending.extendleft(reversed(requeue))
        link.failures += 1
        if link.failures > self.reconnect_attempts:
            link.state = _LOST
            return
        delay = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (link.failures - 1),
        )
        link.state = _RECONNECTING
        link.retry_at = self._clock() + delay

    def _lost_message(self, links: list[_HostLink]) -> str:
        details = "; ".join(
            f"{link.label}: {link.last_error}" for link in links
        )
        return (
            f"all {len(links)} host(s) lost after exhausting "
            f"{self.reconnect_attempts} reconnect attempt(s) each — {details}"
        )

    def _close(self, link: _HostLink, bye: bool = False) -> None:
        if link.sock is None:
            return
        if bye and link.state == _CONNECTED:
            try:
                send_frame(link.sock, FRAME_BYE)
            except (OSError, socket.timeout):
                pass
        link.sock.close()
        link.sock = None
