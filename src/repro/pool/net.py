"""The framed socket protocol of the distributed pool (`repro.pool.net`).

One wire format, spoken by the host agent (:mod:`repro.pool.agent`) and
the client-side :class:`~repro.pool.hosts.HostPool`:

``frame = header ++ payload``, with a fixed binary header::

    !4s B I Q 32s   magic  kind  task_id  payload_len  sha256(payload)

* **Integrity before deserialization** — the receiver verifies the
  payload's SHA-256 digest *before* interpreting a single payload byte;
  a mismatch surfaces as the pool's existing
  :class:`~repro.pool.errors.PayloadIntegrityError` path, never as a
  wrong answer or an arbitrary unpickle crash.  Task results keep the
  digest the worker child computed, so the check is end-to-end: child
  pipe -> agent -> network -> client, one digest.
* **Pickle only for task traffic** — control frames (handshake,
  heartbeats, task-failure notices) carry JSON, so a malicious or
  version-skewed peer is rejected before any pickle payload is touched.
* **Explicit timeouts everywhere** — every socket is created through
  :func:`client_socket` / :func:`listener_socket`, which arm a timeout at
  construction.  Lint rule RPL009 (docs/lint.md) enforces this: a bare
  ``socket.socket()`` or a ``settimeout(None)`` in the net transport
  modules is a finding.

The module is deliberately transport-only: no policy (retry, failover,
heartbeat scheduling) lives here — that is :mod:`repro.pool.hosts` — so
both endpoints share one definition of what bytes mean.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

from repro.instances.digest import sha256_bytes
from repro.pool.errors import FrameError, PayloadIntegrityError

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_AGENT_PORT",
    "CONTROL_TASK_ID",
    "FRAME_HELLO",
    "FRAME_WELCOME",
    "FRAME_REJECT",
    "FRAME_TASK",
    "FRAME_RESULT_OK",
    "FRAME_RESULT_ERROR",
    "FRAME_RESULT_INTERRUPT",
    "FRAME_TASK_FAILED",
    "FRAME_PING",
    "FRAME_PONG",
    "FRAME_BYE",
    "Frame",
    "encode_frame",
    "read_frame",
    "send_frame",
    "send_json_frame",
    "json_payload",
    "client_socket",
    "listener_socket",
    "HostSpec",
    "parse_host_spec",
    "parse_host_specs",
    "format_host_specs",
]

#: Bumped on any wire-format change; the handshake rejects a mismatch.
PROTOCOL_VERSION = 1

#: Default TCP port of ``repro agent`` when ``--bind`` names no port.
DEFAULT_AGENT_PORT = 7463

#: ``task_id`` carried by frames that are not about a specific task.
CONTROL_TASK_ID = 0xFFFFFFFF

# -- frame kinds -----------------------------------------------------------
FRAME_HELLO = 1  #: client -> agent: JSON {protocol, client}
FRAME_WELCOME = 2  #: agent -> client: JSON {protocol, workers, host, pid}
FRAME_REJECT = 3  #: agent -> client: JSON {reason} — handshake refused
FRAME_TASK = 4  #: client -> agent: pickled (fn, args, label)
FRAME_RESULT_OK = 5  #: agent -> client: the child's result pickle blob
FRAME_RESULT_ERROR = 6  #: agent -> client: pickled in-task exception
FRAME_RESULT_INTERRUPT = 7  #: agent -> client: child saw KeyboardInterrupt
FRAME_TASK_FAILED = 8  #: agent -> client: JSON {outcome, error} (abnormal)
FRAME_PING = 9  #: client -> agent: heartbeat probe (empty payload)
FRAME_PONG = 10  #: agent -> client: heartbeat answer (empty payload)
FRAME_BYE = 11  #: client -> agent: session over, cancel in-flight work

_FRAME_KINDS = frozenset(range(FRAME_HELLO, FRAME_BYE + 1))

_MAGIC = b"RPN1"
_HEADER = struct.Struct("!4sBIQ32s")

#: Upper bound on one frame's payload; a garbage length field must fail
#: fast instead of making the receiver try to buffer terabytes.
MAX_PAYLOAD_BYTES = 1 << 30


# One hashing contract repo-wide (repro.instances.digest): the frame
# digest is the same SHA-256 the worker children and the result cache
# compute, which is what makes the integrity check end-to-end.
_digest = sha256_bytes


class Frame:
    """One decoded frame: ``kind``, ``task_id`` and the verified payload."""

    __slots__ = ("kind", "task_id", "payload")

    def __init__(self, kind: int, task_id: int, payload: bytes) -> None:
        self.kind = kind
        self.task_id = task_id
        self.payload = payload

    def json(self) -> dict[str, Any]:
        """Decode a control frame's JSON payload (``{}`` when empty)."""
        return json_payload(self.payload)


def json_payload(payload: bytes) -> dict[str, Any]:
    """Decode a JSON control payload; a garbled one is a frame error."""
    if not payload:
        return {}
    try:
        value = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"control frame carries undecodable JSON: {exc}")
    if not isinstance(value, dict):
        raise FrameError(
            f"control frame payload must be a JSON object, got "
            f"{type(value).__name__}"
        )
    return value


def encode_frame(
    kind: int, payload: bytes = b"", task_id: int = CONTROL_TASK_ID,
    digest: bytes | None = None,
) -> bytes:
    """Serialize one frame.

    ``digest`` lets a relay forward a payload under a digest computed
    elsewhere (the agent forwards result blobs under the digest the
    worker child computed, keeping the integrity check end-to-end).
    """
    if kind not in _FRAME_KINDS:
        raise ValueError(f"unknown frame kind {kind}")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise ValueError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte protocol bound"
        )
    header = _HEADER.pack(
        _MAGIC, kind, task_id, len(payload),
        digest if digest is not None else _digest(payload),
    )
    return header + payload


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes, honouring the socket's armed timeout.

    ``recv`` never over-reads past ``n``, so frame boundaries are exact
    and no buffering state survives between frames.  EOF mid-read raises
    :class:`FrameError` — a torn frame, by definition.
    """
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise FrameError(
                f"connection closed mid-frame ({n - remaining} of {n} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Frame | None:
    """Read and verify one frame; ``None`` on a clean EOF between frames.

    Raises :class:`FrameError` for torn/malformed frames (the stream is
    unusable afterwards) and :class:`PayloadIntegrityError` when the
    payload bytes fail their digest — the frame boundary is intact in
    that case, so the caller may keep the connection and reject just the
    one task.  Blocking is bounded by the socket's armed timeout
    (``socket.timeout`` propagates to the caller's supervision loop).
    """
    try:
        first = sock.recv(1)
    except ConnectionError as exc:
        raise FrameError(f"connection reset between frames: {exc!r}")
    if not first:
        return None
    header = first + _recv_exactly(sock, _HEADER.size - 1)
    magic, kind, task_id, length, digest = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise FrameError(
            f"bad frame magic {magic!r}; peer is not speaking the "
            "repro.pool.net protocol"
        )
    if kind not in _FRAME_KINDS:
        raise FrameError(f"unknown frame kind {kind}")
    if length > MAX_PAYLOAD_BYTES:
        raise FrameError(
            f"frame announces a {length}-byte payload, over the "
            f"{MAX_PAYLOAD_BYTES}-byte protocol bound"
        )
    payload = _recv_exactly(sock, length) if length else b""
    if _digest(payload) != digest:
        error = PayloadIntegrityError(
            f"frame payload ({length} bytes, kind {kind}, task "
            f"{task_id}) failed its content-digest check; corrupted in "
            "transit"
        )
        # The frame boundary is intact, so the receiver can keep the
        # connection and confine the failure to this one task.
        error.task_id = task_id  # type: ignore[attr-defined]
        raise error
    return Frame(kind, task_id, payload)


def send_frame(
    sock: socket.socket, kind: int, payload: bytes = b"",
    task_id: int = CONTROL_TASK_ID, digest: bytes | None = None,
) -> None:
    """Encode and ship one frame (bounded by the socket's armed timeout)."""
    sock.sendall(encode_frame(kind, payload, task_id, digest))


def send_json_frame(
    sock: socket.socket, kind: int, fields: dict[str, Any],
    task_id: int = CONTROL_TASK_ID,
) -> None:
    """Ship a control frame with a JSON payload."""
    payload = json.dumps(fields, sort_keys=True).encode("utf-8")
    send_frame(sock, kind, payload, task_id)


# -- bounded socket factories (the RPL009 contract) ------------------------

def client_socket(
    address: tuple[str, int], connect_timeout_s: float, io_timeout_s: float
) -> socket.socket:
    """Connect to an agent with explicit connect and I/O deadlines.

    The returned socket always carries ``io_timeout_s`` as its armed
    timeout, so every subsequent ``recv``/``sendall`` is bounded — the
    invariant RPL009 pins for the net transport modules.
    """
    sock = socket.create_connection(address, timeout=connect_timeout_s)
    try:
        sock.settimeout(io_timeout_s)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except OSError:
        sock.close()
        raise
    return sock


def listener_socket(
    host: str, port: int, accept_timeout_s: float, backlog: int = 8
) -> socket.socket:
    """A bound+listening socket whose ``accept`` is deadline-bounded."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.settimeout(accept_timeout_s)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
    except OSError:
        sock.close()
        raise
    return sock


# -- host topology specs ---------------------------------------------------

class HostSpec:
    """One remote agent in the ``--hosts`` topology.

    ``workers`` is the host's *weight* in the shard plan: the total
    worker count across all specs fixes the plan, so the distributed
    merge is bit-identical to ``backend="multiprocess"`` with that many
    local workers — regardless of which host ends up running which shard.
    """

    __slots__ = ("host", "port", "workers")

    def __init__(self, host: str, port: int, workers: int) -> None:
        if not host:
            raise ValueError("host spec needs a non-empty host name")
        if not (0 < port < 65536):
            raise ValueError(
                f"host spec port must lie in [1, 65535], got {port}"
            )
        if workers < 1:
            raise ValueError(
                f"host spec workers must be >= 1, got {workers}"
            )
        self.host = host
        self.port = port
        self.workers = workers

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def label(self) -> str:
        """The identity recorded on failure artifacts (``host:port``)."""
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HostSpec({self.host!r}, {self.port}, workers={self.workers})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HostSpec)
            and (self.host, self.port, self.workers)
            == (other.host, other.port, other.workers)
        )

    def __hash__(self) -> int:
        return hash((self.host, self.port, self.workers))


def parse_host_spec(text: str) -> HostSpec:
    """Parse one spec: ``HOST:WORKERS`` or ``HOST:PORT:WORKERS``.

    The two-part form (``host1:4``) uses the default agent port
    (:data:`DEFAULT_AGENT_PORT`); the three-part form names an explicit
    port (``localhost:7471:2`` — how localhost drills run several agents
    side by side).
    """
    parts = text.strip().split(":")
    try:
        if len(parts) == 2:
            return HostSpec(parts[0], DEFAULT_AGENT_PORT, int(parts[1]))
        if len(parts) == 3:
            return HostSpec(parts[0], int(parts[1]), int(parts[2]))
    except ValueError as exc:
        raise ValueError(f"bad host spec {text!r}: {exc}") from None
    raise ValueError(
        f"bad host spec {text!r}; expected HOST:WORKERS or "
        "HOST:PORT:WORKERS, e.g. 'host1:4' or 'localhost:7471:2'"
    )


def parse_host_specs(text: str) -> tuple[HostSpec, ...]:
    """Parse a comma-separated topology, e.g. ``host1:4,host2:8``."""
    items = [part for part in text.split(",") if part.strip()]
    if not items:
        raise ValueError("empty host topology; expected HOST:WORKERS,...")
    specs = tuple(parse_host_spec(item) for item in items)
    seen: set[tuple[str, int]] = set()
    for spec in specs:
        if spec.address in seen:
            raise ValueError(
                f"duplicate host endpoint {spec.label!r} in topology"
            )
        seen.add(spec.address)
    return specs


def format_host_specs(specs: tuple[HostSpec, ...] | list[HostSpec]) -> str:
    """The canonical string form of a topology (params/reporting)."""
    return ",".join(f"{s.host}:{s.port}:{s.workers}" for s in specs)
