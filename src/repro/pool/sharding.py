"""Bit-identical ensemble sharding — the ``multiprocess`` backend's engine.

The chain ensemble of :func:`repro.core.engine.driver.run_ensemble` is
embarrassingly parallel whenever no kernel reads another chain's state:
chain ``t``'s trajectory depends only on its initial sequence and its RNG
stream, and the stream depends only on ``(seed, t, draw_round)`` — never on
how many chains run alongside it (see :class:`repro.gpusim.rng.DeviceRNG`).
Sharding therefore splits the grid into contiguous block ranges, runs each
range in a worker process on a :class:`VectorizedBackend` whose RNG is
offset by the shard's first global row, and merges.

**Determinism contract** (asserted in ``tests/test_pool.py``, explained in
docs/parallel.md): for a fixed seed the merged best energy, best sequence
and history are bit-identical to the unsharded ``vectorized``/``gpusim``
run, for any worker count.  The merge reproduces the elitist reduction's
tie-breaks exactly: the reduction only overwrites on a *strict* energy
improvement and breaks within-round ties by lowest thread index, so the
global winner is the shard whose best energy is lowest, reached in the
earliest round, from the lowest shard index (shards are ascending block
ranges, so the lowest tied shard contains the lowest tied global thread).

Strategies whose kernels *do* couple chains opt out via
``EnsembleStrategy.shardable`` (the sync-SA broadcast and the ring/coupled
DPSO couplings read across chains); they fall back to one shard — the
whole ensemble in a single worker process, still trajectory-identical,
just without intra-solve parallelism.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

from repro.core.engine.adapters import adapter_for
from repro.core.engine.backends import DistributedBackend, MultiprocessBackend
from repro.initialization import initial_population
from repro.pool.errors import AllHostsLostError
from repro.pool.executor import ProcessPool, default_workers
from repro.pool.net import format_host_specs
from repro.pool.worker import ShardResult, run_shard
from repro.problems.validation import validate_schedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine.adapters import ProblemAdapter
    from repro.core.engine.driver import EnsembleStrategy
    from repro.core.results import SolveResult
    from repro.problems.cdd import CDDInstance
    from repro.problems.ucddcp import UCDDCPInstance

__all__ = [
    "ShardPlan",
    "plan_shards",
    "run_sharded_ensemble",
    "run_distributed_ensemble",
]


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Contiguous block ranges: shard ``i`` runs ``blocks[i]`` blocks
    starting at global row ``row_offsets[i]``."""

    row_offsets: tuple[int, ...]
    blocks: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.blocks)


def plan_shards(
    grid_size: int,
    block_size: int,
    workers: int | None,
    shardable: bool = True,
    algorithm: str = "",
) -> ShardPlan:
    """Split ``grid_size`` blocks into at most ``workers`` contiguous shards.

    Sharding granularity is whole blocks (a block is the natural CUDA unit
    and keeps shard populations multiples of ``block_size``).  An
    unshardable strategy degrades to one shard with a ``RuntimeWarning``
    when the caller explicitly asked for more.
    """
    if not shardable:
        if workers is not None and workers > 1:
            warnings.warn(
                f"{algorithm or 'this strategy'} couples chains across the "
                "ensemble and cannot be sharded; running the whole ensemble "
                "in one worker process",
                RuntimeWarning,
                stacklevel=3,
            )
        nshards = 1
    else:
        nshards = min(
            workers if workers is not None else default_workers(cap=grid_size),
            grid_size,
        )
    base, extra = divmod(grid_size, nshards)
    blocks = tuple(base + (1 if i < extra else 0) for i in range(nshards))
    offsets, acc = [], 0
    for b in blocks:
        offsets.append(acc * block_size)
        acc += b
    return ShardPlan(row_offsets=tuple(offsets), blocks=blocks)


def _build_shard_tasks(
    instance: "CDDInstance | UCDDCPInstance",
    strategy: "EnsembleStrategy",
    plan: ShardPlan,
    init_seqs: np.ndarray,
    fault_plan: Any,
) -> tuple[list[tuple[Callable[..., Any], tuple]], list[str]]:
    """Spawn-safe shard tasks (and their labels) for any pool transport."""
    config = strategy.config
    tasks: list[tuple[Callable[..., Any], tuple]] = []
    for lo, nblocks in zip(plan.row_offsets, plan.blocks):
        rows = init_seqs[lo : lo + nblocks * config.block_size]
        tasks.append(
            (
                run_shard,
                (instance, type(strategy), config, lo, nblocks, rows,
                 fault_plan),
            )
        )
    labels = [f"{instance.name}:shard{i}" for i in range(len(tasks))]
    return tasks, labels


def _collect_shards(
    shards: list[ShardResult | None],
    outcomes: Iterator[tuple[int, str, Any]],
    indices: Sequence[int] | None = None,
) -> None:
    """Fill ``shards`` from an ``imap_unordered`` stream.

    ``indices`` maps the stream's local task indices back to global shard
    indices (used when a fallback pool re-runs only the unfinished ones).
    """
    for index, status, value in outcomes:
        if status == "interrupt":
            raise KeyboardInterrupt
        if status == "error":
            raise value
        shards[indices[index] if indices is not None else index] = value


def _merge_shards(
    instance: "CDDInstance | UCDDCPInstance",
    strategy: "EnsembleStrategy",
    adapter: "ProblemAdapter",
    results: Sequence[ShardResult],
    start_wall: float,
    params: dict[str, Any],
) -> "SolveResult":
    """Merge shard results bit-identically to the elitist reduction.

    Reproduces the reduction's tie-breaks (strict improvement, earliest
    round, lowest global thread index): the winner is the shard with the
    lowest best energy, reached in the earliest round, from the lowest
    shard index — shards are ascending block ranges, so the lowest tied
    shard contains the lowest tied global thread.  Identical regardless
    of which transport (local pool or remote hosts) ran the shards.
    """
    from repro.core.engine.driver import assemble_result

    config = strategy.config

    def first_round(shard: ShardResult) -> int:
        return int(np.nonzero(shard.ext_history == shard.best_energy)[0][0])

    winner = min(
        range(len(results)),
        key=lambda i: (results[i].best_energy, first_round(results[i]), i),
    )
    merged_ext = results[0].ext_history.copy()
    for shard in results[1:]:
        np.minimum(merged_ext, shard.ext_history, out=merged_ext)
    history = merged_ext[1:] if config.record_history else None

    final_seq, extra_evals = strategy.finalize(results[winner].best_seq)
    wall = time.perf_counter() - start_wall

    params = dict(params)
    params["device_spec"] = config.resolve_device_spec().name
    params["device_profile"] = (
        None if config.device_spec is not None else config.device_profile
    )
    result = assemble_result(
        adapter,
        final_seq,
        evaluations=(config.iterations + 1) * config.population + extra_evals,
        wall_time_s=wall,
        history=history,
        params=params,
    )
    # Defense in depth: shard payloads already passed the transport digest;
    # re-validate the merged solution with the independent checker so a
    # corrupted-but-well-formed payload cannot become a silently wrong
    # answer (a violation raises ScheduleError here, at the merge).
    validate_schedule(instance, result.schedule)
    return result


def _prepare_ensemble(
    instance: "CDDInstance | UCDDCPInstance",
    strategy: "EnsembleStrategy",
    workers: int | None,
) -> tuple["ProblemAdapter", ShardPlan, np.ndarray, float]:
    """Host-global setup shared by the pooled runners: the host RNG
    (``prepare`` + full initial population with the global-row-indexed
    ``prepare_population`` hook) and the shard plan for ``workers``."""
    config = strategy.config
    adapter = adapter_for(instance)
    host_rng = np.random.default_rng(config.seed)
    strategy.prepare(adapter, host_rng)

    start_wall = time.perf_counter()
    plan = plan_shards(
        config.grid_size,
        config.block_size,
        workers,
        shardable=strategy.shardable,
        algorithm=strategy.algorithm,
    )
    init_seqs = initial_population(
        instance, config.population, host_rng, config.init
    ).astype(np.int32)
    init_seqs = strategy.prepare_population(init_seqs)
    return adapter, plan, init_seqs, start_wall


def run_sharded_ensemble(
    instance: "CDDInstance | UCDDCPInstance",
    strategy: "EnsembleStrategy",
    backend: MultiprocessBackend,
) -> "SolveResult":
    """Run one ensemble solve sharded across local worker processes.

    The parent owns everything that is host-global in the unsharded run:
    the host RNG, the shard merge, and ``finalize`` on the merged best.
    Workers own the generation loop for their slice
    (:func:`repro.pool.worker.run_shard`).
    """
    adapter, plan, init_seqs, start_wall = _prepare_ensemble(
        instance, strategy, backend.workers
    )
    tasks, labels = _build_shard_tasks(
        instance, strategy, plan, init_seqs, backend.fault_plan
    )
    shards: list[ShardResult | None] = [None] * len(tasks)
    pool = ProcessPool(
        workers=len(tasks),
        context=backend.context,
        task_timeout=backend.task_timeout,
        task_retries=backend.task_retries,
        fault_plan=backend.pool_faults,
    )
    _collect_shards(shards, pool.imap_unordered(tasks, labels=labels))
    results = [s for s in shards if s is not None]
    assert len(results) == len(tasks)

    params = strategy.params()
    params["backend"] = backend.name
    params["workers"] = len(results)
    return _merge_shards(
        instance, strategy, adapter, results, start_wall, params
    )


def run_distributed_ensemble(
    instance: "CDDInstance | UCDDCPInstance",
    strategy: "EnsembleStrategy",
    backend: DistributedBackend,
) -> "SolveResult":
    """Run one ensemble solve sharded across remote host agents.

    The shard plan is fixed by the topology's *total* worker count, and
    shard results do not depend on where they ran, so the merged result
    is bit-identical to ``backend="multiprocess"`` with the same total —
    through reconnects, host failover, and (when ``local_fallback`` is
    on) complete loss of every remote, where the unfinished shards are
    deterministically re-run on a local :class:`ProcessPool`.
    """
    from repro.pool.hosts import HostPool

    adapter, plan, init_seqs, start_wall = _prepare_ensemble(
        instance, strategy, backend.workers
    )
    tasks, labels = _build_shard_tasks(
        instance, strategy, plan, init_seqs, backend.fault_plan
    )
    shards: list[ShardResult | None] = [None] * len(tasks)
    host_pool = HostPool(
        backend.hosts,
        task_retries=backend.task_retries,
        heartbeat_interval_s=backend.heartbeat_interval_s,
        heartbeat_timeout_s=backend.heartbeat_timeout_s,
        connect_timeout_s=backend.connect_timeout_s,
        io_timeout_s=backend.io_timeout_s,
        reconnect_attempts=backend.reconnect_attempts,
        backoff_base_s=backend.backoff_base_s,
        backoff_factor=backend.backoff_factor,
        backoff_max_s=backend.backoff_max_s,
        net_faults=backend.net_faults,
    )
    try:
        _collect_shards(
            shards, host_pool.imap_unordered(tasks, labels=labels)
        )
    except AllHostsLostError as exc:
        if not backend.local_fallback:
            raise
        remaining = [i for i, s in enumerate(shards) if s is None]
        warnings.warn(
            f"{exc}; degrading to the local multiprocess pool for the "
            f"{len(remaining)} unfinished shard(s) — results are "
            "unaffected (shard re-runs are bit-identical)",
            RuntimeWarning,
            stacklevel=2,
        )
        fallback = ProcessPool(
            workers=min(len(remaining), default_workers()),
            context=backend.context,
        )
        _collect_shards(
            shards,
            fallback.imap_unordered(
                [tasks[i] for i in remaining],
                labels=[labels[i] for i in remaining],
            ),
            indices=remaining,
        )
    results = [s for s in shards if s is not None]
    assert len(results) == len(tasks)

    params = strategy.params()
    params["backend"] = backend.name
    params["workers"] = len(results)
    params["hosts"] = format_host_specs(backend.hosts)
    return _merge_shards(
        instance, strategy, adapter, results, start_wall, params
    )
