"""Bit-identical ensemble sharding — the ``multiprocess`` backend's engine.

The chain ensemble of :func:`repro.core.engine.driver.run_ensemble` is
embarrassingly parallel whenever no kernel reads another chain's state:
chain ``t``'s trajectory depends only on its initial sequence and its RNG
stream, and the stream depends only on ``(seed, t, draw_round)`` — never on
how many chains run alongside it (see :class:`repro.gpusim.rng.DeviceRNG`).
Sharding therefore splits the grid into contiguous block ranges, runs each
range in a worker process on a :class:`VectorizedBackend` whose RNG is
offset by the shard's first global row, and merges.

**Determinism contract** (asserted in ``tests/test_pool.py``, explained in
docs/parallel.md): for a fixed seed the merged best energy, best sequence
and history are bit-identical to the unsharded ``vectorized``/``gpusim``
run, for any worker count.  The merge reproduces the elitist reduction's
tie-breaks exactly: the reduction only overwrites on a *strict* energy
improvement and breaks within-round ties by lowest thread index, so the
global winner is the shard whose best energy is lowest, reached in the
earliest round, from the lowest shard index (shards are ascending block
ranges, so the lowest tied shard contains the lowest tied global thread).

Strategies whose kernels *do* couple chains opt out via
``EnsembleStrategy.shardable`` (the sync-SA broadcast and the ring/coupled
DPSO couplings read across chains); they fall back to one shard — the
whole ensemble in a single worker process, still trajectory-identical,
just without intra-solve parallelism.
"""

from __future__ import annotations

import dataclasses
import time
import warnings
from typing import TYPE_CHECKING

import numpy as np

from repro.core.engine.adapters import adapter_for
from repro.core.engine.backends import MultiprocessBackend
from repro.initialization import initial_population
from repro.pool.executor import ProcessPool, default_workers
from repro.pool.worker import ShardResult, run_shard
from repro.problems.validation import validate_schedule

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine.driver import EnsembleStrategy
    from repro.core.results import SolveResult
    from repro.problems.cdd import CDDInstance
    from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["ShardPlan", "plan_shards", "run_sharded_ensemble"]


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """Contiguous block ranges: shard ``i`` runs ``blocks[i]`` blocks
    starting at global row ``row_offsets[i]``."""

    row_offsets: tuple[int, ...]
    blocks: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.blocks)


def plan_shards(
    grid_size: int,
    block_size: int,
    workers: int | None,
    shardable: bool = True,
    algorithm: str = "",
) -> ShardPlan:
    """Split ``grid_size`` blocks into at most ``workers`` contiguous shards.

    Sharding granularity is whole blocks (a block is the natural CUDA unit
    and keeps shard populations multiples of ``block_size``).  An
    unshardable strategy degrades to one shard with a ``RuntimeWarning``
    when the caller explicitly asked for more.
    """
    if not shardable:
        if workers is not None and workers > 1:
            warnings.warn(
                f"{algorithm or 'this strategy'} couples chains across the "
                "ensemble and cannot be sharded; running the whole ensemble "
                "in one worker process",
                RuntimeWarning,
                stacklevel=3,
            )
        nshards = 1
    else:
        nshards = min(
            workers if workers is not None else default_workers(cap=grid_size),
            grid_size,
        )
    base, extra = divmod(grid_size, nshards)
    blocks = tuple(base + (1 if i < extra else 0) for i in range(nshards))
    offsets, acc = [], 0
    for b in blocks:
        offsets.append(acc * block_size)
        acc += b
    return ShardPlan(row_offsets=tuple(offsets), blocks=blocks)


def run_sharded_ensemble(
    instance: "CDDInstance | UCDDCPInstance",
    strategy: "EnsembleStrategy",
    backend: MultiprocessBackend,
) -> "SolveResult":
    """Run one ensemble solve sharded across worker processes.

    The parent owns everything that is host-global in the unsharded run:
    the host RNG (``prepare`` + the full initial population, including the
    global-row-indexed ``prepare_population`` hook), the shard merge, and
    ``finalize`` on the merged best.  Workers own the generation loop for
    their slice (:func:`repro.pool.worker.run_shard`).
    """
    from repro.core.engine.driver import assemble_result

    config = strategy.config
    adapter = adapter_for(instance)
    pop = config.population
    host_rng = np.random.default_rng(config.seed)
    strategy.prepare(adapter, host_rng)

    start_wall = time.perf_counter()
    plan = plan_shards(
        config.grid_size,
        config.block_size,
        backend.workers,
        shardable=strategy.shardable,
        algorithm=strategy.algorithm,
    )

    init_seqs = initial_population(
        instance, pop, host_rng, config.init
    ).astype(np.int32)
    init_seqs = strategy.prepare_population(init_seqs)

    tasks = []
    for lo, nblocks in zip(plan.row_offsets, plan.blocks):
        rows = init_seqs[lo : lo + nblocks * config.block_size]
        tasks.append(
            (
                run_shard,
                (instance, type(strategy), config, lo, nblocks, rows,
                 backend.fault_plan),
            )
        )

    shards: list[ShardResult | None] = [None] * len(tasks)
    pool = ProcessPool(
        workers=len(tasks),
        context=backend.context,
        task_timeout=backend.task_timeout,
        task_retries=backend.task_retries,
        fault_plan=backend.pool_faults,
    )
    labels = [f"{instance.name}:shard{i}" for i in range(len(tasks))]
    for index, status, value in pool.imap_unordered(tasks, labels=labels):
        if status == "interrupt":
            raise KeyboardInterrupt
        if status == "error":
            raise value
        shards[index] = value
    results = [s for s in shards if s is not None]
    assert len(results) == len(tasks)

    # Merge, reproducing the elitist reduction's tie-breaks (strict
    # improvement, earliest round, lowest global thread index).
    def first_round(shard: ShardResult) -> int:
        return int(np.nonzero(shard.ext_history == shard.best_energy)[0][0])

    winner = min(
        range(len(results)),
        key=lambda i: (results[i].best_energy, first_round(results[i]), i),
    )
    merged_ext = results[0].ext_history.copy()
    for shard in results[1:]:
        np.minimum(merged_ext, shard.ext_history, out=merged_ext)
    history = merged_ext[1:] if config.record_history else None

    final_seq, extra_evals = strategy.finalize(results[winner].best_seq)
    wall = time.perf_counter() - start_wall

    params = strategy.params()
    params["device_spec"] = config.resolve_device_spec().name
    params["device_profile"] = (
        None if config.device_spec is not None else config.device_profile
    )
    params["backend"] = backend.name
    params["workers"] = len(results)
    result = assemble_result(
        adapter,
        final_seq,
        evaluations=(config.iterations + 1) * pop + extra_evals,
        wall_time_s=wall,
        history=history,
        params=params,
    )
    # Defense in depth: shard payloads already passed the transport digest;
    # re-validate the merged solution with the independent checker so a
    # corrupted-but-well-formed payload cannot become a silently wrong
    # answer (a violation raises ScheduleError here, at the merge).
    validate_schedule(instance, result.schedule)
    return result
