"""Module-level worker entry points (spawn-safe, picklable payloads).

Everything a worker process needs travels as picklable values: the problem
instance (a frozen dataclass of arrays), the strategy *class*, its config
dataclass, and plain integers.  The worker rebuilds adapter/strategy/kernels
locally, so no live kernel closures or backend state ever cross the process
boundary.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.core.engine.adapters import adapter_for
from repro.core.engine.backends import VectorizedBackend
from repro.gpusim.launch import Dim3, LaunchConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine.driver import EnsembleStrategy
    from repro.problems.cdd import CDDInstance
    from repro.problems.ucddcp import UCDDCPInstance
    from repro.resilience.faults import FaultPlan

__all__ = ["ShardResult", "run_shard", "solve_one", "solve_chunk"]


@dataclasses.dataclass
class ShardResult:
    """What one ensemble shard reports back for the merge.

    ``ext_history`` has ``iterations + 1`` entries: entry 0 is the shard's
    running best right after ``initialize`` (the initial population's
    elitist minimum), entry ``k`` the running best after generation
    ``k - 1``.  The extra leading entry lets the merge distinguish a best
    reached by the initial population from one reached in generation 0 —
    both would show the same value at history index 0.
    """

    best_seq: np.ndarray
    best_energy: float
    ext_history: np.ndarray


def run_shard(
    instance: "CDDInstance | UCDDCPInstance",
    strategy_cls: "type[EnsembleStrategy]",
    config: Any,
    row_offset: int,
    nblocks: int,
    init_rows: np.ndarray,
    fault_plan: "FaultPlan | None" = None,
) -> ShardResult:
    """Run blocks ``[row_offset/block_size, ...)`` of the global ensemble.

    Reproduces :func:`repro.core.engine.driver.run_ensemble`'s loop for one
    contiguous slice of chains on a :class:`VectorizedBackend` whose RNG is
    offset by ``row_offset`` — so every chain draws exactly the stream it
    would have drawn in the unsharded run.  The parent has already applied
    ``prepare_population`` (it indexes by *global* row), so ``init_rows``
    is uploaded as-is; ``finalize`` is also the parent's job (it runs on
    the merged best only).
    """
    adapter = adapter_for(instance)
    shard_config = dataclasses.replace(config, grid_size=nblocks)
    strategy = strategy_cls(shard_config)
    # Same seed, same consumption order as the unsharded run: ``prepare``
    # draws (e.g. the T0 estimate) before the population would be drawn, so
    # replaying it here reproduces the exact host-derived state.
    strategy.prepare(adapter, np.random.default_rng(config.seed))

    backend = VectorizedBackend(fault_plan=fault_plan, thread_offset=row_offset)
    backend.open(
        adapter, seed=config.seed, device_spec=config.resolve_device_spec()
    )
    cfg = LaunchConfig(
        grid=Dim3(x=nblocks), block=Dim3(x=config.block_size)
    )
    strategy.allocate(backend, adapter, cfg)
    backend.upload(strategy.seqs, np.ascontiguousarray(init_rows))
    strategy.initialize(backend, cfg)

    ext_history = np.empty(config.iterations + 1)
    ext_history[0] = strategy.best_energy.array[0]
    for it in range(config.iterations):
        strategy.generation(backend, cfg, it)
        backend.synchronize()
        ext_history[it + 1] = strategy.best_energy.array[0]

    backend.synchronize()
    best_seq = backend.download(strategy.best_seq).astype(np.intp)
    best_energy = float(backend.download(strategy.best_energy)[0])
    return ShardResult(best_seq, best_energy, ext_history)


def solve_one(
    instance: "CDDInstance | UCDDCPInstance", method: str, kwargs: dict
) -> Any:
    """One full façade solve — the ``solve_many`` task body."""
    from repro.core.solver import solver_for

    return solver_for(instance).solve(method, **kwargs)


def solve_chunk(
    instances: "list", method: str, kwargs: dict
) -> list[tuple[str, Any]]:
    """Several façade solves in one worker process (chunked dispatch).

    Small instances solve in milliseconds, so forking a process and
    pickling an instance per solve dominates the batch wall time;
    :func:`repro.pool.batch.solve_many` with ``chunk_size`` packs
    consecutive small instances into one task to amortize that overhead.
    Error isolation stays per instance: each solve runs under its own
    ``try``, returning ``("ok", result)`` or ``("error", exception)`` in
    input order — one bad instance never takes down its chunk-mates.
    Determinism is untouched: each solve seeds from its config exactly
    as the unchunked path does.
    """
    out: list[tuple[str, Any]] = []
    for instance in instances:
        try:
            out.append(("ok", solve_one(instance, method, dict(kwargs))))
        except Exception as exc:  # noqa: BLE001 - errors travel as values
            out.append(("error", exc))
    return out
