"""Problem layer: instance definitions, objectives and schedule validation.

This subpackage defines the two NP-hard single-machine scheduling problems
studied in the paper:

* :class:`~repro.problems.cdd.CDDInstance` -- the Common Due-Date problem
  (weighted earliness/tardiness around a common due date).
* :class:`~repro.problems.ucddcp.UCDDCPInstance` -- the Unrestricted Common
  Due-Date problem with Controllable Processing Times (adds per-job
  compression with a per-unit compression penalty).

Schedules (a job sequence plus completion times, and compressions for the
controllable variant) are represented by
:class:`~repro.problems.schedule.Schedule` and can be checked for structural
feasibility with :mod:`repro.problems.validation`.
"""

from repro.problems.cdd import CDDInstance
from repro.problems.gantt import render_gantt, render_schedule
from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance
from repro.problems.validation import (
    ScheduleError,
    check_permutation,
    validate_schedule,
)

__all__ = [
    "CDDInstance",
    "UCDDCPInstance",
    "Schedule",
    "ScheduleError",
    "check_permutation",
    "validate_schedule",
    "render_gantt",
    "render_schedule",
]
