"""The Common Due-Date (CDD) scheduling problem.

``n`` jobs with processing times ``P_i`` must be sequenced on a single
machine against a common due date ``d``.  A job completing at ``C_i`` incurs
an earliness ``E_i = max(0, d - C_i)`` penalized at ``alpha_i`` per unit, or a
tardiness ``T_i = max(0, C_i - d)`` penalized at ``beta_i`` per unit.  The
objective is ``min sum_i (alpha_i * E_i + beta_i * T_i)`` (Eq. (1) of the
paper).

The OR-library (Biskup--Feldmann) benchmark instances are *restrictive*:
``d = floor(h * sum(P))`` with ``h < 1``, so the due date may fall inside the
schedule and the left shift of jobs is limited by time zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["CDDInstance"]


def _as_1d_float(name: str, values: Any) -> np.ndarray:
    """Coerce ``values`` to a contiguous 1-D float64 array, validating it."""
    arr = np.ascontiguousarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must contain at least one job")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    return arr


@dataclass(frozen=True, eq=False)
class CDDInstance:
    """An immutable Common Due-Date problem instance.

    Parameters
    ----------
    processing:
        Processing times ``P_i > 0``, one per job, in *job-index* order (the
        metaheuristics permute indices into this array).
    alpha:
        Earliness penalties per unit time, ``alpha_i >= 0``.
    beta:
        Tardiness penalties per unit time, ``beta_i >= 0``.
    due_date:
        The common due date ``d >= 0``.
    name:
        Optional human-readable identifier (e.g. ``"biskup_n50_h0.4_k3"``).
    """

    processing: np.ndarray
    alpha: np.ndarray
    beta: np.ndarray
    due_date: float
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        p = _as_1d_float("processing", self.processing)
        a = _as_1d_float("alpha", self.alpha)
        b = _as_1d_float("beta", self.beta)
        if not (p.size == a.size == b.size):
            raise ValueError(
                "processing, alpha and beta must have equal length; got "
                f"{p.size}, {a.size}, {b.size}"
            )
        if np.any(p <= 0):
            raise ValueError("processing times must be strictly positive")
        if np.any(a < 0) or np.any(b < 0):
            raise ValueError("earliness/tardiness penalties must be non-negative")
        d = float(self.due_date)
        if not np.isfinite(d) or d < 0:
            raise ValueError(f"due_date must be a finite non-negative number, got {d}")
        # Freeze the canonical arrays (dataclass is frozen; bypass with
        # object.__setattr__ as usual for frozen dataclass normalization).
        p.setflags(write=False)
        a.setflags(write=False)
        b.setflags(write=False)
        object.__setattr__(self, "processing", p)
        object.__setattr__(self, "alpha", a)
        object.__setattr__(self, "beta", b)
        object.__setattr__(self, "due_date", d)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CDDInstance) or type(self) is not type(other):
            return NotImplemented
        return (
            self.due_date == other.due_date
            and np.array_equal(self.processing, other.processing)
            and np.array_equal(self.alpha, other.alpha)
            and np.array_equal(self.beta, other.beta)
        )

    def __hash__(self) -> int:
        return hash(
            (self.due_date, self.processing.tobytes(), self.alpha.tobytes(),
             self.beta.tobytes())
        )

    # ------------------------------------------------------------------
    # Basic descriptors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of jobs."""
        return int(self.processing.size)

    @property
    def total_processing(self) -> float:
        """Sum of all processing times ``sum_i P_i``."""
        return float(self.processing.sum())

    @property
    def restriction_factor(self) -> float:
        """``h = d / sum(P)``; ``h >= 1`` means the instance is unrestricted."""
        return self.due_date / self.total_processing

    @property
    def is_restrictive(self) -> bool:
        """Whether the due date is smaller than the total processing time."""
        return self.due_date < self.total_processing

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def earliness(self, completion: np.ndarray) -> np.ndarray:
        """``E_i = max(0, d - C_i)`` for completion times in job-index order."""
        c = np.asarray(completion, dtype=np.float64)
        return np.maximum(0.0, self.due_date - c)

    def tardiness(self, completion: np.ndarray) -> np.ndarray:
        """``T_i = max(0, C_i - d)`` for completion times in job-index order."""
        c = np.asarray(completion, dtype=np.float64)
        return np.maximum(0.0, c - self.due_date)

    def objective(self, completion: np.ndarray) -> float:
        """Evaluate Eq. (1) for completion times given in *job-index* order.

        ``completion[i]`` is the completion time of job ``i`` (not of the job
        at sequence position ``i``).
        """
        c = np.asarray(completion, dtype=np.float64)
        if c.shape != self.processing.shape:
            raise ValueError(
                f"completion has shape {c.shape}, expected {self.processing.shape}"
            )
        e = np.maximum(0.0, self.due_date - c)
        t = np.maximum(0.0, c - self.due_date)
        return float(self.alpha @ e + self.beta @ t)

    def objective_in_sequence(
        self, sequence: np.ndarray, completion_in_seq: np.ndarray
    ) -> float:
        """Evaluate Eq. (1) with completion times given in *sequence* order.

        ``completion_in_seq[k]`` is the completion time of the ``k``-th
        processed job, which is job ``sequence[k]``.
        """
        seq = np.asarray(sequence, dtype=np.intp)
        c = np.asarray(completion_in_seq, dtype=np.float64)
        e = np.maximum(0.0, self.due_date - c)
        t = np.maximum(0.0, c - self.due_date)
        return float(self.alpha[seq] @ e + self.beta[seq] @ t)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-Python representation suitable for JSON round-tripping."""
        return {
            "kind": "cdd",
            "name": self.name,
            "processing": self.processing.tolist(),
            "alpha": self.alpha.tolist(),
            "beta": self.beta.tolist(),
            "due_date": self.due_date,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CDDInstance":
        """Inverse of :meth:`to_dict`."""
        if data.get("kind", "cdd") != "cdd":
            raise ValueError(f"not a CDD instance record: kind={data.get('kind')!r}")
        return cls(
            processing=np.asarray(data["processing"], dtype=np.float64),
            alpha=np.asarray(data["alpha"], dtype=np.float64),
            beta=np.asarray(data["beta"], dtype=np.float64),
            due_date=float(data["due_date"]),
            name=str(data.get("name", "")),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"CDDInstance(n={self.n}, d={self.due_date:g}, "
            f"h={self.restriction_factor:.3f}{tag})"
        )
