"""Text Gantt rendering of single-machine schedules.

Renders a schedule as a single machine row with the due date marked --
the form of the paper's Figures 1-6.  Used by the examples and handy for
debugging: earliness/tardiness is immediately visible as the position of
each job relative to the ``|`` marker.
"""

from __future__ import annotations

import numpy as np

from repro.problems.cdd import CDDInstance
from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["render_gantt", "render_schedule"]


def render_gantt(
    completion: np.ndarray,
    processing: np.ndarray,
    due_date: float,
    *,
    width: int = 78,
    labels: list[str] | None = None,
) -> str:
    """Render one machine row.

    Parameters
    ----------
    completion, processing:
        Sequence-ordered completion times and (effective) processing times.
    due_date:
        Position of the ``|`` marker.
    width:
        Target character width; the time axis is scaled to fit.
    labels:
        One short label per job (defaults to 1-based position numbers,
        single characters cycling at 10).
    """
    completion = np.asarray(completion, dtype=float)
    processing = np.asarray(processing, dtype=float)
    if completion.shape != processing.shape or completion.ndim != 1:
        raise ValueError("completion and processing must be 1-D, equal length")
    n = completion.size
    if labels is None:
        labels = [str((k + 1) % 10) for k in range(n)]
    if len(labels) != n:
        raise ValueError("need one label per job")

    end = max(float(completion.max(initial=0.0)), due_date) or 1.0
    scale = (width - 1) / end
    row = [" "] * width
    for k in range(n):
        start = int(round((completion[k] - processing[k]) * scale))
        stop = max(int(round(completion[k] * scale)), start + 1)
        for x in range(start, min(stop, width)):
            row[x] = labels[k][0]
    marker = min(int(round(due_date * scale)), width - 1)
    row[marker] = "|"
    axis = f"0{' ' * (width - len(f'{end:g}') - 1)}{end:g}"
    return "".join(row) + "\n" + axis


def render_schedule(
    instance: CDDInstance | UCDDCPInstance,
    schedule: Schedule,
    *,
    width: int = 78,
) -> str:
    """Render a :class:`Schedule` with a summary line."""
    p_seq = instance.processing[schedule.sequence]
    p_eff = schedule.effective_processing(p_seq)
    gantt = render_gantt(
        schedule.completion, p_eff, instance.due_date, width=width
    )
    d = instance.due_date
    early = int((schedule.completion < d).sum())
    tardy = int((schedule.completion > d).sum())
    on_time = schedule.n - early - tardy
    summary = (
        f"objective {schedule.objective:g} | {early} early, "
        f"{on_time} on time, {tardy} tardy | d = {d:g}"
    )
    return gantt + "\n" + summary
