"""Schedule representation shared by both problems.

A :class:`Schedule` bundles a job sequence (a permutation of ``0..n-1``),
the completion times of the jobs *in sequence order*, the per-job processing
reductions (all zeros for plain CDD) and the objective value.  Helper
accessors convert between sequence order and job-index order and expose start
times and idle gaps, which the validation layer and the tests use to check
the structural optimality properties (no machine idle time, due-date
position, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Schedule"]


@dataclass(frozen=True)
class Schedule:
    """A fully specified single-machine schedule.

    Attributes
    ----------
    sequence:
        Permutation of job indices; ``sequence[k]`` is the job processed in
        position ``k``.
    completion:
        Completion times in sequence order: ``completion[k]`` is when the
        ``k``-th processed job finishes.
    reduction:
        Processing-time reductions ``X`` in sequence order (zeros for CDD).
    objective:
        Total weighted penalty of the schedule.
    """

    sequence: np.ndarray
    completion: np.ndarray
    reduction: np.ndarray
    objective: float
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        seq = np.ascontiguousarray(self.sequence, dtype=np.intp)
        comp = np.ascontiguousarray(self.completion, dtype=np.float64)
        red = np.ascontiguousarray(self.reduction, dtype=np.float64)
        if seq.ndim != 1 or comp.shape != seq.shape or red.shape != seq.shape:
            raise ValueError(
                "sequence, completion and reduction must be 1-D of equal length"
            )
        for arr in (seq, comp, red):
            arr.setflags(write=False)
        object.__setattr__(self, "sequence", seq)
        object.__setattr__(self, "completion", comp)
        object.__setattr__(self, "reduction", red)
        object.__setattr__(self, "objective", float(self.objective))

    @property
    def n(self) -> int:
        """Number of jobs."""
        return int(self.sequence.size)

    # ------------------------------------------------------------------
    # Order conversions
    # ------------------------------------------------------------------
    def completion_by_job(self) -> np.ndarray:
        """Completion times indexed by *job* (inverse of sequence order)."""
        out = np.empty(self.n, dtype=np.float64)
        out[self.sequence] = self.completion
        return out

    def reduction_by_job(self) -> np.ndarray:
        """Reductions ``X_i`` indexed by *job*."""
        out = np.empty(self.n, dtype=np.float64)
        out[self.sequence] = self.reduction
        return out

    # ------------------------------------------------------------------
    # Derived timing quantities (sequence order)
    # ------------------------------------------------------------------
    def effective_processing(self, nominal_in_seq: np.ndarray) -> np.ndarray:
        """Actual processing times ``p' = P - X`` in sequence order."""
        return np.asarray(nominal_in_seq, dtype=np.float64) - self.reduction

    def start_times(self, nominal_in_seq: np.ndarray) -> np.ndarray:
        """Start times in sequence order, from completions and processing."""
        return self.completion - self.effective_processing(nominal_in_seq)

    def idle_gaps(self, nominal_in_seq: np.ndarray) -> np.ndarray:
        """Idle time preceding each job (first entry: gap after time zero)."""
        starts = self.start_times(nominal_in_seq)
        prev_completion = np.concatenate(([0.0], self.completion[:-1]))
        return starts - prev_completion

    def describe(self) -> str:
        """Short multi-line human-readable summary."""
        lines = [
            f"Schedule over {self.n} jobs, objective {self.objective:g}",
            f"  sequence:   {self.sequence.tolist()}",
            f"  completion: {self.completion.tolist()}",
        ]
        if np.any(self.reduction != 0):
            lines.append(f"  reduction:  {self.reduction.tolist()}")
        return "\n".join(lines)
