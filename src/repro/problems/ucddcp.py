"""The Unrestricted Common Due-Date problem with Controllable Processing Times.

The UCDDCP extends the CDD: the machine may run a job faster than its nominal
processing time ``P_i``, down to a minimum ``M_i``, at a *compression penalty*
``gamma_i`` per compressed time unit.  With ``X_i = P_i - p_i'`` the chosen
reduction, the objective is

    min  sum_i (alpha_i * E_i + beta_i * T_i + gamma_i * X_i)      (Eq. (2))

subject to ``0 <= X_i <= P_i - M_i``.  The *unrestricted* qualifier means the
common due date satisfies ``d >= sum_i P_i``, so the whole (uncompressed)
schedule fits before the due date.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.problems.cdd import CDDInstance, _as_1d_float

__all__ = ["UCDDCPInstance"]


@dataclass(frozen=True, eq=False)
class UCDDCPInstance:
    """An immutable UCDDCP instance.

    Parameters
    ----------
    processing:
        Nominal processing times ``P_i > 0``.
    min_processing:
        Minimum (fully compressed) processing times ``0 < M_i <= P_i``.
    alpha, beta:
        Earliness/tardiness penalties per unit time (as in CDD).
    gamma:
        Compression penalties per unit of reduction, ``gamma_i >= 0``.
    due_date:
        Common due date; must satisfy ``d >= sum(P)`` (unrestricted case).
    name:
        Optional identifier.
    """

    processing: np.ndarray
    min_processing: np.ndarray
    alpha: np.ndarray
    beta: np.ndarray
    gamma: np.ndarray
    due_date: float
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        p = _as_1d_float("processing", self.processing)
        m = _as_1d_float("min_processing", self.min_processing)
        a = _as_1d_float("alpha", self.alpha)
        b = _as_1d_float("beta", self.beta)
        g = _as_1d_float("gamma", self.gamma)
        sizes = {p.size, m.size, a.size, b.size, g.size}
        if len(sizes) != 1:
            raise ValueError(
                "all parameter vectors must have equal length; got "
                f"P:{p.size} M:{m.size} alpha:{a.size} beta:{b.size} gamma:{g.size}"
            )
        if np.any(p <= 0):
            raise ValueError("processing times must be strictly positive")
        if np.any(m <= 0):
            raise ValueError("minimum processing times must be strictly positive")
        if np.any(m > p):
            raise ValueError("min_processing must not exceed processing")
        if np.any(a < 0) or np.any(b < 0) or np.any(g < 0):
            raise ValueError("penalties must be non-negative")
        d = float(self.due_date)
        if not np.isfinite(d):
            raise ValueError("due_date must be finite")
        if d < float(p.sum()):
            raise ValueError(
                "UCDDCP requires an unrestricted due date d >= sum(P); "
                f"got d={d} < sum(P)={p.sum()}"
            )
        for arr in (p, m, a, b, g):
            arr.setflags(write=False)
        object.__setattr__(self, "processing", p)
        object.__setattr__(self, "min_processing", m)
        object.__setattr__(self, "alpha", a)
        object.__setattr__(self, "beta", b)
        object.__setattr__(self, "gamma", g)
        object.__setattr__(self, "due_date", d)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UCDDCPInstance):
            return NotImplemented
        return (
            self.due_date == other.due_date
            and np.array_equal(self.processing, other.processing)
            and np.array_equal(self.min_processing, other.min_processing)
            and np.array_equal(self.alpha, other.alpha)
            and np.array_equal(self.beta, other.beta)
            and np.array_equal(self.gamma, other.gamma)
        )

    def __hash__(self) -> int:
        return hash(
            (self.due_date, self.processing.tobytes(),
             self.min_processing.tobytes(), self.alpha.tobytes(),
             self.beta.tobytes(), self.gamma.tobytes())
        )

    # ------------------------------------------------------------------
    # Basic descriptors
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of jobs."""
        return int(self.processing.size)

    @property
    def total_processing(self) -> float:
        """Sum of nominal processing times."""
        return float(self.processing.sum())

    @property
    def max_reduction(self) -> np.ndarray:
        """Upper bounds ``P_i - M_i`` on the per-job reductions ``X_i``."""
        return self.processing - self.min_processing

    # ------------------------------------------------------------------
    # Objective
    # ------------------------------------------------------------------
    def objective(self, completion: np.ndarray, reduction: np.ndarray) -> float:
        """Evaluate Eq. (2) with ``completion``/``reduction`` in job-index order."""
        c = np.asarray(completion, dtype=np.float64)
        x = np.asarray(reduction, dtype=np.float64)
        if c.shape != self.processing.shape or x.shape != self.processing.shape:
            raise ValueError("completion/reduction shapes must match the instance")
        if np.any(x < -1e-9) or np.any(x > self.max_reduction + 1e-9):
            raise ValueError("reduction X violates 0 <= X_i <= P_i - M_i")
        e = np.maximum(0.0, self.due_date - c)
        t = np.maximum(0.0, c - self.due_date)
        return float(self.alpha @ e + self.beta @ t + self.gamma @ x)

    def objective_in_sequence(
        self,
        sequence: np.ndarray,
        completion_in_seq: np.ndarray,
        reduction_in_seq: np.ndarray,
    ) -> float:
        """Evaluate Eq. (2) with vectors given in *sequence* order."""
        seq = np.asarray(sequence, dtype=np.intp)
        c = np.asarray(completion_in_seq, dtype=np.float64)
        x = np.asarray(reduction_in_seq, dtype=np.float64)
        e = np.maximum(0.0, self.due_date - c)
        t = np.maximum(0.0, c - self.due_date)
        return float(
            self.alpha[seq] @ e + self.beta[seq] @ t + self.gamma[seq] @ x
        )

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def relax_to_cdd(self) -> CDDInstance:
        """The CDD obtained by forbidding compression (``X_i = 0``).

        The UCDDCP sequence optimizer first solves this relaxation (the
        optimal due-date *position* is shared between the two problems --
        Property 1 of the paper).
        """
        return CDDInstance(
            processing=self.processing,
            alpha=self.alpha,
            beta=self.beta,
            due_date=self.due_date,
            name=f"{self.name}:cdd" if self.name else "",
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-Python representation suitable for JSON round-tripping."""
        return {
            "kind": "ucddcp",
            "name": self.name,
            "processing": self.processing.tolist(),
            "min_processing": self.min_processing.tolist(),
            "alpha": self.alpha.tolist(),
            "beta": self.beta.tolist(),
            "gamma": self.gamma.tolist(),
            "due_date": self.due_date,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UCDDCPInstance":
        """Inverse of :meth:`to_dict`."""
        if data.get("kind") != "ucddcp":
            raise ValueError(
                f"not a UCDDCP instance record: kind={data.get('kind')!r}"
            )
        return cls(
            processing=np.asarray(data["processing"], dtype=np.float64),
            min_processing=np.asarray(data["min_processing"], dtype=np.float64),
            alpha=np.asarray(data["alpha"], dtype=np.float64),
            beta=np.asarray(data["beta"], dtype=np.float64),
            gamma=np.asarray(data["gamma"], dtype=np.float64),
            due_date=float(data["due_date"]),
            name=str(data.get("name", "")),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tag = f" {self.name!r}" if self.name else ""
        return f"UCDDCPInstance(n={self.n}, d={self.due_date:g}{tag})"
