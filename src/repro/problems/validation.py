"""Structural feasibility checks for schedules.

These checks encode the constraints of the 0-1 integer program in Section III
of the paper (minus the sequencing binaries, which are implied by the job
order of the schedule):

* the sequence is a permutation of ``0..n-1``;
* jobs do not overlap: ``C_[k] >= C_[k-1] + p'_[k]`` in sequence order;
* the first job does not start before time zero;
* reductions respect ``0 <= X_i <= P_i - M_i``;
* the reported objective matches a recomputation from the timing data.

They are used pervasively by the unit/property tests and may be enabled in
user code as a debugging aid.
"""

from __future__ import annotations

import numpy as np

from repro.problems.cdd import CDDInstance
from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["ScheduleError", "check_permutation", "validate_schedule"]

_TOL = 1e-6


class ScheduleError(ValueError):
    """Raised when a schedule violates a structural constraint."""


def check_permutation(sequence: np.ndarray, n: int | None = None) -> None:
    """Raise :class:`ScheduleError` unless ``sequence`` permutes ``0..n-1``."""
    seq = np.asarray(sequence)
    if seq.ndim != 1:
        raise ScheduleError(f"sequence must be 1-D, got shape {seq.shape}")
    size = seq.size if n is None else n
    if seq.size != size:
        raise ScheduleError(f"sequence has length {seq.size}, expected {size}")
    if not np.issubdtype(seq.dtype, np.integer):
        raise ScheduleError(f"sequence must be integral, got dtype {seq.dtype}")
    expected = np.arange(size)
    if not np.array_equal(np.sort(seq), expected):
        raise ScheduleError("sequence is not a permutation of 0..n-1")


def validate_schedule(
    instance: CDDInstance | UCDDCPInstance,
    schedule: Schedule,
    *,
    require_no_idle: bool = False,
    tol: float = _TOL,
) -> None:
    """Validate ``schedule`` against ``instance``; raise on any violation.

    Parameters
    ----------
    require_no_idle:
        Additionally require zero machine idle time between consecutive jobs
        (a property of *optimal* CDD/UCDDCP schedules -- Cheng & Kahlbacher;
        not a feasibility requirement).
    tol:
        Numerical tolerance for the floating-point comparisons.
    """
    n = instance.n
    check_permutation(schedule.sequence, n)

    p_seq = instance.processing[schedule.sequence]
    x = schedule.reduction
    if np.any(x < -tol):
        raise ScheduleError("negative processing-time reduction")
    if isinstance(instance, UCDDCPInstance):
        max_red = instance.max_reduction[schedule.sequence]
        if np.any(x > max_red + tol):
            raise ScheduleError("reduction exceeds P_i - M_i")
    else:
        if np.any(x > tol):
            raise ScheduleError("CDD schedules must not compress processing times")

    starts = schedule.start_times(p_seq)
    if starts[0] < -tol:
        raise ScheduleError(f"first job starts before time zero ({starts[0]})")
    gaps = schedule.idle_gaps(p_seq)
    if np.any(gaps[1:] < -tol):
        raise ScheduleError("jobs overlap (negative idle gap)")
    if require_no_idle and np.any(np.abs(gaps[1:]) > tol):
        raise ScheduleError("machine idle time between jobs")

    if isinstance(instance, UCDDCPInstance):
        recomputed = instance.objective_in_sequence(
            schedule.sequence, schedule.completion, schedule.reduction
        )
    else:
        recomputed = instance.objective_in_sequence(
            schedule.sequence, schedule.completion
        )
    if not np.isclose(recomputed, schedule.objective, rtol=1e-9, atol=tol):
        raise ScheduleError(
            f"objective mismatch: stored {schedule.objective}, "
            f"recomputed {recomputed}"
        )
