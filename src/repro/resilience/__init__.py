"""Fault-tolerant experiment execution.

The missing layer between "research script" and "service": classified
errors, bounded retries, durable partial progress and graceful
degradation.  See ``docs/resilience.md`` for the work-unit model, the
transient/fatal taxonomy, the checkpoint file format and resume semantics.
"""

from repro.resilience.atomic import atomic_write_text, durable_append_text
from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    record_crc,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_OPS,
    FaultPlan,
    FaultSpec,
    parse_fault,
)
from repro.resilience.runner import (
    TRANSIENT_ERRORS,
    ResilientRunner,
    RetryPolicy,
    RunReport,
    UnitOutcome,
    WorkUnit,
    classify_error,
)

__all__ = [
    "atomic_write_text",
    "durable_append_text",
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "record_crc",
    "FAULT_KINDS",
    "FAULT_OPS",
    "FaultPlan",
    "FaultSpec",
    "parse_fault",
    "TRANSIENT_ERRORS",
    "ResilientRunner",
    "RetryPolicy",
    "RunReport",
    "UnitOutcome",
    "WorkUnit",
    "classify_error",
]
