"""Crash-safe file writes: temp file + fsync + atomic rename.

A plain ``path.write_text`` truncates the destination before writing, so a
crash (or an OOM kill) mid-write leaves a corrupted, half-written file --
which for the best-known store or a checkpoint means losing *all* prior
work, not just the interrupted record.  :func:`atomic_write_text` writes
the full payload to a temporary file in the same directory, flushes it to
disk, and atomically renames it over the destination, so readers only ever
observe either the old complete content or the new complete content.

:func:`durable_append_text` is the append-side sibling for write-ahead
logs (the service's job journal, quarantine sidecars): appends cannot go
through rename without rewriting the whole file, so durability comes from
``flush`` + ``fsync`` after every append instead.  A crash mid-append can
leave at most one torn tail line, which is exactly the corruption shape
the CRC-guarded JSONL readers quarantine; everything fsync'd before the
crash is complete and intact.  These two helpers are the *only* sanctioned
ways for ``repro.service`` / ``repro.resilience`` modules to persist state
(lint rule RPL010 flags bare writes).
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path

__all__ = [
    "append_text", "atomic_write_text", "durable_append_text",
    "fsync_path",
]


def _fsync_dir(parent: Path) -> None:
    """Best-effort fsync of a directory entry (rename/create durability)."""
    with contextlib.suppress(OSError):
        dir_fd = os.open(parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


def append_text(path: Path | str, text: str) -> int:
    """Append ``text`` to ``path`` (flushed, **not** fsync'd); returns
    the start byte offset of the appended text.

    This is the serialization half of :func:`durable_append_text`,
    split out for writers that must order appends under a lock but keep
    the slow fsync *outside* the critical section (lint rule RPL013):
    the caller appends under its lock, releases, then calls
    :func:`fsync_path` before acknowledging — fsync flushes the whole
    file, so a later append's sync also covers every earlier one.  A
    record is NOT crash-durable until ``fsync_path`` returns.
    """
    path = Path(path)
    created = not path.exists()
    if created:
        path.parent.mkdir(parents=True, exist_ok=True)
    # This *is* the shared durable-append primitive RPL010 points at;
    # callers pair it with fsync_path before acknowledging the record.
    with open(path, "ab") as handle:  # repro-lint: disable=RPL010 -- serialization half of the sanctioned durable-append primitive; fsync_path pairs with it before any ack
        # O_APPEND leaves the nominal position at 0 on some platforms;
        # seek to the end so the returned offset is the true record start.
        handle.seek(0, os.SEEK_END)
        offset = handle.tell()
        handle.write(text.encode("utf-8"))
        handle.flush()
    if created:
        _fsync_dir(path.parent)
    return offset


def fsync_path(path: Path | str) -> None:
    """Flush ``path``'s written data to stable storage.

    Opened read-only: fsync is a property of the *file*, not the
    writing handle, so this flushes every append that preceded it —
    which is what lets concurrent appenders share one sync point.
    """
    fd = os.open(Path(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def durable_append_text(path: Path | str, text: str) -> int:
    """Durably append ``text`` to ``path``; returns the start byte offset.

    The bytes are flushed and fsync'd before returning, so once this
    function returns the appended record survives a crash or power loss
    (a crash *during* the append can leave one torn tail line — readers
    must tolerate and quarantine it).  When the call creates the file,
    the directory entry is fsync'd too.  The returned offset is where
    the appended text begins, which lets journal writers index records
    for seek-based read-through without re-scanning the file.
    """
    offset = append_text(path, text)
    fsync_path(path)
    return offset


def atomic_write_text(path: Path | str, text: str) -> None:
    """Atomically replace ``path``'s content with ``text``.

    The temporary file lives in the destination directory (``os.replace``
    must not cross filesystems) and is fsync'd before the rename; the
    directory entry is fsync'd after, so the rename itself survives a
    power loss.  On any failure the temporary file is removed and the
    destination is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    # Durability of the rename: fsync the containing directory (best
    # effort -- not every platform allows opening directories).
    _fsync_dir(path.parent)
