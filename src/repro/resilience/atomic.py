"""Crash-safe file writes: temp file + fsync + atomic rename.

A plain ``path.write_text`` truncates the destination before writing, so a
crash (or an OOM kill) mid-write leaves a corrupted, half-written file --
which for the best-known store or a checkpoint means losing *all* prior
work, not just the interrupted record.  :func:`atomic_write_text` writes
the full payload to a temporary file in the same directory, flushes it to
disk, and atomically renames it over the destination, so readers only ever
observe either the old complete content or the new complete content.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: Path | str, text: str) -> None:
    """Atomically replace ``path``'s content with ``text``.

    The temporary file lives in the destination directory (``os.replace``
    must not cross filesystems) and is fsync'd before the rename; the
    directory entry is fsync'd after, so the rename itself survives a
    power loss.  On any failure the temporary file is removed and the
    destination is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    # Durability of the rename: fsync the containing directory (best
    # effort -- not every platform allows opening directories).
    with contextlib.suppress(OSError):
        dir_fd = os.open(path.parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)
