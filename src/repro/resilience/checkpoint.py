"""Durable per-unit progress: an append-only JSONL checkpoint store.

One study run owns one checkpoint file under ``results/checkpoints/``;
every completed work unit appends one JSON record::

    {"attempts": 1, "crc": "5f3a9c21", "key": "biskup_n10_k1_h0.4|SA_60",
     "payload": {...}, "schema": 2}

Persistence is crash-safe: each append rewrites the file through
:func:`repro.resilience.atomic.atomic_write_text` (temp file + fsync +
rename), so the on-disk file is always a complete, parseable snapshot.

Loading is *tolerant but honest*.  Every schema-2 line carries a CRC-32 of
its canonical record text; a line that fails to parse, lacks its CRC, or
fails the CRC check (bit rot, a torn write from an out-of-band editor, a
truncated tail from a pre-atomic build) is **quarantined**: the raw line
is preserved verbatim in a ``<file>.quarantine`` sidecar and counted in
:attr:`CheckpointStore.skipped_lines`, and the unit simply reruns.  A
resumed run therefore never silently replays a corrupt payload — losing
one cell to corruption must not lose the run, but it must not poison it
either.  Legacy schema-1 lines (no CRC) are accepted as-is.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any, Iterator

from repro.resilience.atomic import atomic_write_text, durable_append_text

__all__ = ["CheckpointStore", "CHECKPOINT_SCHEMA", "record_crc"]

CHECKPOINT_SCHEMA = 2


def record_crc(record: dict[str, Any]) -> str:
    """CRC-32 (8 hex digits) of a record's canonical JSON, sans ``crc``."""
    body = {key: value for key, value in record.items() if key != "crc"}
    text = json.dumps(body, sort_keys=True)
    return f"{zlib.crc32(text.encode('utf-8')) & 0xFFFFFFFF:08x}"


class CheckpointStore:
    """JSONL map from work-unit key to its completed payload.

    ``fresh=True`` (a run started without ``--resume``) discards any
    existing file so stale cells from an earlier configuration cannot leak
    into a new run; ``fresh=False`` loads existing records, quarantines
    corrupt lines, and skips the intact units.
    """

    def __init__(self, path: Path | str, fresh: bool = False) -> None:
        self.path = Path(path)
        #: Sidecar preserving rejected lines verbatim (evidence, not data).
        self.quarantine_path = self.path.with_name(
            self.path.name + ".quarantine"
        )
        self._records: dict[str, dict[str, Any]] = {}
        self.skipped_lines = 0
        if fresh:
            self.path.unlink(missing_ok=True)
        elif self.path.exists():
            self._load()

    def _load(self) -> None:
        rejected: list[str] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                record["payload"]
            except (json.JSONDecodeError, TypeError, KeyError):
                # A truncated tail line (pre-atomic writer, torn write) or
                # garbage: quarantine it; the unit simply reruns.
                rejected.append(line)
                continue
            if int(record.get("schema", 1)) >= 2:
                # Schema 2+: the line must carry a matching content CRC.
                crc = record.get("crc")
                if not isinstance(crc, str) or crc != record_crc(record):
                    rejected.append(line)
                    continue
            self._records[key] = record
        if rejected:
            self.skipped_lines = len(rejected)
            # Evidence must survive the very crashes it documents.
            durable_append_text(
                self.quarantine_path, "\n".join(rejected) + "\n"
            )

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        """Checkpointed unit keys, in completion order."""
        return iter(self._records)

    def get(self, key: str) -> dict[str, Any] | None:
        """The full record for ``key`` (``None`` if not checkpointed)."""
        return self._records.get(key)

    def payload(self, key: str) -> Any | None:
        """Just the payload for ``key`` (``None`` if not checkpointed)."""
        record = self._records.get(key)
        return None if record is None else record["payload"]

    def append(self, key: str, payload: Any, attempts: int = 1) -> None:
        """Record one completed unit and persist the file atomically."""
        record = {
            "schema": CHECKPOINT_SCHEMA,
            "key": key,
            "attempts": attempts,
            "payload": payload,
        }
        record["crc"] = record_crc(record)
        self._records[key] = record
        self.flush()

    def flush(self) -> None:
        """Write the current snapshot to disk (temp + fsync + rename)."""
        lines = [
            json.dumps(record, sort_keys=True)
            for record in self._records.values()
        ]
        atomic_write_text(self.path, "\n".join(lines) + ("\n" if lines else ""))
