"""Durable per-unit progress: an append-only JSONL checkpoint store.

One study run owns one checkpoint file under ``results/checkpoints/``;
every completed work unit appends one JSON record::

    {"schema": 1, "key": "biskup_n10_k1_h0.4|SA_60", "attempts": 1,
     "payload": {...}}

Persistence is crash-safe: each append rewrites the file through
:func:`repro.resilience.atomic.atomic_write_text` (temp file + fsync +
rename), so the on-disk file is always a complete, parseable snapshot.
Loading is nevertheless *tolerant*: unparseable or truncated lines (a
checkpoint written by an older, non-atomic build, or a file damaged out of
band) are skipped and counted rather than aborting the resume -- losing
one cell to corruption must not lose the run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.resilience.atomic import atomic_write_text

__all__ = ["CheckpointStore", "CHECKPOINT_SCHEMA"]

CHECKPOINT_SCHEMA = 1


class CheckpointStore:
    """JSONL map from work-unit key to its completed payload.

    ``fresh=True`` (a run started without ``--resume``) discards any
    existing file so stale cells from an earlier configuration cannot leak
    into a new run; ``fresh=False`` loads existing records and skips those
    units.
    """

    def __init__(self, path: Path | str, fresh: bool = False) -> None:
        self.path = Path(path)
        self._records: dict[str, dict[str, Any]] = {}
        self.skipped_lines = 0
        if fresh:
            self.path.unlink(missing_ok=True)
        elif self.path.exists():
            self._load()

    def _load(self) -> None:
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                key = record["key"]
                record["payload"]
            except (json.JSONDecodeError, TypeError, KeyError):
                # A truncated tail line (pre-atomic writer, torn write) or
                # garbage: skip it; the unit simply reruns.
                self.skipped_lines += 1
                continue
            self._records[key] = record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        """Checkpointed unit keys, in completion order."""
        return iter(self._records)

    def get(self, key: str) -> dict[str, Any] | None:
        """The full record for ``key`` (``None`` if not checkpointed)."""
        return self._records.get(key)

    def payload(self, key: str) -> Any | None:
        """Just the payload for ``key`` (``None`` if not checkpointed)."""
        record = self._records.get(key)
        return None if record is None else record["payload"]

    def append(self, key: str, payload: Any, attempts: int = 1) -> None:
        """Record one completed unit and persist the file atomically."""
        self._records[key] = {
            "schema": CHECKPOINT_SCHEMA,
            "key": key,
            "attempts": attempts,
            "payload": payload,
        }
        self.flush()

    def flush(self) -> None:
        """Write the current snapshot to disk (temp + fsync + rename)."""
        lines = [
            json.dumps(record, sort_keys=True)
            for record in self._records.values()
        ]
        atomic_write_text(self.path, "\n".join(lines) + ("\n" if lines else ""))
