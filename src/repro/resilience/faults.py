"""Deterministic fault injection for the simulated device and backends.

Real fault-tolerance code is impossible to test against real faults -- a
GT 560M that times out on exactly the 40th kernel launch of a study cannot
be arranged.  A :class:`FaultPlan` arranges it: the plan is attached to a
:class:`repro.gpusim.device.Device` (or to either
:class:`~repro.core.engine.backends.ExecutionBackend`) and raises a chosen
error on the N-th launch or allocation, *counted cumulatively across the
plan's lifetime*.  Because the count survives device re-creation, a retry
of the failed work unit starts past the trigger index and succeeds -- which
is exactly the transient-fault shape the resilient runner must handle.

Plans are deterministic by construction (counters, not wall clocks) and,
when a firing ``probability`` below 1 is requested, seeded -- the same plan
replayed over the same workload fires at the same call indices.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.engine.config import check_choice
from repro.gpusim.errors import (
    DeviceAllocationError,
    DeviceUnavailableError,
    InvalidLaunchError,
    LaunchTimeoutError,
)

__all__ = ["FAULT_KINDS", "FAULT_OPS", "FaultSpec", "FaultPlan", "parse_fault"]

#: Injectable fault kinds.  ``interrupt`` simulates the operator's Ctrl-C
#: at a deterministic point mid-study (KeyboardInterrupt is *not* a
#: failure: the runner converts it into a graceful, resumable stop).
FAULT_KINDS: dict[str, type[BaseException]] = {
    "transient": DeviceUnavailableError,
    "timeout": LaunchTimeoutError,
    "oom": DeviceAllocationError,
    "fatal": InvalidLaunchError,
    "interrupt": KeyboardInterrupt,
}

FAULT_OPS = ("launch", "malloc")


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: raise ``kind`` on the ``at``-th ``op`` call.

    ``at`` is 1-based and counted cumulatively over the owning plan's
    lifetime (across devices and retries).  ``repeat=True`` makes the
    fault *permanent*: it fires on every matching call at or after ``at``,
    modeling a hard failure no retry can clear.
    """

    op: str
    at: int
    kind: str = "transient"
    repeat: bool = False
    probability: float = 1.0
    message: str = ""

    def __post_init__(self) -> None:
        check_choice("fault op", self.op, FAULT_OPS)
        check_choice("fault kind", self.kind, tuple(FAULT_KINDS))
        if self.at < 1:
            raise ValueError(f"fault index must be >= 1, got {self.at}")
        if not (0.0 < self.probability <= 1.0):
            raise ValueError(
                f"fault probability must lie in (0, 1], got {self.probability}"
            )

    def build_error(self) -> BaseException:
        """Instantiate the exception this spec injects."""
        detail = self.message or (
            f"injected {self.kind} fault on {self.op} #{self.at}"
        )
        return FAULT_KINDS[self.kind](detail)


class FaultPlan:
    """A seeded, reproducible schedule of injected faults.

    The plan keeps one cumulative counter per operation; hooks in the
    device/backends call :meth:`record` before doing the real work, so an
    injected error prevents the operation exactly as a driver error would.
    Every firing is logged in :attr:`fired` as ``(op, index, kind)`` for
    assertions on cross-backend parity.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = (),
                 seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self._counts: dict[str, int] = {op: 0 for op in FAULT_OPS}
        self.fired: list[tuple[str, int, str]] = []

    def counts(self) -> dict[str, int]:
        """Cumulative calls recorded per operation (a copy)."""
        return dict(self._counts)

    def record(self, op: str) -> None:
        """Count one ``op`` call; raise if a spec triggers at this index."""
        check_choice("fault op", op, FAULT_OPS)
        self._counts[op] += 1
        index = self._counts[op]
        for spec in self.specs:
            if spec.op != op:
                continue
            due = index == spec.at or (spec.repeat and index >= spec.at)
            if not due:
                continue
            if spec.probability < 1.0 and (
                self._rng.random() >= spec.probability
            ):
                continue
            self.fired.append((op, index, spec.kind))
            raise spec.build_error()


def parse_fault(text: str) -> FaultSpec:
    """Parse a CLI fault spec: ``OP:AT:KIND`` with an optional ``:repeat``.

    Examples: ``launch:40:transient``, ``malloc:3:oom:repeat``,
    ``launch:1200:interrupt`` (simulated Ctrl-C mid-study).
    """
    parts = text.split(":")
    if len(parts) not in (3, 4) or (len(parts) == 4 and parts[3] != "repeat"):
        raise ValueError(
            f"bad fault spec {text!r}; expected OP:AT:KIND[:repeat], e.g. "
            f"launch:40:transient (ops: {FAULT_OPS}, "
            f"kinds: {tuple(FAULT_KINDS)})"
        )
    op, at_text, kind = parts[:3]
    try:
        at = int(at_text)
    except ValueError:
        raise ValueError(
            f"bad fault spec {text!r}: index {at_text!r} is not an integer"
        ) from None
    return FaultSpec(op=op, at=at, kind=kind, repeat=len(parts) == 4)
