"""The resilient work-unit runner: classify, retry, checkpoint, degrade.

An experiment study decomposes into :class:`WorkUnit` objects -- one
``(instance, method, replicate)`` cell each -- and hands them to a
:class:`ResilientRunner`, which guarantees four things:

1. **Classification**: failures are sorted against the
   :mod:`repro.gpusim.errors` hierarchy into *transient* (device
   momentarily unusable, watchdog timeout -- worth retrying) and *fatal*
   (configuration/programming errors, OOM on an oversized instance --
   retrying cannot help).
2. **Bounded retries**: transients are retried with deterministic
   exponential backoff under a per-unit wall-clock deadline.
3. **Durable progress**: every completed unit is appended to a crash-safe
   :class:`~repro.resilience.checkpoint.CheckpointStore`; a resumed run
   replays those payloads bit-identically instead of recomputing.
4. **Graceful degradation**: a permanently failing unit is recorded and
   the run continues; ``KeyboardInterrupt`` stops scheduling, marks the
   rest skipped, and lets the caller render the partial result.

The runner is deliberately synchronous and in-process: deadlines are
checked *between* attempts (a Python work unit cannot be preempted), which
is the honest contract for CPU-bound simulation cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.core.engine.config import (
    RetryPolicyMixin,
    check_timeout,
    check_workers,
)
from repro.gpusim.errors import (
    DeviceUnavailableError,
    LaunchTimeoutError,
)
from repro.gpusim.errors import classify_error as _classify_registered

# Importing the pool errors registers the transient transport types
# (WorkerCrashError, WorkerTimeoutError) with the shared taxonomy.
from repro.pool.errors import PoisonTaskError, PoisonTaskReport
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import FaultPlan

__all__ = [
    "TRANSIENT_ERRORS",
    "classify_error",
    "RetryPolicy",
    "WorkUnit",
    "UnitOutcome",
    "RunReport",
    "ResilientRunner",
]

#: The *device-side* transient types (kept for backward compatibility).
#: The full taxonomy lives in :mod:`repro.gpusim.errors`: every failure
#: domain registers its transient types there, and :func:`classify_error`
#: consults the registry -- which also covers the pool transport errors.
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (
    DeviceUnavailableError,
    LaunchTimeoutError,
)


def classify_error(exc: BaseException) -> str:
    """``"transient"`` or ``"fatal"`` per the shared error taxonomy.

    Transients: the device-side momentary errors above plus the pool
    transport errors (a crashed or hung worker is worth one more try).
    A :class:`~repro.pool.errors.PoisonTaskError` is deliberately fatal:
    it *is* the exhausted retry budget.
    """
    return _classify_registered(exc)


@dataclass(frozen=True)
class RetryPolicy(RetryPolicyMixin):
    """Retry/backoff/deadline knobs (validated via the shared mixins)."""

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    unit_timeout_s: float | None = None

    def __post_init__(self) -> None:
        self._check_retry_policy()

    def backoff_s(self, attempt: int) -> float:
        """Deterministic delay before retry number ``attempt`` (0-based)."""
        return min(
            self.backoff_base_s * self.backoff_factor**attempt,
            self.backoff_max_s,
        )


@dataclass(frozen=True)
class WorkUnit:
    """One retryable, checkpointable cell of a study.

    ``run`` returns a JSON-serializable payload (that is what gets
    checkpointed and replayed on resume); ``key`` must be unique and
    stable across runs -- it is the resume identity of the cell.
    """

    key: str
    run: Callable[[], Any]


@dataclass
class UnitOutcome:
    """What happened to one work unit."""

    key: str
    status: str  # "ok" | "failed" | "skipped"
    payload: Any = None
    attempts: int = 0
    from_checkpoint: bool = False
    error: str | None = None
    error_kind: str | None = None  # "transient" | "fatal" | "interrupted"

    @property
    def ok(self) -> bool:
        """Whether the unit produced a payload."""
        return self.status == "ok"


@dataclass
class RunReport:
    """Aggregate outcome of one ``run_units`` call."""

    outcomes: list[UnitOutcome] = field(default_factory=list)
    interrupted: bool = False

    @property
    def completed(self) -> list[UnitOutcome]:
        """Units that produced a payload (fresh or from checkpoint)."""
        return [o for o in self.outcomes if o.ok]

    @property
    def failed(self) -> list[UnitOutcome]:
        """Units that exhausted retries or failed fatally."""
        return [o for o in self.outcomes if o.status == "failed"]

    @property
    def skipped(self) -> list[UnitOutcome]:
        """Units never attempted (scheduling stopped by an interrupt)."""
        return [o for o in self.outcomes if o.status == "skipped"]

    def footnote(self) -> str:
        """Human-readable failure/interrupt footnote for partial reports."""
        lines = []
        for o in self.failed:
            lines.append(
                f"  — {o.key}: {o.error} "
                f"({o.error_kind}, {o.attempts} attempt"
                f"{'s' if o.attempts != 1 else ''})"
            )
        if self.interrupted:
            lines.append(
                f"  — interrupted: {len(self.skipped)} unit(s) not run "
                f"(rerun with --resume to continue)"
            )
        if not lines:
            return ""
        return "Failed cells (marked —):\n" + "\n".join(lines)


class ResilientRunner:
    """Executes work units with retries, checkpoints and degradation.

    Parameters
    ----------
    policy:
        Retry/backoff/deadline knobs.
    checkpoint_dir:
        Directory for per-study JSONL checkpoints (``None`` disables
        durable progress).
    resume:
        Load existing checkpoints and skip completed units; without it an
        existing checkpoint file for the same study id is discarded.
    fault_plan:
        Optional :class:`FaultPlan` threaded into every backend/device the
        studies create through this runner (test/CI fault injection).
    backend:
        Execution backend name the studies should solve on; ``None`` (the
        default) lets each study pick its own preference (see
        :meth:`solver_backend`).
    workers:
        Default worker-process count for :meth:`run_units`; ``None`` or 1
        keeps the serial in-process loop.
    task_timeout_s:
        Per-task wall-clock deadline for the *parallel* mode's worker
        processes: a hung unit is killed (SIGTERM, then SIGKILL) and
        retried under the policy's budget, without stalling siblings.
        Serial mode keeps the honest between-attempts
        ``policy.unit_timeout_s`` contract instead.
    pool_faults:
        Optional :class:`repro.pool.faults.PoolFaultPlan` injecting
        deterministic transport faults into the parallel mode's workers
        (test/CI chaos drills).
    sleep / clock:
        Injectable timing primitives (tests replace them to run instantly).
    """

    def __init__(
        self,
        policy: RetryPolicy | None = None,
        checkpoint_dir: Path | str | None = None,
        resume: bool = False,
        fault_plan: FaultPlan | None = None,
        backend: str | None = None,
        workers: int | None = None,
        task_timeout_s: float | None = None,
        pool_faults: "Any | None" = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self.fault_plan = fault_plan
        self.backend = backend
        check_workers(workers)
        check_timeout(task_timeout_s, "task_timeout_s")
        self.workers = workers
        self.task_timeout_s = task_timeout_s
        self.pool_faults = pool_faults
        self._sleep = sleep
        self._clock = clock
        self.progress = progress
        self.reports: list[RunReport] = []
        self._stores: dict[str, CheckpointStore] = {}

    # ------------------------------------------------------------------
    # Wiring helpers for the studies
    # ------------------------------------------------------------------
    def checkpoint_for(self, study_id: str) -> CheckpointStore | None:
        """The (cached) checkpoint store for ``study_id``, if enabled."""
        if self.checkpoint_dir is None:
            return None
        if study_id not in self._stores:
            self._stores[study_id] = CheckpointStore(
                self.checkpoint_dir / f"{study_id}.jsonl",
                fresh=not self.resume,
            )
        return self._stores[study_id]

    def solver_backend(self, name: str | None = None, *,
                       prefer: str | None = None):
        """What the studies should pass as ``backend=`` to the solvers.

        Resolution order: an explicit ``name`` (a study that *needs* a
        specific backend, e.g. the speedup table needs modeled timings),
        then the runner's configured ``backend`` (the user's ``--backend``),
        then the study's ``prefer`` (e.g. ``"vectorized"`` for quality
        studies where modeled timings are not the measurement), then the
        registry default.

        Without a fault plan this is just the backend *name* (each solve
        creates its own backend -- byte-identical to the pre-resilience
        behavior).  With a plan, a shared backend instance carries the
        plan's cumulative fault counters across units and retries.
        """
        from repro.core.engine.backends import DEFAULT_BACKEND, create_backend

        resolved = name or self.backend or prefer or DEFAULT_BACKEND
        if self.fault_plan is None:
            return resolved
        return create_backend(resolved, fault_plan=self.fault_plan)

    # ------------------------------------------------------------------
    # Aggregate state across run_units calls (the CLI reads these)
    # ------------------------------------------------------------------
    @property
    def interrupted(self) -> bool:
        """Whether any run so far was stopped by an interrupt."""
        return any(r.interrupted for r in self.reports)

    @property
    def failed_units(self) -> list[UnitOutcome]:
        """All failed outcomes across every run this runner executed."""
        return [o for r in self.reports for o in r.failed]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_units(
        self,
        units: Sequence[WorkUnit],
        checkpoint: CheckpointStore | None = None,
        workers: int | None = None,
    ) -> RunReport:
        """Run ``units``; never raises except KeyboardInterrupt *outside*
        a unit (inside one it degrades to a graceful stop).

        ``workers`` (default: the runner's configured count) > 1 executes
        units concurrently in worker processes — same outcomes, same
        checkpoint/resume and retry semantics, with each unit's whole
        retry loop (and any fault-plan counters it sees) confined to its
        own process, so fault injection stays deterministic *per unit*
        under concurrency (docs/parallel.md).  Outcomes are always
        reported in unit-definition order.
        """
        check_workers(workers)
        effective = workers if workers is not None else self.workers
        if effective is not None and effective > 1 and len(units) > 1:
            return self._run_units_parallel(units, checkpoint, effective)
        report = RunReport()
        for unit in units:
            if report.interrupted:
                report.outcomes.append(UnitOutcome(
                    key=unit.key, status="skipped", error_kind="interrupted",
                ))
                continue
            cached = checkpoint.get(unit.key) if checkpoint else None
            if cached is not None:
                report.outcomes.append(UnitOutcome(
                    key=unit.key, status="ok", payload=cached["payload"],
                    attempts=int(cached.get("attempts", 1)),
                    from_checkpoint=True,
                ))
                self._note(f"{unit.key}: restored from checkpoint")
                continue
            try:
                outcome = self._attempt(unit)
            except KeyboardInterrupt:
                report.interrupted = True
                report.outcomes.append(UnitOutcome(
                    key=unit.key, status="skipped", error_kind="interrupted",
                ))
                self._note(f"{unit.key}: interrupted")
                continue
            if outcome.ok and checkpoint is not None:
                checkpoint.append(unit.key, outcome.payload, outcome.attempts)
            report.outcomes.append(outcome)
        self.reports.append(report)
        return report

    def _run_units_parallel(
        self,
        units: Sequence[WorkUnit],
        checkpoint: CheckpointStore | None,
        workers: int,
    ) -> RunReport:
        """Concurrent ``run_units``: checkpointed units replay first, the
        rest run on a bounded process pool (one unit = one child running
        the full :meth:`_attempt` retry loop).

        Requires a fork-capable platform: unit closures and the runner
        itself reach the children by process inheritance, not pickling.
        An interrupt reported by any unit stops scheduling, terminates
        in-flight units and marks everything not yet completed skipped —
        completed outcomes received before the interrupt are already
        checkpointed, exactly like the serial path's flush-and-skip.
        """
        from repro.pool.executor import ProcessPool

        report = RunReport()
        outcomes: dict[int, UnitOutcome] = {}
        pending: list[int] = []
        for i, unit in enumerate(units):
            cached = checkpoint.get(unit.key) if checkpoint else None
            if cached is not None:
                outcomes[i] = UnitOutcome(
                    key=unit.key, status="ok", payload=cached["payload"],
                    attempts=int(cached.get("attempts", 1)),
                    from_checkpoint=True,
                )
                self._note(f"{unit.key}: restored from checkpoint")
            else:
                pending.append(i)

        pool = ProcessPool(
            workers=workers,
            context="fork",
            task_timeout=self.task_timeout_s,
            task_retries=self.policy.max_retries,
            retry_delay=self.policy.backoff_s,
            fault_plan=self.pool_faults,
        )
        tasks = [(_attempt_in_worker, (self, units[i])) for i in pending]
        labels = [units[i].key for i in pending]
        results = pool.imap_unordered(tasks, labels=labels)
        try:
            for task_index, status, value in results:
                i = pending[task_index]
                unit = units[i]
                if status == "interrupt":
                    report.interrupted = True
                    outcomes[i] = UnitOutcome(
                        key=unit.key, status="skipped",
                        error_kind="interrupted",
                    )
                    self._note(f"{unit.key}: interrupted")
                    break
                if status == "error":
                    # The unit's process died abnormally (the pool already
                    # retried it under the policy's budget) or its outcome
                    # could not be returned; degrade the cell, keep going.
                    if isinstance(value, PoisonTaskError):
                        self._quarantine(value.report)
                        attempts = len(value.report.attempts)
                    else:
                        attempts = 1
                    kind = classify_error(value)
                    self._note(f"{unit.key}: failed ({kind}: {value})")
                    outcomes[i] = UnitOutcome(
                        key=unit.key, status="failed", attempts=attempts,
                        error=f"{type(value).__name__}: {value}",
                        error_kind=kind,
                    )
                    continue
                outcome: UnitOutcome = value
                if outcome.ok and checkpoint is not None:
                    checkpoint.append(
                        unit.key, outcome.payload, outcome.attempts
                    )
                outcomes[i] = outcome
        finally:
            results.close()  # terminates any in-flight children

        for i, unit in enumerate(units):
            if i not in outcomes:
                outcomes[i] = UnitOutcome(
                    key=unit.key, status="skipped", error_kind="interrupted",
                )
        report.outcomes = [outcomes[i] for i in range(len(units))]
        self.reports.append(report)
        return report

    def _attempt(self, unit: WorkUnit) -> UnitOutcome:
        """Retry loop for one unit (transient-only, deadline-bounded)."""
        policy = self.policy
        deadline = (
            self._clock() + policy.unit_timeout_s
            if policy.unit_timeout_s is not None else None
        )
        attempt = 0
        while True:
            attempt += 1
            try:
                payload = unit.run()
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                kind = classify_error(exc)
                out_of_retries = attempt > policy.max_retries
                out_of_time = (
                    deadline is not None and self._clock() >= deadline
                )
                if kind == "fatal" or out_of_retries or out_of_time:
                    reason = kind
                    if kind == "transient" and out_of_time:
                        reason = "transient (deadline exceeded)"
                    self._note(f"{unit.key}: failed ({reason}: {exc})")
                    return UnitOutcome(
                        key=unit.key, status="failed", attempts=attempt,
                        error=f"{type(exc).__name__}: {exc}", error_kind=kind,
                    )
                delay = policy.backoff_s(attempt - 1)
                if deadline is not None:
                    delay = min(delay, max(0.0, deadline - self._clock()))
                self._note(
                    f"{unit.key}: transient failure ({exc}); retrying in "
                    f"{delay:.3g}s (attempt {attempt}/{policy.max_retries + 1})"
                )
                self._sleep(delay)
            else:
                self._note(f"{unit.key}: done")
                return UnitOutcome(
                    key=unit.key, status="ok", payload=payload,
                    attempts=attempt,
                )

    def _quarantine(self, report: PoisonTaskReport) -> Path | None:
        """Persist a poison-task report under ``checkpoint_dir/quarantine/``.

        The report is the operator's evidence (task label, every attempt's
        outcome and exit code/signal); CI uploads the directory as an
        artifact.  Without a checkpoint directory the report still reaches
        the caller through the failed outcome's error text.
        """
        if self.checkpoint_dir is None:
            return None
        import json

        from repro.resilience.atomic import atomic_write_text

        safe = "".join(
            ch if ch.isalnum() or ch in "-._" else "_" for ch in report.label
        )
        path = self.checkpoint_dir / "quarantine" / f"{safe}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path, json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n"
        )
        self._note(f"{report.label}: quarantined (report: {path})")
        return path

    def _note(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)


def _attempt_in_worker(runner: ResilientRunner, unit: WorkUnit) -> UnitOutcome:
    """Child-process body of the parallel ``run_units`` mode.

    Runs the unit's *entire* retry loop in the child so retry counts, and
    any fault-plan counters the unit's closure sees (a fork-copied plan
    starts at the parent's state), accumulate per unit — never shared
    across concurrently running units.
    """
    return runner._attempt(unit)
