"""Sequence optimizers: the deterministic second layer of the two-layer approach.

Given a fixed job sequence, the remaining subproblem -- choosing completion
times (and, for UCDDCP, compressions) -- is a linear program.  This
subpackage provides:

* :func:`~repro.seqopt.cdd_linear.optimize_cdd_sequence` -- the O(n)
  algorithm of Lässig et al. [7] for the CDD.
* :func:`~repro.seqopt.ucddcp_linear.optimize_ucddcp_sequence` -- the O(n)
  algorithm of Awasthi et al. [8] for the UCDDCP.
* :mod:`~repro.seqopt.batched` -- fully vectorized ensemble versions of both
  (the workhorse behind the simulated fitness kernel: one row per thread).
* :mod:`~repro.seqopt.pure_python` -- list-based implementations used as the
  honest *serial CPU* comparator when measuring speedups.
* :mod:`~repro.seqopt.lp_reference` -- scipy ``linprog`` on the exact
  fixed-sequence LP (ground truth for the O(n) algorithms).
* :mod:`~repro.seqopt.exact` -- exact solvers over sequences (brute force,
  V-shaped partition enumeration) used to anchor best-known values.
* :mod:`~repro.seqopt.local_search` -- batched steepest-descent over
  adjacent-swap / insertion neighborhoods (hybrid polish).
"""

from repro.seqopt.batched import batched_cdd_objective, batched_ucddcp_objective
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.local_search import local_search
from repro.seqopt.lp_reference import lp_optimize_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence

__all__ = [
    "optimize_cdd_sequence",
    "optimize_ucddcp_sequence",
    "batched_cdd_objective",
    "batched_ucddcp_objective",
    "lp_optimize_sequence",
    "local_search",
]
