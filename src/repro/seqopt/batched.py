"""Vectorized ensemble versions of the O(n) sequence optimizers.

These routines evaluate *S* job sequences at once -- one row per simulated
CUDA thread -- using pure NumPy over the ensemble axis.  They are the
numerical content of the paper's fitness kernel: every GPU thread runs the
same O(n) program on its own sequence, which is exactly what a batched
row-wise computation expresses (SIMT semantics).

Two API levels are provided:

* ``*_objective(instance, sequences)`` -- gather the instance arrays through
  the ``(S, n)`` integer sequence matrix and evaluate.
* ``*_from_gathered(...)`` -- operate directly on already-gathered
  sequence-ordered arrays; this is what the simulated fitness kernel calls
  after staging data into (simulated) shared memory.

The closed forms mirror ``cdd_linear``/``ucddcp_linear``: with prefix sums
``A_k = sum(alpha[:k])`` and suffix sums ``B_k = sum(beta[k-1:])`` the
optimal due-date position is ``r = min(tau, max{k : B_k >= A_{k-1}})``
(or 0 -- keep the start-at-zero schedule -- when ``B_{tau+1} >= A_tau``),
and the optimal schedule is the initial one shifted right by
``d - C_init[r]``.  Everything is O(S*n) with no Python-level loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.problems.cdd import CDDInstance
    from repro.problems.ucddcp import UCDDCPInstance

__all__ = [
    "batched_cdd_objective",
    "batched_ucddcp_objective",
    "batched_cdd_from_gathered",
    "batched_ucddcp_from_gathered",
    "gather_sequences",
]


def gather_sequences(values: np.ndarray, sequences: np.ndarray) -> np.ndarray:
    """Gather per-job ``values`` into sequence order for every row.

    ``sequences`` has shape ``(S, n)``; returns ``values[sequences]`` with
    shape ``(S, n)`` (a fancy-indexing broadcast, no copy of ``values``).
    """
    return values[sequences]


# ----------------------------------------------------------------------
# CDD
# ----------------------------------------------------------------------
def batched_cdd_from_gathered(
    p_seq: np.ndarray,
    a_seq: np.ndarray,
    b_seq: np.ndarray,
    due_date: float,
    *,
    return_completions: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Optimal CDD objectives for ``S`` sequences given gathered arrays.

    Parameters
    ----------
    p_seq, a_seq, b_seq:
        ``(S, n)`` float arrays: processing times and penalties of each row's
        sequence, in sequence order.
    due_date:
        The common due date ``d``.
    return_completions:
        If true, also return the ``(S, n)`` optimal completion times and the
        ``(S,)`` due-date positions ``r`` (0 = schedule starts at time zero).

    Returns
    -------
    objectives, or ``(objectives, completions, r)``.
    """
    d = float(due_date)
    s, n = p_seq.shape
    rows = np.arange(s)

    c_init = np.cumsum(p_seq, axis=1)
    # tau: per-row count of jobs finishing at or before d at start zero.
    tau = (c_init <= d).sum(axis=1)

    a_pref = np.cumsum(a_seq, axis=1)  # A_k at column k-1
    a_excl = np.concatenate(
        (np.zeros((s, 1), dtype=a_pref.dtype), a_pref[:, :-1]), axis=1
    )  # A_{k-1} at column k-1
    b_cum = np.cumsum(b_seq, axis=1)
    b_suf = b_cum[:, -1:] - b_cum + b_seq  # B_k = sum(b[k-1:]) at column k-1

    # cond_k = B_k >= A_{k-1} is prefix-true in k (B_k falls, A_{k-1} rises),
    # so the largest k with cond_k is simply the count of true entries.
    k_max = (b_suf >= a_excl).sum(axis=1)
    r = np.minimum(tau, k_max)

    # Keep the initial schedule when shifting right is not strictly
    # beneficial: tardiness rate B_{tau+1} >= earliness rate A_tau.
    pe0 = np.where(tau > 0, a_pref[rows, np.maximum(tau - 1, 0)], 0.0)
    pl0 = np.where(tau < n, b_suf[rows, np.minimum(tau, n - 1)], 0.0)
    keep = (tau == 0) | (pl0 >= pe0)
    r = np.where(keep, 0, r)

    shift = np.where(r > 0, d - c_init[rows, np.maximum(r - 1, 0)], 0.0)
    completion = c_init + shift[:, None]

    early = np.maximum(0.0, d - completion)
    tardy = np.maximum(0.0, completion - d)
    obj = np.einsum("ij,ij->i", a_seq, early) + np.einsum(
        "ij,ij->i", b_seq, tardy
    )
    if return_completions:
        return obj, completion, r
    return obj


def batched_cdd_objective(
    instance: "CDDInstance", sequences: np.ndarray
) -> np.ndarray:
    """Optimal CDD objective for each row of the ``(S, n)`` sequence matrix."""
    seqs = np.asarray(sequences, dtype=np.intp)
    if seqs.ndim != 2 or seqs.shape[1] != instance.n:
        raise ValueError(
            f"sequences must have shape (S, {instance.n}), got {seqs.shape}"
        )
    return batched_cdd_from_gathered(
        instance.processing[seqs],
        instance.alpha[seqs],
        instance.beta[seqs],
        instance.due_date,
    )


# ----------------------------------------------------------------------
# UCDDCP
# ----------------------------------------------------------------------
def batched_ucddcp_from_gathered(
    p_seq: np.ndarray,
    m_seq: np.ndarray,
    a_seq: np.ndarray,
    b_seq: np.ndarray,
    g_seq: np.ndarray,
    due_date: float,
    *,
    return_details: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Optimal UCDDCP objectives for ``S`` sequences given gathered arrays.

    Same contract as :func:`batched_cdd_from_gathered` with the compression
    pass added; with ``return_details`` also returns completions,
    reductions and due-date positions.
    """
    d = float(due_date)
    s, n = p_seq.shape
    rows = np.arange(s)

    _, c_cdd, r = batched_cdd_from_gathered(
        p_seq, a_seq, b_seq, d, return_completions=True
    )

    a_pref = np.cumsum(a_seq, axis=1)
    a_excl = np.concatenate(
        (np.zeros((s, 1), dtype=a_pref.dtype), a_pref[:, :-1]), axis=1
    )
    b_cum = np.cumsum(b_seq, axis=1)
    b_suf = b_cum[:, -1:] - b_cum + b_seq

    positions = np.arange(1, n + 1)
    # Rows with an anchored job (r >= 1): tardy <=> position > r (exact,
    # index-based).  Rows that kept the start-at-zero schedule fall back to a
    # float comparison on the initial completions.
    is_tardy = np.where(
        (r >= 1)[:, None], positions[None, :] > r[:, None], c_cdd > d
    )
    rate = np.where(is_tardy, b_suf, a_excl) - g_seq
    reduction = np.where(rate > 0.0, p_seq - m_seq, 0.0)

    p_eff = p_seq - reduction
    cum = np.cumsum(p_eff, axis=1)
    anchor = cum[rows, np.maximum(r - 1, 0)]
    completion = np.where(
        (r > 0)[:, None], d + cum - anchor[:, None], cum
    )

    early = np.maximum(0.0, d - completion)
    tardy = np.maximum(0.0, completion - d)
    obj = (
        np.einsum("ij,ij->i", a_seq, early)
        + np.einsum("ij,ij->i", b_seq, tardy)
        + np.einsum("ij,ij->i", g_seq, reduction)
    )
    if return_details:
        return obj, completion, reduction, r
    return obj


def batched_ucddcp_objective(
    instance: "UCDDCPInstance", sequences: np.ndarray
) -> np.ndarray:
    """Optimal UCDDCP objective for each row of the sequence matrix."""
    seqs = np.asarray(sequences, dtype=np.intp)
    if seqs.ndim != 2 or seqs.shape[1] != instance.n:
        raise ValueError(
            f"sequences must have shape (S, {instance.n}), got {seqs.shape}"
        )
    return batched_ucddcp_from_gathered(
        instance.processing[seqs],
        instance.min_processing[seqs],
        instance.alpha[seqs],
        instance.beta[seqs],
        instance.gamma[seqs],
        instance.due_date,
    )
