"""O(n) optimal completion times for a fixed CDD job sequence.

Implements the linear algorithm of Lässig, Awasthi & Kramer [7] as described
and illustrated in Section IV-A of the paper.  The schedule is initialized
with the first job starting at time zero and no idle time (Cheng &
Kahlbacher: optimal CDD schedules have no idle time).  It is then shifted
right in job-sized steps -- each step placing the completion time of one more
job exactly at the due date -- for as long as the running sum of tardiness
penalties stays strictly below the running sum of earliness penalties
(Theorem 1, Case 2(ii)).

Derivation of the stopping rule used here (equivalent to the paper's loop):
with ``A_k = sum(alpha[0:k])`` and ``B_k = sum(beta[k-1:n])`` (1-based job
position ``k``), pushing the job currently finishing at ``d`` past the due
date is beneficial iff the post-move tardiness rate ``B_k`` is still strictly
below the post-move earliness rate ``A_{k-1}``.  Since ``B_k - A_{k-1}`` is
non-increasing in ``k``, the optimal due-date position is

    r* = max { k <= tau : B_k >= A_{k-1} }

where ``tau`` is the last position finishing no later than ``d`` in the
initial schedule -- unless already ``B_{tau+1} >= A_tau``, in which case the
initial (start at zero) schedule is optimal.  The whole procedure is a
single O(n) pass; the final schedule is the initial one shifted right by
``d - C_init[r*]``.
"""

from __future__ import annotations

import numpy as np

from repro.problems.cdd import CDDInstance
from repro.problems.schedule import Schedule

__all__ = ["optimize_cdd_sequence", "cdd_objective_for_sequence"]


def optimize_cdd_sequence(
    instance: CDDInstance, sequence: np.ndarray
) -> Schedule:
    """Optimal completion times (and objective) for ``sequence``.

    Parameters
    ----------
    instance:
        The CDD instance.
    sequence:
        Permutation of ``0..n-1``; ``sequence[k]`` is processed ``k``-th.

    Returns
    -------
    Schedule
        Completion times in sequence order, zero reductions and the minimal
        objective value.  ``schedule.meta["due_date_position"]`` holds the
        1-based sequence position whose job completes exactly at ``d``
        (0 when the optimal schedule simply starts at time zero without any
        completion pinned to the due date).
    """
    seq = np.asarray(sequence, dtype=np.intp)
    p = instance.processing[seq]
    a = instance.alpha[seq]
    b = instance.beta[seq]
    d = instance.due_date

    completion, r = _optimal_completions(p, a, b, d)
    e = np.maximum(0.0, d - completion)
    t = np.maximum(0.0, completion - d)
    obj = float(a @ e + b @ t)
    return Schedule(
        sequence=seq,
        completion=completion,
        reduction=np.zeros_like(completion),
        objective=obj,
        meta={"due_date_position": int(r)},
    )


def cdd_objective_for_sequence(instance: CDDInstance, sequence: np.ndarray) -> float:
    """Objective-only variant of :func:`optimize_cdd_sequence` (same O(n))."""
    seq = np.asarray(sequence, dtype=np.intp)
    p = instance.processing[seq]
    a = instance.alpha[seq]
    b = instance.beta[seq]
    d = instance.due_date
    completion, _ = _optimal_completions(p, a, b, d)
    e = np.maximum(0.0, d - completion)
    t = np.maximum(0.0, completion - d)
    return float(a @ e + b @ t)


def _optimal_completions(
    p: np.ndarray, a: np.ndarray, b: np.ndarray, d: float
) -> tuple[np.ndarray, int]:
    """Core routine on sequence-ordered arrays.

    Returns the optimal completion times (sequence order) and the 1-based
    due-date position ``r`` (0 if the schedule starts at time zero with no
    completion anchored at ``d``).
    """
    c_init = np.cumsum(p)
    n = p.size

    # tau: number of jobs completing at or before d in the t=0 schedule.
    # c_init is strictly increasing (p > 0), so searchsorted is exact.
    tau = int(np.searchsorted(c_init, d, side="right"))
    if tau == 0:
        # Even the first job is tardy; no left shift is feasible and a right
        # shift only increases tardiness.
        return c_init, 0

    # pe = A_tau (earliness rate), pl = B_{tau+1} (tardiness rate) of the
    # initial schedule.
    pe = float(a[:tau].sum())
    pl = float(b[tau:].sum())
    if pl >= pe:
        # Shifting right increases cost (rate pl) faster than it saves (pe).
        return c_init, 0

    # Align job tau at d, then keep pushing the anchored job past the due
    # date while beneficial.  Track the accumulated shift instead of
    # re-adding to the whole array to stay O(n) overall.
    r = tau
    while True:
        pe -= float(a[r - 1])
        pl += float(b[r - 1])
        if pl >= pe or r == 1:
            break
        r -= 1

    shift = d - float(c_init[r - 1])
    return c_init + shift, r
