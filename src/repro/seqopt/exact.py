"""Exact solvers used to anchor best-known values and certify heuristics.

Two families:

* **Brute force** -- enumerate every permutation and optimize each with the
  O(n) sequence algorithms.  Exponential; guarded to small ``n``.  Valid for
  both CDD (restricted or not) and UCDDCP.

* **V-shaped partition enumeration** (unrestricted CDD only) -- the optimal
  unrestricted CDD schedule is V-shaped: jobs finishing at or before the due
  date appear in non-decreasing ``alpha_i / P_i`` order (earliness weight
  grows toward the due date) and tardy jobs in non-decreasing
  ``P_i / beta_i`` order, with one job completing exactly at the due date.
  Enumerating the 2^n early/tardy partitions with a subset-sum style dynamic
  program therefore yields the exact optimum in O(n * 2^n) vectorized work,
  practical to n ~ 20.  Schedules whose early block is empty are dominated
  (shifting the block left until the first job completes at ``d`` can only
  help), so the enumeration over anchored schedules is exhaustive.
"""

from __future__ import annotations

from itertools import permutations

import numpy as np

from repro.problems.cdd import CDDInstance
from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.cdd_linear import optimize_cdd_sequence
from repro.seqopt.ucddcp_linear import optimize_ucddcp_sequence

__all__ = [
    "brute_force_cdd",
    "brute_force_ucddcp",
    "vshape_optimal_cdd",
]

_BRUTE_FORCE_LIMIT = 9
_VSHAPE_LIMIT = 20


def brute_force_cdd(instance: CDDInstance) -> Schedule:
    """Exact CDD optimum by enumerating all ``n!`` sequences (``n <= 9``)."""
    if instance.n > _BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"brute force limited to n <= {_BRUTE_FORCE_LIMIT}, got {instance.n}"
        )
    best: Schedule | None = None
    for perm in permutations(range(instance.n)):
        sched = optimize_cdd_sequence(instance, np.asarray(perm, dtype=np.intp))
        if best is None or sched.objective < best.objective:
            best = sched
    assert best is not None
    return best


def brute_force_ucddcp(instance: UCDDCPInstance) -> Schedule:
    """Exact UCDDCP optimum by enumerating all ``n!`` sequences (``n <= 9``)."""
    if instance.n > _BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"brute force limited to n <= {_BRUTE_FORCE_LIMIT}, got {instance.n}"
        )
    best: Schedule | None = None
    for perm in permutations(range(instance.n)):
        sched = optimize_ucddcp_sequence(instance, np.asarray(perm, dtype=np.intp))
        if best is None or sched.objective < best.objective:
            best = sched
    assert best is not None
    return best


def vshape_optimal_cdd(instance: CDDInstance) -> Schedule:
    """Exact optimum of an *unrestricted* CDD instance via partition DP.

    Requires ``d >= sum(P)``.  Runs in O(n * 2^n) vectorized time and memory
    O(2^n); guarded to ``n <= 20``.
    """
    n = instance.n
    if n > _VSHAPE_LIMIT:
        raise ValueError(f"partition DP limited to n <= {_VSHAPE_LIMIT}, got {n}")
    if instance.is_restrictive:
        raise ValueError(
            "vshape_optimal_cdd requires an unrestricted instance (d >= sum P)"
        )

    p = instance.processing
    a = instance.alpha
    b = instance.beta

    # Early order: alpha/p non-decreasing toward the due date.  Bit i of every
    # early-space mask refers to early_order[i].
    early_order = np.argsort(a / p, kind="stable")
    # Tardy order: p/beta non-decreasing away from the due date.  Guard
    # against zero beta (those jobs go last -- infinite ratio).
    with np.errstate(divide="ignore"):
        ratio_t = np.where(b > 0, p / np.where(b > 0, b, 1.0), np.inf)
    tardy_order = np.argsort(ratio_t, kind="stable")

    size = 1 << n
    # cost_e[mask] (early space): weighted earliness of the early block built
    # from the masked jobs in early order, block finishing exactly at d.
    # Recurrence when appending sorted job i after subset m < 2^i:
    #   cost_e[m | 2^i] = cost_e[m] + p_i * alpha_sum[m]
    # (the new job sits closest to d; everyone already in m moves p_i earlier
    # -- equivalently the new job's own earliness is 0 and each predecessor's
    # earliness grows by p_i).
    cost_e = np.zeros(size)
    asum = np.zeros(size)
    pe = p[early_order]
    ae = a[early_order]
    for i in range(n):
        lo, hi = 1 << i, 1 << (i + 1)
        cost_e[lo:hi] = cost_e[:lo] + pe[i] * asum[:lo]
        asum[lo:hi] = asum[:lo] + ae[i]

    # cost_t[mask] (tardy space): weighted tardiness of the tardy block
    # starting right after d.  Appending sorted job i after subset m:
    #   cost_t[m | 2^i] = cost_t[m] + beta_i * (p_sum[m] + p_i).
    cost_t = np.zeros(size)
    psum = np.zeros(size)
    pt = p[tardy_order]
    bt = b[tardy_order]
    for i in range(n):
        lo, hi = 1 << i, 1 << (i + 1)
        cost_t[lo:hi] = cost_t[:lo] + bt[i] * (psum[:lo] + pt[i])
        psum[lo:hi] = psum[:lo] + pt[i]

    # Translate every early-space mask into the tardy-space mask of its
    # complement: job early_order[i] lives at tardy-space bit
    # position_in_tardy[early_order[i]].
    pos_in_tardy = np.empty(n, dtype=np.int64)
    pos_in_tardy[tardy_order] = np.arange(n)
    masks = np.arange(size, dtype=np.uint64)
    comp_t = np.zeros(size, dtype=np.uint64)
    for i in range(n):
        bit_absent = ((masks >> np.uint64(i)) & np.uint64(1)) ^ np.uint64(1)
        comp_t |= bit_absent << np.uint64(pos_in_tardy[early_order[i]])

    total = cost_e + cost_t[comp_t]
    best_mask = int(np.argmin(total))

    early_jobs = [early_order[i] for i in range(n) if best_mask >> i & 1]
    tardy_jobs = [j for j in tardy_order if not _in_mask(best_mask, early_order, j)]
    sequence = np.asarray(early_jobs + tardy_jobs, dtype=np.intp)

    sched = optimize_cdd_sequence(instance, sequence)
    # The per-sequence optimizer must reproduce the DP cost: a strong
    # internal consistency check.
    if not np.isclose(sched.objective, float(total[best_mask]), rtol=1e-9, atol=1e-6):
        raise AssertionError(
            "partition DP and sequence optimizer disagree: "
            f"{total[best_mask]} vs {sched.objective}"
        )
    return sched


def _in_mask(mask: int, early_order: np.ndarray, job: int) -> bool:
    """Whether ``job`` is selected as early by the early-space ``mask``."""
    idx = int(np.nonzero(early_order == job)[0][0])
    return bool(mask >> idx & 1)
