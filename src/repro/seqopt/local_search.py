"""Batched local search over sequence neighborhoods (hybrid polish).

A deterministic descent used to polish metaheuristic results (and to
strengthen best-known references): at each step the *entire* neighborhood
of the incumbent is evaluated with the batched O(n) optimizers -- one row
per neighbor, the same vectorization as the fitness kernel -- and the best
strictly improving neighbor is adopted.  Two classic neighborhoods:

* **adjacent swaps** -- ``n - 1`` neighbors, the minimal sequencing change;
* **insertions** -- remove the job at position ``i`` and reinsert at ``j``
  (all ``(n - 1)^2`` proper moves, evaluated in batches).

The descent terminates at a local optimum of the chosen neighborhood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = [
    "LocalSearchResult",
    "adjacent_swap_neighbors",
    "insertion_neighbors",
    "local_search",
]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of one descent."""

    sequence: np.ndarray
    objective: float
    steps: int
    evaluations: int


def adjacent_swap_neighbors(sequence: np.ndarray) -> np.ndarray:
    """All ``n - 1`` adjacent transpositions of ``sequence`` as rows."""
    seq = np.asarray(sequence)
    n = seq.size
    if n < 2:
        return seq[None, :].copy()
    out = np.tile(seq, (n - 1, 1))
    idx = np.arange(n - 1)
    out[idx, idx] = seq[idx + 1]
    out[idx, idx + 1] = seq[idx]
    return out


def insertion_neighbors(sequence: np.ndarray) -> np.ndarray:
    """All distinct remove-and-reinsert moves of ``sequence`` as rows.

    Moves that reproduce the input (``j == i``) are skipped; duplicates
    (different ``(i, j)`` pairs yielding the same sequence) are removed.
    """
    seq = np.asarray(sequence)
    n = seq.size
    rows = []
    for i in range(n):
        rest = np.delete(seq, i)
        for j in range(n):
            if j == i:
                continue
            rows.append(np.insert(rest, j, seq[i]))
    if not rows:
        return seq[None, :].copy()
    return np.unique(np.vstack(rows), axis=0)


def local_search(
    instance: CDDInstance | UCDDCPInstance,
    sequence: np.ndarray,
    neighborhood: str = "adjacent",
    max_steps: int = 10_000,
) -> LocalSearchResult:
    """Steepest-descent to a local optimum of the chosen neighborhood.

    Parameters
    ----------
    neighborhood:
        ``"adjacent"`` (n-1 neighbors per step) or ``"insertion"``
        (~(n-1)^2 neighbors per step; much stronger, much dearer).
    max_steps:
        Safety bound on descent length.
    """
    if neighborhood == "adjacent":
        expand = adjacent_swap_neighbors
    elif neighborhood == "insertion":
        expand = insertion_neighbors
    else:
        raise ValueError(f"unknown neighborhood {neighborhood!r}")
    # Imported lazily: the adapter layer lives above seqopt in the stack.
    from repro.core.engine.adapters import adapter_for

    batched_eval = adapter_for(instance).batched_objective

    seq = np.asarray(sequence, dtype=np.intp).copy()
    current = float(batched_eval(seq[None, :])[0])
    evaluations = 1
    steps = 0
    while steps < max_steps:
        neighbors = expand(seq)
        values = batched_eval(neighbors)
        evaluations += len(values)
        k = int(np.argmin(values))
        if values[k] >= current - 1e-12:
            break
        seq = neighbors[k].astype(np.intp)
        current = float(values[k])
        steps += 1
    return LocalSearchResult(
        sequence=seq, objective=current, steps=steps, evaluations=evaluations
    )
