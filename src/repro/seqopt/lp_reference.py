"""Ground-truth LP solver for the fixed-sequence subproblem.

Once the sequencing binaries ``delta_ij`` of the 0-1 integer program in
Section III are fixed (i.e. a job sequence is chosen), what remains is a
linear program over completion times ``C``, earliness ``E``, tardiness ``T``
and reductions ``X``:

    minimize    alpha.E + beta.T + gamma.X
    subject to  E_k >= d - C_k,                     (earliness definition)
                T_k >= C_k - d,                     (tardiness definition)
                C_k >= C_{k-1} + P_k - X_k,         (no overlap, seq order)
                C_1 >= P_1 - X_1,                   (start at or after 0)
                0 <= X_k <= P_k - M_k,  E,T,C >= 0.

This module solves that LP with :func:`scipy.optimize.linprog` (HiGHS).  It
is intentionally slow and general: its only job is to certify the O(n)
specialized algorithms on arbitrary (including hypothesis-generated)
instances.  Note the LP permits machine idle time -- that the optimum
nevertheless has none is itself one of the structural properties under test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = ["LPResult", "lp_optimize_sequence"]


@dataclass(frozen=True)
class LPResult:
    """Solution of the fixed-sequence LP (all vectors in sequence order)."""

    objective: float
    completion: np.ndarray
    reduction: np.ndarray
    status: int
    message: str


def lp_optimize_sequence(
    instance: CDDInstance | UCDDCPInstance, sequence: np.ndarray
) -> LPResult:
    """Solve the fixed-sequence LP exactly.

    For a :class:`CDDInstance` the reductions are fixed to zero, so the LP
    optimizes completion times only.
    """
    seq = np.asarray(sequence, dtype=np.intp)
    n = seq.size
    p = instance.processing[seq]
    a = instance.alpha[seq]
    b = instance.beta[seq]
    d = instance.due_date
    if isinstance(instance, UCDDCPInstance):
        g = instance.gamma[seq]
        x_upper = (instance.processing - instance.min_processing)[seq]
    else:
        g = np.zeros(n)
        x_upper = np.zeros(n)

    # Variable layout: [C (n), E (n), T (n), X (n)].
    num = 4 * n
    c_obj = np.concatenate((np.zeros(n), a, b, g))

    rows: list[np.ndarray] = []
    rhs: list[float] = []

    def add(row: np.ndarray, bound: float) -> None:
        rows.append(row)
        rhs.append(bound)

    for k in range(n):
        # -C_k - E_k <= -d   (E_k >= d - C_k)
        row = np.zeros(num)
        row[k] = -1.0
        row[n + k] = -1.0
        add(row, -d)
        #  C_k - T_k <= d    (T_k >= C_k - d)
        row = np.zeros(num)
        row[k] = 1.0
        row[2 * n + k] = -1.0
        add(row, d)
        # -C_k + C_{k-1} - X_k <= -P_k   (no overlap / start >= 0)
        row = np.zeros(num)
        row[k] = -1.0
        if k > 0:
            row[k - 1] = 1.0
        row[3 * n + k] = -1.0
        add(row, -float(p[k]))

    bounds = (
        [(0.0, None)] * n  # C
        + [(0.0, None)] * n  # E
        + [(0.0, None)] * n  # T
        + [(0.0, float(u)) for u in x_upper]  # X
    )

    res = linprog(
        c=c_obj,
        A_ub=np.vstack(rows),
        b_ub=np.asarray(rhs),
        bounds=bounds,
        method="highs",
    )
    if not res.success:  # pragma: no cover - linprog failure is exceptional
        raise RuntimeError(f"fixed-sequence LP failed: {res.message}")
    x = res.x
    return LPResult(
        objective=float(res.fun),
        completion=x[:n].copy(),
        reduction=x[3 * n :].copy(),
        status=int(res.status),
        message=str(res.message),
    )
