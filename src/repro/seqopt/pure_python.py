"""Pure-Python (list-based) sequence optimizers: the honest serial baseline.

The paper's speedup tables compare GPU runtimes against sequential CPU
implementations ([7], [8], [18]).  Our stand-in for those CPU codes is this
module: straightforward single-threaded Python implementing the same O(n)
algorithms with plain lists and scalar arithmetic -- no NumPy, no batching.
The serial SA/DPSO baselines in :mod:`repro.core` call these evaluators so
that measured CPU-vs-ensemble speedups compare genuinely scalar code against
the vectorized "device" execution, mirroring the serial-vs-parallel contrast
of the paper.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["cdd_objective_py", "ucddcp_objective_py"]


def cdd_objective_py(
    p: Sequence[float],
    a: Sequence[float],
    b: Sequence[float],
    d: float,
    order: Sequence[int],
) -> float:
    """Optimal CDD objective for one sequence, scalar Python throughout.

    Parameters are the per-job arrays in *job-index* order plus the sequence
    ``order``; mirrors :func:`repro.seqopt.cdd_linear.cdd_objective_for_sequence`.
    """
    n = len(order)
    ps = [p[j] for j in order]
    As = [a[j] for j in order]
    bs = [b[j] for j in order]

    c = [0.0] * n
    acc = 0.0
    for k in range(n):
        acc += ps[k]
        c[k] = acc

    tau = 0
    for k in range(n):
        if c[k] <= d:
            tau = k + 1
        else:
            break

    shift = 0.0
    if tau > 0:
        pe = 0.0
        for k in range(tau):
            pe += As[k]
        pl = 0.0
        for k in range(tau, n):
            pl += bs[k]
        if pl < pe:
            r = tau
            while True:
                pe -= As[r - 1]
                pl += bs[r - 1]
                if pl >= pe or r == 1:
                    break
                r -= 1
            shift = d - c[r - 1]

    total = 0.0
    for k in range(n):
        ck = c[k] + shift
        if ck < d:
            total += As[k] * (d - ck)
        else:
            total += bs[k] * (ck - d)
    return total


def ucddcp_objective_py(
    p: Sequence[float],
    m: Sequence[float],
    a: Sequence[float],
    b: Sequence[float],
    g: Sequence[float],
    d: float,
    order: Sequence[int],
) -> float:
    """Optimal UCDDCP objective for one sequence, scalar Python throughout."""
    n = len(order)
    ps = [p[j] for j in order]
    ms = [m[j] for j in order]
    As = [a[j] for j in order]
    bs = [b[j] for j in order]
    gs = [g[j] for j in order]

    c = [0.0] * n
    acc = 0.0
    for k in range(n):
        acc += ps[k]
        c[k] = acc

    tau = 0
    for k in range(n):
        if c[k] <= d:
            tau = k + 1
        else:
            break

    r = 0
    if tau > 0:
        pe = 0.0
        for k in range(tau):
            pe += As[k]
        pl = 0.0
        for k in range(tau, n):
            pl += bs[k]
        if pl < pe:
            r = tau
            while True:
                pe -= As[r - 1]
                pl += bs[r - 1]
                if pl >= pe or r == 1:
                    break
                r -= 1

    # Compression decisions (independent; see ucddcp_linear).
    prefix_alpha = 0.0
    pref = [0.0] * n
    for k in range(n):
        pref[k] = prefix_alpha
        prefix_alpha += As[k]
    suffix_beta = 0.0
    suf = [0.0] * n
    for k in range(n - 1, -1, -1):
        suffix_beta += bs[k]
        suf[k] = suffix_beta

    eff = [0.0] * n
    red = [0.0] * n
    for k in range(n):
        tardy = (k + 1) > r if r >= 1 else c[k] > d
        rate = (suf[k] if tardy else pref[k]) - gs[k]
        x = (ps[k] - ms[k]) if rate > 0.0 else 0.0
        red[k] = x
        eff[k] = ps[k] - x

    cum = [0.0] * n
    acc = 0.0
    for k in range(n):
        acc += eff[k]
        cum[k] = acc

    total = 0.0
    anchor = cum[r - 1] if r >= 1 else None
    for k in range(n):
        ck = (d + cum[k] - anchor) if anchor is not None else cum[k]
        if ck < d:
            total += As[k] * (d - ck)
        else:
            total += bs[k] * (ck - d)
        total += gs[k] * red[k]
    return total
