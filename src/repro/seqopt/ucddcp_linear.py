"""O(n) optimal completions *and compressions* for a fixed UCDDCP sequence.

Implements the algorithm of Awasthi, Lässig & Kramer [8] as described in
Section IV-B of the paper:

1. Solve the CDD relaxation (no compression) for the sequence with the O(n)
   algorithm of [7]; this fixes the due-date position ``r`` -- by Property 1
   the position is unchanged when compression is allowed.
2. Decide each job's compression independently (Property 2: if compressing a
   job helps at all, compress it fully to ``M_i``):

   * a *tardy* job at sequence position ``k`` pulls itself and every later
     job toward the due date, so full compression gains
     ``X_k * (sum(beta[k:]) - gamma_k)`` -- compress iff positive;
   * an *early* (or exactly on-time) job at position ``k`` lets all its
     predecessors slide right toward the due date, gaining
     ``X_k * (sum(alpha[:k-1]) - gamma_k)`` -- compress iff positive.

   These rates are independent of the other compression decisions: a tardy
   job can never cross the due date (the slack ``C_k - d`` always exceeds its
   own maximal reduction while later decisions do not move ``C_k``), and an
   early job's own completion stays fixed while only its predecessors move.

3. Rebuild the completion times anchored at the due-date position with the
   compressed processing times.
"""

from __future__ import annotations

import numpy as np

from repro.problems.schedule import Schedule
from repro.problems.ucddcp import UCDDCPInstance
from repro.seqopt.cdd_linear import _optimal_completions

__all__ = ["optimize_ucddcp_sequence", "ucddcp_objective_for_sequence"]


def optimize_ucddcp_sequence(
    instance: UCDDCPInstance, sequence: np.ndarray
) -> Schedule:
    """Optimal completion times and reductions for ``sequence``.

    Returns
    -------
    Schedule
        Completion times and reductions in sequence order and the minimal
        objective.  ``meta["due_date_position"]`` is the (1-based) sequence
        position anchored at the due date, inherited from the CDD relaxation;
        ``meta["cdd_objective"]`` is the objective before compression.
    """
    seq = np.asarray(sequence, dtype=np.intp)
    p = instance.processing[seq]
    m = instance.min_processing[seq]
    a = instance.alpha[seq]
    b = instance.beta[seq]
    g = instance.gamma[seq]
    d = instance.due_date

    completion, reduction, r, cdd_obj = _optimal_compressed(p, m, a, b, g, d)
    e = np.maximum(0.0, d - completion)
    t = np.maximum(0.0, completion - d)
    obj = float(a @ e + b @ t + g @ reduction)
    return Schedule(
        sequence=seq,
        completion=completion,
        reduction=reduction,
        objective=obj,
        meta={"due_date_position": int(r), "cdd_objective": cdd_obj},
    )


def ucddcp_objective_for_sequence(
    instance: UCDDCPInstance, sequence: np.ndarray
) -> float:
    """Objective-only variant of :func:`optimize_ucddcp_sequence`."""
    return optimize_ucddcp_sequence(instance, sequence).objective


def _optimal_compressed(
    p: np.ndarray,
    m: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    g: np.ndarray,
    d: float,
) -> tuple[np.ndarray, np.ndarray, int, float]:
    """Core routine on sequence-ordered arrays.

    Returns ``(completion, reduction, due_date_position, cdd_objective)``.
    """
    c_cdd, r = _optimal_completions(p, a, b, d)
    cdd_obj = float(
        a @ np.maximum(0.0, d - c_cdd) + b @ np.maximum(0.0, c_cdd - d)
    )

    # Compression decision rates (independent per job, see module docstring).
    # prefix_alpha_excl[k] = sum(alpha[:k]) for position k (0-based);
    # suffix_beta_incl[k] = sum(beta[k:]).
    prefix_alpha_excl = np.concatenate(([0.0], np.cumsum(a)[:-1]))
    suffix_beta_incl = np.cumsum(b[::-1])[::-1]

    if r >= 1:
        # Job at position r completes exactly at d; everything after it is
        # tardy.  Deriving tardiness from the index (not a float compare)
        # keeps the on-time job on the early rule even under round-off.
        tardy = np.arange(1, p.size + 1) > r
    else:
        tardy = c_cdd > d
    rate = np.where(tardy, suffix_beta_incl, prefix_alpha_excl) - g
    reduction = np.where(rate > 0.0, p - m, 0.0)

    # Rebuild completions with the due-date anchor preserved (Property 1).
    p_eff = p - reduction
    cum = np.cumsum(p_eff)
    if r == 0:
        # No anchored completion: the schedule starts at time zero.  (For a
        # genuinely unrestricted instance this only happens when no right
        # shift was beneficial, e.g. all alpha are zero.)
        completion = cum
    else:
        completion = d + cum - cum[r - 1]
    return completion, reduction, r, cdd_obj
