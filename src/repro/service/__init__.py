"""Solver-as-a-service: the async HTTP scheduling service.

The repo's solvers are deterministic pure functions of ``(instance,
method, config, seed, device profile)``; this package puts a long-lived
service in front of them.  ``repro serve`` exposes an HTTP JSON API
(:mod:`repro.service.api`) over a bounded job queue
(:mod:`repro.service.queue`) whose workers run every job in a supervised
child process (:class:`repro.pool.dispatch.SupervisedDispatch`) — so a
crashed or hung solve fails *one job* with a structured error while the
service stays healthy.

Admission control (:mod:`repro.service.admission`) validates requests
through the solvers' own configuration dataclasses and bounds queue
depth (429 + Retry-After past the cap); the content-addressed result
cache (:mod:`repro.service.cache`) exploits determinism to replay
previously solved requests byte-identically.  See docs/service.md.
"""

from repro.service.admission import (
    AdmissionPolicy,
    ValidatedJob,
    ValidationError,
    validate_request,
)
from repro.service.api import SchedulingService, ServiceHTTPServer, make_server
from repro.service.cache import CacheKey, ResultCache
from repro.service.jobs import Job, JobRegistry, ServiceMetrics, error_payload
from repro.service.queue import JobDispatcher

__all__ = [
    "AdmissionPolicy",
    "CacheKey",
    "Job",
    "JobDispatcher",
    "JobRegistry",
    "ResultCache",
    "SchedulingService",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "ValidatedJob",
    "ValidationError",
    "error_payload",
    "make_server",
    "validate_request",
]
