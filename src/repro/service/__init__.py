"""Solver-as-a-service: the async HTTP scheduling service.

The repo's solvers are deterministic pure functions of ``(instance,
method, config, seed, device profile)``; this package puts a long-lived
service in front of them.  ``repro serve`` exposes an HTTP JSON API
(:mod:`repro.service.api`) over a bounded job queue
(:mod:`repro.service.queue`) whose workers run every job in a supervised
child process (:class:`repro.pool.dispatch.SupervisedDispatch`) — so a
crashed or hung solve fails *one job* with a structured error while the
service stays healthy.

Admission control (:mod:`repro.service.admission`) validates requests
through the solvers' own configuration dataclasses and bounds queue
depth (429 + Retry-After past the cap); the content-addressed result
cache (:mod:`repro.service.cache`) exploits determinism to replay
previously solved requests byte-identically.

Durability rides on the same determinism: with ``--state-dir`` every
job transition is written ahead to a CRC-guarded journal
(:mod:`repro.service.journal`) and replayed at the next boot — finished
jobs stay resolvable byte-identically, interrupted jobs re-run through
the cache, duplicate ``idempotency_key`` submissions return the
original job id even across a crash.  See docs/service.md.
"""

from repro.service.admission import (
    AdmissionPolicy,
    ValidatedJob,
    ValidationError,
    validate_request,
)
from repro.service.api import SchedulingService, ServiceHTTPServer, make_server
from repro.service.cache import CacheKey, ResultCache
from repro.service.jobs import Job, JobRegistry, ServiceMetrics, error_payload
from repro.service.journal import JobJournal, JournalRecovery, RecoveredJob
from repro.service.queue import JobDispatcher

__all__ = [
    "AdmissionPolicy",
    "CacheKey",
    "Job",
    "JobDispatcher",
    "JobJournal",
    "JobRegistry",
    "JournalRecovery",
    "RecoveredJob",
    "ResultCache",
    "SchedulingService",
    "ServiceHTTPServer",
    "ServiceMetrics",
    "ValidatedJob",
    "ValidationError",
    "error_payload",
    "make_server",
    "validate_request",
]
