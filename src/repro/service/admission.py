"""Admission control: validate and bound work before it is queued.

The service promises that everything behind the queue is *well-formed*:
a job that was admitted can only fail by executing, never by parsing.
That promise is kept here, at the front door —

* request bodies are checked structurally (field whitelist, instance
  record shape) and *semantically*, by eagerly constructing the method's
  real configuration dataclass.  That reuses the shared config-validation
  mixins (:mod:`repro.core.engine.config`) verbatim: the service rejects
  exactly what the solver would reject, with the same messages, but at
  submission time with a 400 instead of mid-solve with a dead job.
* execution knobs (worker counts, host topologies, fault plans, pool
  deadlines) are *server* policy, never request payload: a request that
  tries to smuggle one in via ``config`` is refused.
* the resolved configuration comes back in canonical form — defaults
  filled in, identity fields (seed, device profile) split out — which is
  what makes the result cache's key insensitive to how a client spells
  an equivalent request (``{}`` versus ``{"iterations": 1000}``).

Capacity bounds (queue depth, batch size, body size, 429 back-off) live
on :class:`AdmissionPolicy` next to the validation they gate.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Mapping

from repro.core.engine.backends import BACKENDS
from repro.core.engine.config import check_retries, check_timeout
from repro.core.solver import (
    method_accepts_backend,
    method_config_cls,
    solver_methods,
)
from repro.gpusim.profiles import DEFAULT_PROFILE
from repro.problems.cdd import CDDInstance
from repro.problems.ucddcp import UCDDCPInstance

__all__ = [
    "AdmissionPolicy",
    "RESERVED_CONFIG_KEYS",
    "ValidatedJob",
    "ValidationError",
    "validate_request",
]


class ValidationError(ValueError):
    """A request the service refuses to queue (HTTP 400)."""


#: Execution knobs owned by the server's policy, not by requests.  A
#: client that could set worker counts, host topologies, supervision
#: budgets or fault plans per request could degrade service for every
#: other client — and none of these affect the *result*, so they must
#: never reach the cache key either.  (``backend`` is deliberately not
#: here: the engine backend is the top-level request field, and the name
#: ``backend`` inside ``config`` is ``serial_sa``'s evaluator selector.)
RESERVED_CONFIG_KEYS = frozenset({
    "workers", "hosts", "task_timeout", "task_retries", "pool_faults",
    "net_faults", "local_fallback", "heartbeat_interval_s",
    "heartbeat_timeout_s", "connect_timeout_s", "io_timeout_s",
    "reconnect_attempts", "backoff_base_s", "backoff_factor",
    "backoff_max_s",
})

_REQUEST_FIELDS = frozenset({
    "instance", "method", "config", "backend", "deadline_s",
    "idempotency_key",
})

#: Idempotency keys are operator-grep-able strings, not blobs.
_MAX_IDEMPOTENCY_KEY_LEN = 200

_INSTANCE_KINDS: dict[str, Callable[[Mapping[str, Any]], Any]] = {
    "cdd": CDDInstance.from_dict,
    "ucddcp": UCDDCPInstance.from_dict,
}


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Server-side capacity and defaulting policy.

    ``queue_cap`` bounds jobs *waiting* to run (in-flight jobs are
    bounded separately by the worker count); past it, submissions get
    429 with ``Retry-After: retry_after_s``.  ``default_backend`` is the
    engine backend used when a request names none; ``hosts`` is the
    distributed topology (``None`` = ``backend="distributed"`` requests
    are refused).
    """

    queue_cap: int = 16
    max_batch: int = 32
    max_body_bytes: int = 1 << 20
    default_backend: str = "vectorized"
    retry_after_s: float = 1.0
    hosts: str | None = None

    def __post_init__(self) -> None:
        if self.queue_cap < 1:
            raise ValueError(
                f"queue_cap must be >= 1, got {self.queue_cap}"
            )
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        check_timeout(self.retry_after_s, "retry_after_s")
        if self.default_backend not in BACKENDS:
            raise ValueError(
                f"unknown default_backend {self.default_backend!r}; "
                f"choose from {tuple(BACKENDS)}"
            )


@dataclasses.dataclass(frozen=True)
class ValidatedJob:
    """An admitted request, resolved into its executable and cacheable
    halves.

    ``solve_kwargs`` is exactly what the pool worker's
    :func:`~repro.pool.worker.solve_one` forwards to the solver façade
    (the client's own spelling, plus the resolved engine backend and the
    server's host topology where applicable).  ``canonical_config`` is
    the fully resolved configuration — defaults filled in by the config
    dataclass, seed and device profile split out as their own identity
    components — that the cache digests, so equivalent requests share a
    key regardless of spelling.
    """

    instance: Any
    method: str
    backend: str | None
    solve_kwargs: dict[str, Any]
    canonical_config: dict[str, Any]
    seed: int
    device_profile: str
    deadline_s: float | None
    #: Client-supplied dedup handle; never part of the cache key (it
    #: names the *submission*, not the solve) and journaled so duplicate
    #: resubmissions return the original job id across restarts.
    idempotency_key: str | None = None


def _parse_instance(body: Mapping[str, Any]) -> Any:
    data = body.get("instance")
    if not isinstance(data, dict):
        raise ValidationError(
            "'instance' must be an object in the instance to_dict form "
            "(kind 'cdd' or 'ucddcp')"
        )
    kind = data.get("kind", "cdd")
    from_dict = _INSTANCE_KINDS.get(kind)
    if from_dict is None:
        raise ValidationError(
            f"unknown instance kind {kind!r}; choose from "
            f"{tuple(sorted(_INSTANCE_KINDS))}"
        )
    try:
        return from_dict(data)
    except ValidationError:
        raise
    except (TypeError, ValueError, KeyError) as exc:
        raise ValidationError(f"bad instance record: {exc}") from exc


def _parse_idempotency_key(body: Mapping[str, Any]) -> str | None:
    key = body.get("idempotency_key")
    if key is None:
        return None
    if not isinstance(key, str) or not key.strip():
        raise ValidationError(
            f"idempotency_key must be a non-empty string, got {key!r}"
        )
    if len(key) > _MAX_IDEMPOTENCY_KEY_LEN:
        raise ValidationError(
            f"idempotency_key of {len(key)} chars exceeds the "
            f"{_MAX_IDEMPOTENCY_KEY_LEN}-char limit"
        )
    return key


def _parse_deadline(body: Mapping[str, Any]) -> float | None:
    deadline = body.get("deadline_s")
    if deadline is None:
        return None
    if isinstance(deadline, bool) or not isinstance(deadline, (int, float)):
        raise ValidationError(
            f"deadline_s must be a positive number, got {deadline!r}"
        )
    try:
        check_timeout(float(deadline), "deadline_s")
    except ValueError as exc:
        raise ValidationError(str(exc)) from exc
    return float(deadline)


def validate_request(
    body: Any, policy: AdmissionPolicy
) -> ValidatedJob:
    """Validate one submission body; :class:`ValidationError` on refusal.

    The config is constructed through the method's real configuration
    dataclass, so every ``check_*`` the solver would run fires here —
    admitted jobs cannot fail on configuration.
    """
    if not isinstance(body, dict):
        raise ValidationError("request body must be a JSON object")
    unknown = set(body) - _REQUEST_FIELDS
    if unknown:
        raise ValidationError(
            f"unknown request field(s) {sorted(unknown)}; expected "
            f"{sorted(_REQUEST_FIELDS)}"
        )
    instance = _parse_instance(body)
    method = body.get("method", "parallel_sa")
    if method not in solver_methods():
        raise ValidationError(
            f"unknown method {method!r}; choose from {solver_methods()}"
        )
    config = body.get("config", {})
    if not isinstance(config, dict):
        raise ValidationError("'config' must be an object of solve kwargs")
    reserved = RESERVED_CONFIG_KEYS.intersection(config)
    if reserved:
        raise ValidationError(
            f"config key(s) {sorted(reserved)} are execution knobs owned "
            "by the service (set them server-side: repro serve --help)"
        )
    backend = body.get("backend")
    if backend is not None and backend not in BACKENDS:
        raise ValidationError(
            f"unknown backend {backend!r}; choose from {tuple(BACKENDS)}"
        )
    if method_accepts_backend(method):
        if backend is None:
            backend = policy.default_backend
        if backend == "distributed" and policy.hosts is None:
            raise ValidationError(
                "backend 'distributed' requires the service to be "
                "started with --hosts"
            )
    elif backend is not None:
        raise ValidationError(
            f"method {method!r} runs on the host and takes no engine "
            "backend; drop the 'backend' field"
        )

    config_cls = method_config_cls(method)
    if config_cls is None:
        if config:
            raise ValidationError(
                f"method {method!r} takes no config, got key(s) "
                f"{sorted(config)}"
            )
        canonical: dict[str, Any] = {}
    else:
        try:
            resolved = config_cls(**config)
        except (TypeError, ValueError) as exc:
            raise ValidationError(
                f"bad config for method {method!r}: {exc}"
            ) from exc
        canonical = dataclasses.asdict(resolved)
    seed = int(canonical.pop("seed", 0))
    device_profile = str(canonical.pop("device_profile", DEFAULT_PROFILE))
    # JSON requests cannot carry an explicit DeviceSpec; the field is
    # always its None default here and would only add repr noise.
    canonical.pop("device_spec", None)
    # The engine backend participates in result identity conservatively
    # (distinct from serial_sa's evaluator field, which stays in the
    # config under its own name).
    canonical["engine_backend"] = backend

    solve_kwargs = dict(config)
    if method_accepts_backend(method):
        solve_kwargs["backend"] = backend
        if backend == "distributed":
            solve_kwargs["hosts"] = policy.hosts
    return ValidatedJob(
        instance=instance,
        method=method,
        backend=backend,
        solve_kwargs=solve_kwargs,
        canonical_config=canonical,
        seed=seed,
        device_profile=device_profile,
        deadline_s=_parse_deadline(body),
        idempotency_key=_parse_idempotency_key(body),
    )
