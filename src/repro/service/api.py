"""The scheduling service: HTTP JSON API over the job queue and cache.

:class:`SchedulingService` is the transport-free core — submit/poll/
result/metrics as plain ``(status, body, headers)`` triples — and the
``http.server``-based layer underneath exposes it on a socket:

========  =======================  ==========================================
method    path                     meaning
========  =======================  ==========================================
POST      ``/v1/submit``           submit one job (202 queued, 200 cache hit,
                                   400 invalid, 429 queue full + Retry-After)
POST      ``/v1/batch``            submit many jobs in one request
GET       ``/v1/jobs/{id}``        job status document
GET       ``/v1/jobs/{id}/result`` result document (409 unfinished, 500
                                   failed with the structured error)
GET       ``/healthz``             liveness + queue depth
GET       ``/metrics``             counters, job states, cache stats
========  =======================  ==========================================

Responses are canonical JSON (sorted keys), which is what makes a cache
hit *byte-identical* to the fresh response it replays.  Every job runs
in a supervised child process, so the worst a poisonous request can do
is fail its own job with a structured error — the service process never
dies with it.
"""

from __future__ import annotations

import json
import math
import re
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.core.engine.config import check_retries, check_timeout
from repro.pool.faults import PoolFaultPlan
from repro.pool.worker import solve_one
from repro.problems.validation import ScheduleError, validate_schedule
from repro.service.admission import (
    AdmissionPolicy,
    ValidatedJob,
    ValidationError,
    validate_request,
)
from repro.service.cache import CacheKey, ResultCache
from repro.service.jobs import Job, JobRegistry, ServiceMetrics, error_payload
from repro.service.queue import JobDispatcher

__all__ = ["SchedulingService", "ServiceHTTPServer", "make_server"]

Reply = "tuple[int, dict, dict[str, str]]"

_JOB_ROUTE = re.compile(r"/v1/jobs/([A-Za-z0-9_-]+)(/result)?")


class SchedulingService:
    """Queue, cache and registry behind one submit/poll/result surface.

    ``task_timeout`` is the default per-job deadline when a request
    carries no ``deadline_s``; either maps onto the dispatch-level
    watchdog, so a job over budget is killed and reported — never run to
    completion on a client that has already given up.  ``fault_plan``
    arms deterministic worker faults by job admission sequence (the CI
    drill kills a worker mid-job with it).
    """

    def __init__(
        self,
        policy: AdmissionPolicy | None = None,
        workers: int = 1,
        cache: ResultCache | None = None,
        task_timeout: float | None = None,
        task_retries: int = 0,
        fault_plan: PoolFaultPlan | None = None,
        context: str | None = None,
    ) -> None:
        check_timeout(task_timeout, "task_timeout")
        check_retries(task_retries, "task_retries")
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.registry = JobRegistry()
        self.metrics = ServiceMetrics()
        self.cache = cache
        self.task_timeout = task_timeout
        self.task_retries = task_retries
        self.fault_plan = fault_plan
        self.workers = workers
        self.dispatcher = JobDispatcher(
            self._run_job,
            workers=workers,
            queue_cap=self.policy.queue_cap,
            context=context,
        )

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        self.dispatcher.start()

    def stop(self) -> None:
        self.dispatcher.stop(abandon=self._abandon)

    def _abandon(self, job: Job) -> None:
        self.registry.update(
            job.id,
            state="failed",
            error={
                "error": "service shut down before the job ran",
                "error_type": "shutdown",
            },
        )
        self.metrics.increment("jobs_failed")

    # -- submission -----------------------------------------------------

    def submit(self, body: Any) -> Reply:
        """One submission: 200 cache hit, 202 queued, 400 or 429 refusal."""
        try:
            validated = validate_request(body, self.policy)
        except ValidationError as exc:
            self.metrics.increment("rejected_invalid")
            return 400, {"error": str(exc), "error_type": "validation"}, {}
        return self._admit(validated)

    def submit_batch(self, body: Any) -> Reply:
        """Submit a list of jobs; per-item outcomes, one admission each.

        Items are admitted independently — a bad or bounced item never
        blocks its siblings.  The response carries one entry per item
        (mirroring batch solve's slot-per-instance contract).  When
        *every* item bounced off the full queue the whole response is
        429 with Retry-After, so naive clients back off correctly.
        """
        if not isinstance(body, dict):
            return 400, {
                "error": "batch body must be a JSON object",
                "error_type": "validation",
            }, {}
        items = body.get("jobs")
        if not isinstance(items, list) or not items:
            return 400, {
                "error": "'jobs' must be a non-empty array of submissions",
                "error_type": "validation",
            }, {}
        if len(items) > self.policy.max_batch:
            return 400, {
                "error": (
                    f"batch of {len(items)} exceeds max_batch="
                    f"{self.policy.max_batch}"
                ),
                "error_type": "validation",
            }, {}
        entries = []
        statuses = []
        for item in items:
            status, doc, _ = self.submit(item)
            statuses.append(status)
            entries.append({"status": status, **doc})
        if statuses and all(status == 429 for status in statuses):
            return 429, {"jobs": entries}, self._retry_after_headers()
        return 200, {"jobs": entries}, {}

    def _admit(self, validated: ValidatedJob) -> Reply:
        key = CacheKey.for_job(validated)
        if self.cache is not None:
            payload = self.cache.load(key)
            if payload is not None:
                job = self.registry.create(
                    method=validated.method,
                    instance_name=validated.instance.name,
                    key=key.hex,
                    state="done",
                    cached=True,
                    document=payload,
                )
                self.metrics.increment("submitted")
                self.metrics.increment("cache_hits")
                status = self.registry.status(job.id)
                assert status is not None
                return 200, status, {}
            self.metrics.increment("cache_misses")
        job = self.registry.create(
            method=validated.method,
            instance_name=validated.instance.name,
            key=key.hex,
            validated=validated,
        )
        if not self.dispatcher.try_enqueue(job):
            self.registry.discard(job.id)
            self.metrics.increment("rejected_queue_full")
            return 429, {
                "error": (
                    f"job queue is full ({self.policy.queue_cap} waiting); "
                    f"retry after {self.policy.retry_after_s:g}s"
                ),
                "error_type": "queue_full",
                "retry_after_s": self.policy.retry_after_s,
            }, self._retry_after_headers()
        self.metrics.increment("submitted")
        status = self.registry.status(job.id)
        assert status is not None
        return 202, status, {}

    def _retry_after_headers(self) -> dict[str, str]:
        return {"Retry-After": str(math.ceil(self.policy.retry_after_s))}

    # -- polling --------------------------------------------------------

    def job_status(self, job_id: str) -> Reply:
        doc = self.registry.status(job_id)
        if doc is None:
            return 404, {
                "error": f"no such job {job_id!r}",
                "error_type": "not_found",
            }, {}
        return 200, doc, {}

    def job_result(self, job_id: str) -> Reply:
        view = self.registry.result_view(job_id)
        if view is None:
            return 404, {
                "error": f"no such job {job_id!r}",
                "error_type": "not_found",
            }, {}
        state, body = view
        if state == "done":
            return 200, body, {}
        if state == "failed":
            return 500, body, {}
        return 409, {
            "error": f"job {job_id!r} is {state}, not finished; poll "
                     f"/v1/jobs/{job_id}",
            "error_type": "unfinished",
            "state": state,
        }, {}

    def health(self) -> Reply:
        return 200, {
            "status": "ok",
            "queue_depth": self.dispatcher.depth(),
            "queue_cap": self.policy.queue_cap,
            "workers": self.workers,
        }, {}

    def metrics_doc(self) -> Reply:
        doc: dict[str, Any] = {
            "counters": self.metrics.snapshot(),
            "jobs": self.registry.counts(),
            "queue_depth": self.dispatcher.depth(),
            "queue_cap": self.policy.queue_cap,
            "workers": self.workers,
            "cache": self.cache.stats() if self.cache is not None else None,
        }
        return 200, doc, {}

    # -- execution ------------------------------------------------------

    def _run_job(self, job: Job, dispatch: Any, seq: int) -> None:
        """Run one admitted job on the worker's supervised dispatch.

        Never raises: every outcome — including a bug in dispatch itself
        — lands on the job record as a structured error, because a queue
        worker dying would silently halve service capacity.
        """
        validated = job.validated
        assert validated is not None
        self.registry.update(job.id, state="running")
        deadline = (
            validated.deadline_s if validated.deadline_s is not None
            else self.task_timeout
        )
        start = time.perf_counter()
        try:
            status, value = dispatch.run(
                solve_one,
                (validated.instance, validated.method,
                 dict(validated.solve_kwargs)),
                label=job.id,
                task_timeout=deadline,
                task_retries=self.task_retries,
                fault_plan=self.fault_plan,
                task_index=seq,
            )
        except Exception as exc:  # noqa: BLE001 - worker must survive anything
            status, value = "error", exc
        duration = time.perf_counter() - start
        if status == "ok":
            try:
                # Same defense in depth as batch solving: the transport
                # digest proved the bytes, this proves the content.
                validate_schedule(validated.instance, value.schedule)
            except ScheduleError as exc:
                status, value = "error", exc
        if status == "ok":
            document = {
                "instance": validated.instance.name,
                "method": validated.method,
                "key": job.key,
                "result": value.to_dict(),
            }
            if self.cache is not None:
                self.cache.store(CacheKey.for_job(validated), document)
                self.metrics.increment("cache_stores")
            self.registry.update(
                job.id, state="done", document=document, duration_s=duration
            )
            self.metrics.increment("jobs_completed")
            return
        if status == "cancelled":
            error = {
                "error": "job cancelled: service shutting down",
                "error_type": "cancelled",
            }
        elif status == "interrupt":
            error = {
                "error": "solve interrupted in the worker",
                "error_type": "interrupt",
            }
        else:
            error = error_payload(value)
        self.registry.update(
            job.id, state="failed", error=error, duration_s=duration
        )
        self.metrics.increment("jobs_failed")


# -- HTTP layer ---------------------------------------------------------


def _render(doc: Mapping[str, Any]) -> bytes:
    """Canonical response bytes: sorted-key JSON plus one newline.

    Sorted keys make the rendering a pure function of the document, so
    replaying a cached document is byte-identical to the fresh response
    that stored it.
    """
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")


class ServiceHTTPServer(ThreadingHTTPServer):
    """Thread-per-connection HTTP server bound to one service."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self, address: tuple[str, int], service: SchedulingService
    ) -> None:
        self.service = service
        super().__init__(address, _ServiceHandler)

    @property
    def label(self) -> str:
        """``host:port`` actually bound (resolves ``:0`` requests)."""
        host, port = self.server_address[:2]
        return f"{host}:{port}"


class _ServiceHandler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer

    protocol_version = "HTTP/1.1"

    # Suppress the default per-request stderr lines; the service's
    # observable surface is /metrics, not an access log.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        try:
            self._reply(*self._route_get())
        except Exception as exc:  # noqa: BLE001 - one request, not the server
            self._best_effort_500(exc)

    def do_POST(self) -> None:  # noqa: N802 - http.server contract
        try:
            self._reply(*self._route_post())
        except Exception as exc:  # noqa: BLE001 - one request, not the server
            self._best_effort_500(exc)

    # -- routing --------------------------------------------------------

    def _route_get(self) -> tuple[int, dict, dict[str, str]]:
        service = self.server.service
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            return service.health()
        if path == "/metrics":
            return service.metrics_doc()
        match = _JOB_ROUTE.fullmatch(path)
        if match is not None:
            job_id, result_leaf = match.groups()
            if result_leaf:
                return service.job_result(job_id)
            return service.job_status(job_id)
        return self._not_found()

    def _route_post(self) -> tuple[int, dict, dict[str, str]]:
        service = self.server.service
        path = self.path.split("?", 1)[0]
        if path not in ("/v1/submit", "/v1/batch"):
            return self._not_found()
        body, failure = self._read_json(service.policy.max_body_bytes)
        if failure is not None:
            return failure
        if path == "/v1/submit":
            return service.submit(body)
        return service.submit_batch(body)

    def _not_found(self) -> tuple[int, dict, dict[str, str]]:
        return 404, {
            "error": f"no route {self.command} {self.path!r}",
            "error_type": "not_found",
        }, {}

    # -- plumbing -------------------------------------------------------

    def _read_json(
        self, max_bytes: int
    ) -> tuple[Any, "tuple[int, dict, dict[str, str]] | None"]:
        length_text = self.headers.get("Content-Length")
        if length_text is None:
            return None, (411, {
                "error": "Content-Length is required",
                "error_type": "validation",
            }, {})
        try:
            length = int(length_text)
        except ValueError:
            return None, (400, {
                "error": f"bad Content-Length {length_text!r}",
                "error_type": "validation",
            }, {})
        if length < 0:
            return None, (400, {
                "error": f"bad Content-Length {length_text!r}",
                "error_type": "validation",
            }, {})
        if length > max_bytes:
            return None, (413, {
                "error": f"body of {length} bytes exceeds the "
                         f"{max_bytes}-byte limit",
                "error_type": "validation",
            }, {})
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, (400, {
                "error": f"body is not valid JSON: {exc}",
                "error_type": "validation",
            }, {})

    def _reply(
        self, status: int, doc: dict, headers: dict[str, str]
    ) -> None:
        body = _render(doc)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _best_effort_500(self, exc: Exception) -> None:
        try:
            self._reply(500, {
                "error": f"internal error: {exc!r}",
                "error_type": "internal",
            }, {})
        except Exception:  # noqa: BLE001 - headers may already be gone
            # The connection is torn or headers already sent; the client
            # sees a dropped connection, the server thread lives on.
            pass


def make_server(
    service: SchedulingService, host: str, port: int
) -> ServiceHTTPServer:
    """Bind the HTTP layer (``port=0`` picks an ephemeral port)."""
    return ServiceHTTPServer((host, port), service)
